//! Offline stand-in for the `parking_lot` crate, exposing the subset of its
//! API this workspace uses (`Mutex`, `RwLock`, `Condvar` with
//! `wait_until`). Backed by `std::sync` primitives; lock poisoning is
//! translated into panic propagation by unwrapping into the inner guard, so
//! the ergonomics match parking_lot (no `Result` from `lock()`).
//!
//! Debug builds additionally run a [`lockdep`] witness: every acquisition
//! through this shim feeds a global acquisition-order graph, and the first
//! observed ABBA cycle (or same-thread recursive acquisition) is reported
//! with the lock names involved — so every test doubles as a lock-order
//! test. Locks are named after their value type by default; use the
//! `named()` constructors where a clearer label helps reports.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU32;
use std::sync::PoisonError;
use std::time::Instant;

pub mod lockdep;

/// Mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized> {
    /// Lazy lockdep id (0 = unassigned; ids are per-instance).
    ld_id: AtomicU32,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait_until`]
/// can temporarily take the underlying std guard and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    ld_id: u32,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { ld_id: AtomicU32::new(0), inner: std::sync::Mutex::new(value) }
    }

    /// A mutex whose lockdep reports use `name` instead of the value's
    /// type name.
    pub fn named(name: &str, value: T) -> Mutex<T> {
        let m = Mutex::new(value);
        let id = lockdep::ensure_id(&m.ld_id, || name.to_string());
        lockdep::set_name(id, name);
        m
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn ld_id(&self) -> u32 {
        lockdep::ensure_id(&self.ld_id, || {
            format!("Mutex<{}>", std::any::type_name::<T>())
        })
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = self.ld_id();
        lockdep::on_acquire(id);
        MutexGuard {
            ld_id: id,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // A successful try_lock still participates in ordering: it cannot
        // deadlock itself, but a later blocking acquisition under it can.
        let id = self.ld_id();
        lockdep::on_acquire(id);
        Some(MutexGuard { ld_id: id, inner: Some(g) })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.ld_id);
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
pub struct RwLock<T: ?Sized> {
    ld_id: AtomicU32,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    ld_id: u32,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    ld_id: u32,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { ld_id: AtomicU32::new(0), inner: std::sync::RwLock::new(value) }
    }

    /// An rwlock whose lockdep reports use `name` instead of the value's
    /// type name.
    pub fn named(name: &str, value: T) -> RwLock<T> {
        let l = RwLock::new(value);
        let id = lockdep::ensure_id(&l.ld_id, || name.to_string());
        lockdep::set_name(id, name);
        l
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn ld_id(&self) -> u32 {
        lockdep::ensure_id(&self.ld_id, || {
            format!("RwLock<{}>", std::any::type_name::<T>())
        })
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let id = self.ld_id();
        lockdep::on_acquire(id);
        RwLockReadGuard {
            ld_id: id,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let id = self.ld_id();
        lockdep::on_acquire(id);
        RwLockWriteGuard {
            ld_id: id,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.ld_id);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.ld_id);
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable matching parking_lot's guard-based API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        // The wait releases the mutex and reacquires it on wake; mirror
        // that in the witness so held-order stays truthful.
        lockdep::on_release(guard.ld_id);
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        lockdep::on_acquire(guard.ld_id);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes. Mirrors parking_lot's
    /// `wait_until(&mut guard, Instant) -> WaitTimeoutResult`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let now = Instant::now();
        if now >= deadline {
            guard.inner = Some(g);
            return WaitTimeoutResult { timed_out: true };
        }
        lockdep::on_release(guard.ld_id);
        let (g, res) = self
            .inner
            .wait_timeout(g, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        lockdep::on_acquire(guard.ld_id);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*g {
            if cv.wait_until(&mut g, deadline).timed_out() {
                panic!("missed notify");
            }
        }
        h.join().unwrap();
    }

    // The lockdep tests below mutate global witness state (panic flag,
    // report slot); serialize them.
    fn lockdep_test_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_reports_deliberate_abba() {
        let _gate = lockdep_test_guard();
        lockdep::set_panic_on_cycle(false);
        let a = Mutex::named("abba.a", 0u32);
        let b = Mutex::named("abba.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // order a -> b recorded
        }
        assert!(lockdep::take_cycle_report().is_none(), "no cycle yet");
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle
        }
        let report = lockdep::take_cycle_report().expect("ABBA must be reported");
        assert!(report.contains("abba.a") && report.contains("abba.b"), "{report}");
        assert!(report.contains("cycle"), "{report}");
        lockdep::set_panic_on_cycle(true);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_panics_on_recursive_acquisition() {
        let _gate = lockdep_test_guard();
        let m = Arc::new(Mutex::named("recursive.m", ()));
        let m2 = Arc::clone(&m);
        // The witness fires before the inner std lock would deadlock.
        let g = m.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _again = m2.lock();
        }))
        .expect_err("recursive lock must panic under lockdep");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("recursive") && msg.contains("recursive.m"), "{msg}");
        drop(g);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_clean_nesting_is_silent() {
        let _gate = lockdep_test_guard();
        let outer = Mutex::named("nest.outer", ());
        let inner = Mutex::named("nest.inner", ());
        for _ in 0..3 {
            let _o = outer.lock();
            let _i = inner.lock(); // consistent order: no report
        }
        assert!(lockdep::take_cycle_report().is_none());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_condvar_wait_releases_hold() {
        let _gate = lockdep_test_guard();
        lockdep::set_panic_on_cycle(false);
        let m = Mutex::named("cv.m", ());
        let cv = Condvar::new();
        let other = Mutex::named("cv.other", ());
        {
            let _o = other.lock();
            let _g = m.lock(); // order other -> m
        }
        {
            let mut g = m.lock();
            // The wait releases m: acquiring `other` afterwards from this
            // thread must NOT look like m -> other (which would be a
            // cycle); do the wait, then take `other` under m again only in
            // the recorded direction.
            let _ = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        }
        assert!(lockdep::take_cycle_report().is_none());
        lockdep::set_panic_on_cycle(true);
    }
}
