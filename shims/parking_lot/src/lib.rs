//! Offline stand-in for the `parking_lot` crate, exposing the subset of its
//! API this workspace uses (`Mutex`, `RwLock`, `Condvar` with
//! `wait_until`). Backed by `std::sync` primitives; lock poisoning is
//! translated into panic propagation by unwrapping into the inner guard, so
//! the ergonomics match parking_lot (no `Result` from `lock()`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// Mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait_until`]
/// can temporarily take the underlying std guard and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable matching parking_lot's guard-based API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes. Mirrors parking_lot's
    /// `wait_until(&mut guard, Instant) -> WaitTimeoutResult`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let now = Instant::now();
        if now >= deadline {
            guard.inner = Some(g);
            return WaitTimeoutResult { timed_out: true };
        }
        let (g, res) = self
            .inner
            .wait_timeout(g, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*g {
            if cv.wait_until(&mut g, deadline).timed_out() {
                panic!("missed notify");
            }
        }
        h.join().unwrap();
    }
}
