//! Runtime lock-order witness (debug builds only).
//!
//! Every `Mutex`/`RwLock` acquisition through this shim records, per
//! thread, which locks were already held, and feeds `held -> acquired`
//! edges into a global order graph. The first acquisition that closes a
//! cycle — the classic ABBA shape — is reported with both sides' lock
//! names: the acquiring thread's held stack and the previously recorded
//! path in the opposite direction. Recursive acquisition of one lock on
//! one thread (guaranteed deadlock on std-backed locks) is reported
//! immediately, *before* the inner lock call would wedge the thread.
//!
//! Ids are per-instance, so the storage layer's 32 same-typed shard locks
//! do not alias. Names come from [`core::any::type_name`] by default or
//! the `named()` constructors. Release builds compile all of this to
//! no-ops.
//!
//! By default a detected cycle panics (every test doubles as a
//! lock-order test); a deliberate-ABBA test can call
//! [`set_panic_on_cycle`]`(false)` and inspect [`take_cycle_report`].

#![allow(dead_code)]

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet, VecDeque};
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::{Mutex, OnceLock};

    static NEXT_ID: AtomicU32 = AtomicU32::new(1);
    static PANIC_ON_CYCLE: AtomicBool = AtomicBool::new(true);

    #[derive(Default)]
    struct Registry {
        names: HashMap<u32, String>,
        /// edges[from] = locks acquired while `from` was held.
        edges: HashMap<u32, HashSet<u32>>,
        last_report: Option<String>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(Registry::default()))
    }

    thread_local! {
        /// Lock ids this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
        /// Edges this thread has already pushed to the global graph —
        /// skips the global lock on hot re-acquisitions.
        static SEEN: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
    }

    fn lock_name(reg: &Registry, id: u32) -> String {
        reg.names.get(&id).cloned().unwrap_or_else(|| format!("lock#{id}"))
    }

    /// Path `from -> … -> to` in the edge graph, if one exists (BFS).
    fn path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut p = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[&cur];
                    p.push(cur);
                }
                p.reverse();
                return Some(p);
            }
            if let Some(next) = reg.edges.get(&n) {
                for &m in next {
                    if m != from && !prev.contains_key(&m) {
                        prev.insert(m, n);
                        queue.push_back(m);
                    }
                }
            }
        }
        None
    }

    fn report(reg: &mut Registry, msg: String) {
        reg.last_report = Some(msg.clone());
        if PANIC_ON_CYCLE.load(Ordering::Relaxed) {
            drop(reg.last_report.take()); // consumed by the panic message
            panic!("{msg}");
        }
    }

    /// Assign the lock's lazy id, registering `name` on first use.
    pub fn ensure_id(slot: &AtomicU32, name: impl FnOnce() -> String) -> u32 {
        let id = slot.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let new = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
                reg.names.insert(new, name());
                new
            }
            Err(winner) => winner,
        }
    }

    /// Override the registered name (the `named()` constructors).
    pub fn set_name(id: u32, name: &str) {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.names.insert(id, name.to_string());
    }

    /// Record an acquisition: detect recursion, push edges, check cycles.
    /// Called *before* the underlying lock call, so a guaranteed deadlock
    /// panics instead of wedging the thread. The held-stack push happens
    /// last — a panicking report leaves the stack consistent.
    pub fn on_acquire(id: u32) {
        let held_snapshot: Vec<u32> = HELD.with(|h| h.borrow().clone());
        if !held_snapshot.is_empty() {
            if held_snapshot.contains(&id) {
                let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
                let name = lock_name(&reg, id);
                let msg = format!(
                    "lockdep: recursive acquisition of '{name}' on one thread \
                     (guaranteed deadlock on std-backed locks)"
                );
                report(&mut reg, msg);
            } else {
                self_check_edges(id, &held_snapshot);
            }
        }
        HELD.with(|h| h.borrow_mut().push(id));
    }

    fn self_check_edges(id: u32, held_snapshot: &[u32]) {
        let fresh: Vec<(u32, u32)> = SEEN.with(|s| {
            let mut seen = s.borrow_mut();
            held_snapshot
                .iter()
                .map(|&from| (from, id))
                .filter(|e| seen.insert(*e))
                .collect()
        });
        if fresh.is_empty() {
            return;
        }
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        for (from, to) in fresh {
            // Cycle iff the new target already reaches `from`.
            if let Some(p) = path(&reg, to, from) {
                let held_names: Vec<String> =
                    held_snapshot.iter().map(|&h| lock_name(&reg, h)).collect();
                let path_names: Vec<String> =
                    p.iter().map(|&n| lock_name(&reg, n)).collect();
                let msg = format!(
                    "lockdep: lock-order cycle (ABBA): this thread holds [{}] and acquires \
                     '{}', but the opposite order '{}' was recorded earlier",
                    held_names.join(", "),
                    lock_name(&reg, to),
                    path_names.join("' -> '"),
                );
                report(&mut reg, msg);
                return;
            }
            reg.edges.entry(from).or_default().insert(to);
        }
    }

    /// Record a release (guard drop, or condvar handing the lock back).
    pub fn on_release(id: u32) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }

    /// Control whether a detected cycle panics (default: yes).
    pub fn set_panic_on_cycle(on: bool) {
        PANIC_ON_CYCLE.store(on, Ordering::Relaxed);
    }

    /// Take the most recent non-panicking cycle report, if any.
    pub fn take_cycle_report() -> Option<String> {
        registry().lock().unwrap_or_else(|p| p.into_inner()).last_report.take()
    }

    /// Drop every recorded edge (and pending report). Thread-local seen
    /// caches are cleared lazily: stale entries only suppress re-adding
    /// edges that existed before the reset, so tests should use fresh
    /// locks after resetting.
    pub fn reset_graph() {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.edges.clear();
        reg.last_report = None;
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use std::sync::atomic::AtomicU32;

    #[inline(always)]
    pub fn ensure_id(_slot: &AtomicU32, _name: impl FnOnce() -> String) -> u32 {
        0
    }
    #[inline(always)]
    pub fn set_name(_id: u32, _name: &str) {}
    #[inline(always)]
    pub fn on_acquire(_id: u32) {}
    #[inline(always)]
    pub fn on_release(_id: u32) {}
    pub fn set_panic_on_cycle(_on: bool) {}
    pub fn take_cycle_report() -> Option<String> {
        None
    }
    pub fn reset_graph() {}
}

pub use imp::{
    ensure_id, on_acquire, on_release, reset_graph, set_name, set_panic_on_cycle,
    take_cycle_report,
};
