//! Offline stand-in for the `bytes` crate: `Bytes` (cheaply cloneable,
//! sliceable, `Arc`-backed byte view), `BytesMut` (growable buffer), and the
//! `Buf`/`BufMut` cursor traits — the subset the WAL codec, PolarFS, and
//! replication paths use. Little-endian accessors only, matching the frame
//! format.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted view into a byte buffer. `clone` and
/// `slice` are O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split into `[0, at)` (kept in `self`) and `[at, len)` (returned).
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of range");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Split into `[0, at)` (returned) and `[at, len)` (kept in `self`).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Split off the front `[0, at)` as a new `BytesMut` (copying; the real
    /// crate shares the allocation, which callers cannot observe here).
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, tail) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.data)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { data: v }
    }
}

/// Read cursor over a contiguous byte region. Little-endian accessors only.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(buf)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(buf)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(buf)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }

    // O(1) override: share the allocation instead of copying.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes out of range");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor. Little-endian accessors only.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, s: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.copy_to_bytes(3), b"xyz"[..]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn split_off_and_to() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4]);
        let mut c = Bytes::from(vec![1, 2, 3, 4]);
        let head = c.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&c[..], &[4]);
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
    }

    #[test]
    fn resize_and_index_mut() {
        let mut b = BytesMut::with_capacity(4);
        b.resize(4, 0);
        b[0] = 0xAA;
        assert_eq!(b.len(), 4);
        assert_eq!(b.freeze()[0], 0xAA);
    }
}
