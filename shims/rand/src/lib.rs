//! Offline stand-in for the `rand` crate: `Rng`/`SeedableRng` traits,
//! `rngs::StdRng`, `thread_rng()`, and `random::<T>()` — the subset the
//! workloads, benches, and chaos tests use. `StdRng` is xoshiro256++, a
//! small, fast, statistically solid PRNG; `seed_from_u64` expands the seed
//! with SplitMix64 exactly once per word, so streams are fully determined
//! by the seed.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] / [`random`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 top bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::from_rng(rng) as f32
    }
}

/// Types drawable uniformly from a range — the target of
/// [`Rng::gen_range`]. A single blanket `SampleRange` impl over this trait
/// (mirroring the real crate's structure) lets integer literals in range
/// expressions unify with the surrounding expression's type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = f64::from_rng(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

static THREAD_SEED: AtomicU64 = AtomicU64::new(0x5EED_CAB1_ED00_0D15);

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new(rngs::StdRng::seed_from_u64(
        THREAD_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
    ));
}

/// Per-thread generator. Unlike the real crate this is *deterministic per
/// process* (threads draw seeds from a global counter), which keeps
/// simulations reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
}

/// Handle to the per-thread generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// One random value from the per-thread generator.
pub fn random<T: Standard>() -> T {
    T::from_rng(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = r.gen_range(1..=3);
            assert!((1..=3).contains(&u));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.05)).count();
        assert!((3_000..8_000).contains(&hits), "5% ± tolerance, got {hits}");
    }

    #[test]
    fn full_int_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(3);
        let _: i64 = r.gen_range(i64::MIN..i64::MAX);
        let _: u64 = r.gen_range(0..u64::MAX);
    }

    #[test]
    fn thread_rng_draws() {
        let mut t = thread_rng();
        let a: u64 = t.gen();
        let b: u64 = t.gen();
        assert_ne!(a, b);
        let _: u16 = random::<u16>();
        let p: f64 = t.gen();
        assert!((0.0..1.0).contains(&p));
    }
}
