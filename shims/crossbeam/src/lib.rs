//! Offline stand-in for the `crossbeam` crate's `channel` module.
//!
//! Implements the multi-producer **multi-consumer** semantics the workspace
//! relies on (worker pools clone the `Receiver`), which `std::sync::mpsc`
//! cannot provide. A channel is a `Mutex<VecDeque>` plus a `Condvar`;
//! `bounded(n)` is accepted for API compatibility but does not block senders
//! — every use in this workspace sends at most once per sender, so capacity
//! back-pressure is never exercised.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (multi-consumer: each message is delivered
    /// to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`]: channel empty and all senders
    /// dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Channel with nominal capacity `_cap`. See module docs: senders never
    /// block in this shim.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all receivers so blocked `recv`s
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue();
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.shared.queue().len()
        }

        pub fn is_empty(&self) -> bool {
            self.shared.queue().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_recv_empty() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = std::thread::spawn(move || {
                let mut got = vec![];
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut got = vec![];
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            let mut all = got;
            all.extend(h.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }
    }
}
