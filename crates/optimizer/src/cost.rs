//! Statistics and cost estimation.

use std::collections::{HashMap, HashSet};

use polardbx_sql::expr::{BinOp, Expr};
use polardbx_sql::plan::LogicalPlan;

/// Per-table statistics kept by GMS ("statistics" in §II-A).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Average row footprint in bytes.
    pub avg_row_bytes: u64,
    /// Whether an in-memory column index covers this table (§VI-E).
    pub has_column_index: bool,
    /// Columns covered by secondary indexes (bare names).
    pub indexed_columns: HashSet<String>,
}

/// The statistics catalog.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: HashMap<String, TableStats>,
}

impl Statistics {
    /// Empty statistics (every table defaults to 1000 rows).
    pub fn new() -> Statistics {
        Statistics::default()
    }

    /// Set a table's stats.
    pub fn set(&mut self, table: impl Into<String>, stats: TableStats) {
        self.tables.insert(table.into(), stats);
    }

    /// Stats of a table (default estimate when unknown).
    pub fn get(&self, table: &str) -> TableStats {
        self.tables.get(table).cloned().unwrap_or(TableStats {
            rows: 1000,
            avg_row_bytes: 100,
            has_column_index: false,
            indexed_columns: HashSet::new(),
        })
    }
}

/// Estimated resource consumption of a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanCost {
    /// Estimated output cardinality.
    pub rows_out: f64,
    /// CPU units (≈ rows touched by each operator).
    pub cpu: f64,
    /// I/O units (≈ bytes scanned from storage).
    pub io: f64,
    /// Network units (≈ bytes moved between CN and DN).
    pub net: f64,
}

impl PlanCost {
    /// Weighted scalar used for classification and plan comparison.
    pub fn total(&self) -> f64 {
        self.cpu + self.io * 1.5 + self.net * 2.0
    }
}

/// Default predicate selectivities — the classic System-R constants.
fn selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Eq => 0.05,
            BinOp::Neq => 0.9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0.3,
            BinOp::And => {
                let mut parts = Vec::new();
                polardbx_sql::plan::split_conjuncts(e, &mut parts);
                parts.iter().map(selectivity).product()
            }
            BinOp::Or => 0.6,
            _ => 0.5,
        },
        Expr::Between { .. } => 0.25,
        Expr::InList { list, .. } => (0.05 * list.len() as f64).min(0.8),
        Expr::Like { .. } => 0.25,
        Expr::IsNull { .. } => 0.1,
        Expr::Not(inner) => 1.0 - selectivity(inner),
        _ => 0.5,
    }
}

/// Does the predicate contain `column = literal` (an indexable point)?
fn has_eq_on_column(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if let Expr::Binary { op: BinOp::Eq, left, right } = x {
            if matches!(
                (left.as_ref(), right.as_ref()),
                (Expr::ColumnIdx(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::ColumnIdx(_))
            ) {
                found = true;
            }
        }
    });
    found
}

/// Estimate the cost of `plan` under `stats`.
pub fn estimate(plan: &LogicalPlan, stats: &Statistics) -> PlanCost {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            let ts = stats.get(table);
            let rows = ts.rows as f64;
            let bytes = rows * ts.avg_row_bytes as f64;
            PlanCost {
                rows_out: rows,
                cpu: rows,
                io: bytes,
                // Without pushdown every scanned byte crosses CN↔DN.
                net: bytes * (schema.len().max(1) as f64 / schema.len().max(1) as f64),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let c = estimate(input, stats);
            let sel = selectivity(predicate).clamp(0.0001, 1.0);
            // A filter directly over a scan models an index/PK access path:
            // equality predicates cut the scanned volume, not just the
            // output (the planning half of operator push-down, §VI-B).
            if matches!(input.as_ref(), LogicalPlan::Scan { .. }) && has_eq_on_column(predicate)
            {
                // Index lookups touch a key-sized fraction of the table, far
                // below the generic 5% equality selectivity.
                let access = (sel * 0.002).clamp(0.000_001, 1.0);
                return PlanCost {
                    rows_out: (c.rows_out * access).max(1.0),
                    cpu: (c.cpu * access).max(1.0),
                    io: (c.io * access).max(1.0),
                    net: (c.net * access).max(1.0),
                };
            }
            PlanCost { rows_out: c.rows_out * sel, cpu: c.cpu + c.rows_out, ..c }
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let c = estimate(input, stats);
            PlanCost { cpu: c.cpu + c.rows_out * exprs.len() as f64 * 0.1, ..c }
        }
        LogicalPlan::Join { left, right, on, filter } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            let out = if on.is_empty() && filter.is_none() {
                l.rows_out * r.rows_out // cross join
            } else {
                // Equi-join: |L×R| / max(distinct keys) ≈ max(|L|,|R|).
                let base = l.rows_out.max(r.rows_out).max(1.0);
                let filtered = match filter {
                    Some(f) => base * selectivity(f),
                    None => base,
                };
                filtered.max(1.0)
            };
            PlanCost {
                rows_out: out,
                // Hash join: build + probe.
                cpu: l.cpu + r.cpu + l.rows_out + r.rows_out + out,
                io: l.io + r.io,
                net: l.net + r.net,
            }
        }
        LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
            let c = estimate(input, stats);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                (c.rows_out * 0.1).max(1.0)
            };
            PlanCost {
                rows_out: groups,
                cpu: c.cpu + c.rows_out * (1.0 + aggs.len() as f64 * 0.2),
                ..c
            }
        }
        LogicalPlan::Sort { input, .. } => {
            let c = estimate(input, stats);
            let n = c.rows_out.max(2.0);
            PlanCost { cpu: c.cpu + n * n.log2(), ..c }
        }
        LogicalPlan::Limit { input, n } => {
            let c = estimate(input, stats);
            PlanCost { rows_out: c.rows_out.min(*n as f64), ..c }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_sql::{build_plan, parse, Statement};
    use polardbx_common::Result;

    struct Fixture;
    impl polardbx_sql::plan::SchemaProvider for Fixture {
        fn table_columns(&self, table: &str) -> Result<Vec<String>> {
            match table {
                "big" | "big2" => Ok(vec!["id".into(), "a".into(), "b".into()]),
                "small" => Ok(vec!["id".into(), "x".into()]),
                _ => Err(polardbx_common::Error::UnknownTable { name: table.into() }),
            }
        }
    }

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set(
            "big",
            TableStats { rows: 1_000_000, avg_row_bytes: 200, ..Default::default() },
        );
        s.set(
            "big2",
            TableStats { rows: 1_000_000, avg_row_bytes: 200, ..Default::default() },
        );
        s.set("small", TableStats { rows: 100, avg_row_bytes: 50, ..Default::default() });
        s
    }

    fn plan(sql: &str) -> LogicalPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        build_plan(&sel, &Fixture).unwrap()
    }

    #[test]
    fn point_query_cheaper_than_full_scan() {
        let point = estimate(&plan("SELECT a FROM big WHERE id = 5"), &stats());
        let scan = estimate(&plan("SELECT a FROM big"), &stats());
        assert!(point.rows_out < scan.rows_out);
        // The filter reduces cardinality 20x.
        assert!(point.rows_out <= scan.rows_out * 0.06);
    }

    #[test]
    fn join_cost_exceeds_either_side() {
        let j = estimate(
            &plan("SELECT big.a FROM big JOIN big2 ON big.id = big2.id"),
            &stats(),
        );
        let s = estimate(&plan("SELECT a FROM big"), &stats());
        assert!(j.total() > s.total());
        // Equi-join output ~ max side, not the cross product.
        assert!(j.rows_out <= 1_100_000.0);
    }

    #[test]
    fn cross_join_explodes() {
        let c = estimate(&plan("SELECT big.a FROM big, small"), &stats());
        assert!(c.rows_out >= 1_000_000.0 * 100.0 * 0.99);
    }

    #[test]
    fn small_table_cheap() {
        let c = estimate(&plan("SELECT x FROM small"), &stats());
        assert!(c.total() < 100_000.0);
    }

    #[test]
    fn conjunctive_selectivity_multiplies() {
        let one = estimate(&plan("SELECT a FROM big WHERE id = 5"), &stats());
        let two = estimate(&plan("SELECT a FROM big WHERE id = 5 AND a = 3"), &stats());
        assert!(two.rows_out < one.rows_out);
    }

    #[test]
    fn sort_adds_nlogn() {
        let unsorted = estimate(&plan("SELECT a FROM big"), &stats());
        let sorted = estimate(&plan("SELECT a FROM big ORDER BY a"), &stats());
        assert!(sorted.cpu > unsorted.cpu);
    }

    #[test]
    fn limit_caps_cardinality() {
        let c = estimate(&plan("SELECT a FROM big LIMIT 10"), &stats());
        assert_eq!(c.rows_out, 10.0);
    }

    #[test]
    fn unknown_table_gets_default() {
        let s = Statistics::new();
        assert_eq!(s.get("whatever").rows, 1000);
    }
}
