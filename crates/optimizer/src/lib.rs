//! The HTAP-oriented cost-based optimizer (§VI-B and §VIII).
//!
//! Four responsibilities, mirroring the paper:
//!
//! * [`cost`] — cardinality and resource-cost estimation over logical
//!   plans: "the optimizer will first estimate the cost of core resource
//!   (e.g., CPU, memory, I/O, network) consumption required by the
//!   request".
//! * [`mod@classify`] — request classification: "based on this cost and an
//!   empirical threshold, each request is classified as either an OLTP or
//!   an OLAP request", which drives routing to RW vs RO nodes and pool
//!   placement in the executor.
//! * [`rewrite`] — logical rewrites: predicate pushdown toward scans
//!   (operator push-down's planning half) and lifting equi-join keys out of
//!   filters above cross joins so the executor can hash-join instead of
//!   nested-loop over a cross product.
//! * [`storage`] — the row-store vs in-memory-column-index physical choice
//!   (§VI-E): "large data scans and push-down plans with join or
//!   aggregation prefer in-memory column index, while point queries choose
//!   InnoDB row store".
//! * [`advisor`] — the SQL Advisor of §VIII: indexable-column analysis,
//!   candidate enumeration, what-if cost evaluation and recommendation.

pub mod advisor;
pub mod classify;
pub mod cost;
pub mod rewrite;
pub mod storage;

pub use advisor::{recommend_indexes, IndexRecommendation};
pub use classify::{classify, classify_with_threshold, WorkloadClass, DEFAULT_AP_THRESHOLD};
pub use cost::{estimate, PlanCost, Statistics, TableStats};
pub use rewrite::{optimize, optimize_with_stats};
pub use storage::{choose_storage, StorageChoice};
