//! TP/AP request classification (§VI-B).
//!
//! "When a request arrives, the optimizer will first estimate the cost of
//! core resource consumption required by the request. Based on this cost
//! and an empirical threshold, each request is classified as either an
//! OLTP or an OLAP request. Afterwards, all OLTP requests are routed to
//! the primary RW node, while OLAP requests are further fed into a MPP
//! optimization stage."

use polardbx_sql::plan::LogicalPlan;

use crate::cost::{estimate, Statistics};

/// Workload class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Short transactional request → RW node, TP thread pool.
    Tp,
    /// Analytical request → RO nodes, MPP stage, AP pools.
    Ap,
}

/// The empirical threshold: total estimated cost above which a request is
/// treated as analytical. Calibrated so sysbench/TPC-C point statements
/// classify TP and TPC-H shapes classify AP at our default statistics.
pub const DEFAULT_AP_THRESHOLD: f64 = 500_000.0;

/// Classify a plan by estimated cost against `threshold`.
pub fn classify_with_threshold(
    plan: &LogicalPlan,
    stats: &Statistics,
    threshold: f64,
) -> WorkloadClass {
    if estimate(plan, stats).total() > threshold {
        WorkloadClass::Ap
    } else {
        WorkloadClass::Tp
    }
}

/// Classify with the default threshold.
pub fn classify(plan: &LogicalPlan, stats: &Statistics) -> WorkloadClass {
    classify_with_threshold(plan, stats, DEFAULT_AP_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use polardbx_common::Result;
    use polardbx_sql::{build_plan, parse, Statement};

    struct Fixture;
    impl polardbx_sql::plan::SchemaProvider for Fixture {
        fn table_columns(&self, _table: &str) -> Result<Vec<String>> {
            Ok(vec!["id".into(), "a".into(), "b".into()])
        }
    }

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set(
            "lineitem",
            TableStats { rows: 6_000_000, avg_row_bytes: 120, ..Default::default() },
        );
        s.set(
            "orders",
            TableStats { rows: 1_500_000, avg_row_bytes: 100, ..Default::default() },
        );
        s.set("sbtest", TableStats { rows: 100_000, avg_row_bytes: 200, ..Default::default() });
        s
    }

    fn plan(sql: &str) -> LogicalPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        build_plan(&sel, &Fixture).unwrap()
    }

    #[test]
    fn point_read_is_tp() {
        let p = plan("SELECT a FROM sbtest WHERE id = 42");
        assert_eq!(classify(&p, &stats()), WorkloadClass::Tp);
    }

    #[test]
    fn full_scan_aggregation_is_ap() {
        let p = plan("SELECT a, SUM(b) FROM lineitem GROUP BY a");
        assert_eq!(classify(&p, &stats()), WorkloadClass::Ap);
    }

    #[test]
    fn big_join_is_ap() {
        let p = plan("SELECT lineitem.a FROM lineitem JOIN orders ON lineitem.id = orders.id");
        assert_eq!(classify(&p, &stats()), WorkloadClass::Ap);
    }

    #[test]
    fn threshold_is_tunable() {
        let p = plan("SELECT a FROM sbtest WHERE id = 42");
        assert_eq!(classify_with_threshold(&p, &stats(), 0.1), WorkloadClass::Ap);
        let p2 = plan("SELECT a, SUM(b) FROM lineitem GROUP BY a");
        assert_eq!(classify_with_threshold(&p2, &stats(), f64::MAX), WorkloadClass::Tp);
    }

    #[test]
    fn misclassification_is_possible_by_design() {
        // §VI-D: "an AP query might have been mistakenly recognized as a TP
        // query" — a selective-looking filter over a huge table sneaks under
        // the threshold if stats are stale (rows believed small).
        let mut stale = Statistics::new();
        stale.set("lineitem", TableStats { rows: 10, avg_row_bytes: 100, ..Default::default() });
        let p = plan("SELECT a, SUM(b) FROM lineitem GROUP BY a");
        assert_eq!(classify(&p, &stale), WorkloadClass::Tp, "stale stats → misclassified");
        // The executor's pool re-assignment (not the optimizer) fixes this
        // at runtime.
    }
}
