//! Row store vs in-memory column index: the physical storage choice (§VI-E).
//!
//! "After a comprehensive comparison of physical execution plans on both
//! row store and column store, the optimizer will finally select the one
//! with the lowest cost. In practice, large data scans and push-down plans
//! with join or aggregation prefer in-memory column index, while point
//! queries choose InnoDB row store."

use polardbx_sql::expr::{BinOp, Expr};
use polardbx_sql::plan::LogicalPlan;

use crate::cost::Statistics;

/// The chosen scan implementation for a table access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageChoice {
    /// InnoDB-style row store (B-tree point/range access).
    RowStore,
    /// In-memory column index (vectorized scan/filter/agg).
    ColumnIndex,
}

/// Rows a scan is expected to touch after its adjacent filters.
fn scanned_rows(plan: &LogicalPlan, table: &str, stats: &Statistics) -> f64 {
    fn walk(p: &LogicalPlan, table: &str, under_eq_filter: &mut bool) -> bool {
        match p {
            LogicalPlan::Scan { table: t, .. } => t == table,
            LogicalPlan::Filter { input, predicate } => {
                if has_pk_point(predicate) {
                    *under_eq_filter = true;
                }
                walk(input, table, under_eq_filter)
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => walk(input, table, under_eq_filter),
            LogicalPlan::Join { left, right, .. } => {
                walk(left, table, under_eq_filter)
                    || walk(right, table, under_eq_filter)
            }
        }
    }
    let mut point = false;
    if !walk(plan, table, &mut point) {
        return 0.0;
    }
    let rows = stats.get(table).rows as f64;
    if point {
        1.0
    } else {
        rows
    }
}

fn has_pk_point(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if let Expr::Binary { op: BinOp::Eq, left, right } = x {
            let lit_and_col = matches!(
                (left.as_ref(), right.as_ref()),
                (Expr::ColumnIdx(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::ColumnIdx(_))
            );
            if lit_and_col {
                found = true;
            }
        }
    });
    found
}

fn has_join_or_agg(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Join { .. } | LogicalPlan::Aggregate { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => has_join_or_agg(input),
    }
}

/// Rows threshold above which a columnar scan wins (vectorization amortizes
/// per-row overheads only on bulk scans).
pub const COLUMNAR_SCAN_THRESHOLD: f64 = 10_000.0;

/// Choose the scan implementation for `table` inside `plan`.
pub fn choose_storage(plan: &LogicalPlan, table: &str, stats: &Statistics) -> StorageChoice {
    if !stats.get(table).has_column_index {
        return StorageChoice::RowStore;
    }
    let rows = scanned_rows(plan, table, stats);
    if rows <= 1.5 {
        // Point query: the B-tree wins.
        return StorageChoice::RowStore;
    }
    if rows >= COLUMNAR_SCAN_THRESHOLD || has_join_or_agg(plan) {
        StorageChoice::ColumnIndex
    } else {
        StorageChoice::RowStore
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use polardbx_common::Result;
    use polardbx_sql::{build_plan, parse, Statement};

    struct Fixture;
    impl polardbx_sql::plan::SchemaProvider for Fixture {
        fn table_columns(&self, _t: &str) -> Result<Vec<String>> {
            Ok(vec!["id".into(), "a".into(), "b".into()])
        }
    }

    fn stats(with_ci: bool) -> Statistics {
        let mut s = Statistics::new();
        s.set(
            "lineitem",
            TableStats {
                rows: 6_000_000,
                avg_row_bytes: 120,
                has_column_index: with_ci,
                ..Default::default()
            },
        );
        s
    }

    fn plan(sql: &str) -> LogicalPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        build_plan(&sel, &Fixture).unwrap()
    }

    #[test]
    fn no_column_index_means_row_store() {
        let p = plan("SELECT a, SUM(b) FROM lineitem GROUP BY a");
        assert_eq!(choose_storage(&p, "lineitem", &stats(false)), StorageChoice::RowStore);
    }

    #[test]
    fn large_scan_prefers_column_index() {
        let p = plan("SELECT a, SUM(b) FROM lineitem GROUP BY a");
        assert_eq!(choose_storage(&p, "lineitem", &stats(true)), StorageChoice::ColumnIndex);
    }

    #[test]
    fn point_query_prefers_row_store() {
        let p = plan("SELECT a FROM lineitem WHERE id = 5");
        assert_eq!(choose_storage(&p, "lineitem", &stats(true)), StorageChoice::RowStore);
    }

    #[test]
    fn join_plans_prefer_column_index() {
        let p = plan("SELECT l.a FROM lineitem l JOIN lineitem r ON l.id = r.id");
        assert_eq!(choose_storage(&p, "lineitem", &stats(true)), StorageChoice::ColumnIndex);
    }

    #[test]
    fn unrelated_table_scans_zero_rows() {
        let p = plan("SELECT a FROM lineitem");
        assert_eq!(scanned_rows(&p, "nope", &stats(true)), 0.0);
    }
}
