//! SQL Advisor: what-if index recommendation (§VIII "Index Recommendation").
//!
//! "This advisor can analyze the SQL to find which columns can use the
//! index (Indexable Column), enumerate the possible index combinations to
//! get the Candidate Index, prune some candidates with low selectivity
//! through heuristic search, use the optimizer to estimate costs with
//! these hypothetical (what-if) indexes, select the index combination with
//! the highest saving and recommend it to the user."

use std::collections::{BTreeMap, BTreeSet};

use polardbx_sql::ast::{Select, Statement};
use polardbx_sql::expr::{BinOp, Expr};

use crate::cost::Statistics;

/// A recommended index with its estimated benefit.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRecommendation {
    /// Table to index.
    pub table: String,
    /// Index columns in order.
    pub columns: Vec<String>,
    /// Estimated net saving (cost units) across the analyzed workload,
    /// after subtracting maintenance overhead.
    pub saving: f64,
}

/// Indexable-column occurrences per table found in a workload.
#[derive(Debug, Default)]
struct Indexables {
    /// table → column → (eq_count, range_count)
    by_table: BTreeMap<String, BTreeMap<String, (u32, u32)>>,
}

impl Indexables {
    fn add(&mut self, table: &str, column: &str, eq: bool) {
        let entry = self
            .by_table
            .entry(table.to_string())
            .or_default()
            .entry(column.to_string())
            .or_insert((0, 0));
        if eq {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
}

/// Does `name` (possibly qualified) belong to `table` with the given alias
/// map? Returns the bare column name when it does.
fn column_of(
    name: &str,
    tables: &BTreeMap<String, String>, // alias → table
) -> Option<(String, String)> {
    match name.split_once('.') {
        Some((qual, col)) => {
            tables.get(qual).map(|t| (t.clone(), col.to_string()))
        }
        None => {
            // Unqualified: attribute to the single table if unambiguous.
            if tables.len() == 1 {
                let t = tables.values().next().unwrap().clone();
                Some((t, name.to_string()))
            } else {
                None
            }
        }
    }
}

fn analyze_predicate(e: &Expr, tables: &BTreeMap<String, String>, out: &mut Indexables) {
    e.visit(&mut |x| match x {
        Expr::Binary { op, left, right } => {
            let eq = matches!(op, BinOp::Eq);
            let rangey = matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
            if eq || rangey {
                for (a, b) in [(left, right), (right, left)] {
                    if let (Expr::Column(name), Expr::Literal(_)) = (a.as_ref(), b.as_ref()) {
                        if let Some((t, c)) = column_of(name, tables) {
                            out.add(&t, &c, eq);
                        }
                    }
                }
                // Join keys are indexable on both sides.
                if eq {
                    if let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref())
                    {
                        if let Some((t, c)) = column_of(l, tables) {
                            out.add(&t, &c, true);
                        }
                        if let Some((t, c)) = column_of(r, tables) {
                            out.add(&t, &c, true);
                        }
                    }
                }
            }
        }
        Expr::Between { expr, .. } => {
            if let Expr::Column(name) = expr.as_ref() {
                if let Some((t, c)) = column_of(name, tables) {
                    out.add(&t, &c, false);
                }
            }
        }
        Expr::InList { expr, .. } => {
            if let Expr::Column(name) = expr.as_ref() {
                if let Some((t, c)) = column_of(name, tables) {
                    out.add(&t, &c, true);
                }
            }
        }
        _ => {}
    });
}

fn analyze_select(sel: &Select, out: &mut Indexables) {
    let mut tables = BTreeMap::new();
    for t in &sel.from {
        tables.insert(t.effective_name().to_string(), t.name.clone());
    }
    for j in &sel.joins {
        tables.insert(j.table.effective_name().to_string(), j.table.name.clone());
    }
    if let Some(p) = &sel.predicate {
        analyze_predicate(p, &tables, out);
    }
    for j in &sel.joins {
        analyze_predicate(&j.on, &tables, out);
    }
    // GROUP BY columns benefit from indexes too (ordered scans).
    for g in &sel.group_by {
        if let Expr::Column(name) = g {
            if let Some((t, c)) = column_of(name, &tables) {
                out.add(&t, &c, false);
            }
        }
    }
    let _ = &sel.items; // select list alone does not make a column indexable
}

/// Analyze a workload of SQL statements and recommend up to `k` indexes.
///
/// What-if model: an equality predicate on an indexed column turns a full
/// scan (`rows` cost units) into a lookup (`rows × 0.05`); a range
/// predicate into `rows × 0.3`. Each index charges a maintenance cost of
/// `rows × 0.1` (the §VIII caveat: indexes "increase the number of
/// participants in two-phase commit").
pub fn recommend_indexes(
    workload: &[Statement],
    stats: &Statistics,
    k: usize,
) -> Vec<IndexRecommendation> {
    let mut indexables = Indexables::default();
    for stmt in workload {
        match stmt {
            Statement::Select(sel) => analyze_select(sel, &mut indexables),
            Statement::Update(u) => {
                let mut tables = BTreeMap::new();
                tables.insert(u.table.clone(), u.table.clone());
                if let Some(p) = &u.predicate {
                    analyze_predicate(p, &tables, &mut indexables);
                }
            }
            Statement::Delete(d) => {
                let mut tables = BTreeMap::new();
                tables.insert(d.table.clone(), d.table.clone());
                if let Some(p) = &d.predicate {
                    analyze_predicate(p, &tables, &mut indexables);
                }
            }
            _ => {}
        }
    }

    let mut recs: Vec<IndexRecommendation> = Vec::new();
    for (table, columns) in &indexables.by_table {
        let ts = stats.get(table);
        let rows = ts.rows as f64;
        // Maintenance: ongoing update cost plus a fixed floor for the extra
        // 2PC participants and DDL overhead (§VIII's caveat).
        let maintenance = rows * 0.1 + 1000.0;
        // Single-column candidates.
        let mut seen_pairs: BTreeSet<Vec<String>> = BTreeSet::new();
        for (col, (eq, range)) in columns {
            if ts.indexed_columns.contains(col) {
                continue; // already indexed
            }
            let saving =
                (*eq as f64) * rows * (1.0 - 0.05) + (*range as f64) * rows * (1.0 - 0.3);
            let net = saving - maintenance;
            // Heuristic pruning: drop low-selectivity candidates.
            if net > 0.0 {
                recs.push(IndexRecommendation {
                    table: table.clone(),
                    columns: vec![col.clone()],
                    saving: net,
                });
            }
        }
        // Two-column composite candidates from the top equality columns.
        let mut eq_cols: Vec<(&String, u32)> =
            columns.iter().map(|(c, (eq, _))| (c, *eq)).filter(|(_, e)| *e > 0).collect();
        eq_cols.sort_by_key(|c| std::cmp::Reverse(c.1));
        for pair in eq_cols.windows(2) {
            let cols = vec![pair[0].0.clone(), pair[1].0.clone()];
            if seen_pairs.insert(cols.clone()) {
                let hits = (pair[0].1 + pair[1].1) as f64;
                let net = hits * rows * (1.0 - 0.02) - maintenance * 1.5 - 1000.0;
                if net > 0.0 {
                    recs.push(IndexRecommendation { table: table.clone(), columns: cols, saving: net });
                }
            }
        }
    }
    recs.sort_by(|a, b| b.saving.partial_cmp(&a.saving).unwrap_or(std::cmp::Ordering::Equal));
    recs.truncate(k);
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use polardbx_sql::parse;

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set(
            "orders",
            TableStats { rows: 1_000_000, avg_row_bytes: 100, ..Default::default() },
        );
        s.set("tiny", TableStats { rows: 5, avg_row_bytes: 50, ..Default::default() });
        s
    }

    #[test]
    fn frequent_equality_column_recommended() {
        let workload: Vec<_> = (0..5)
            .map(|_| parse("SELECT * FROM orders WHERE o_cust = 7").unwrap())
            .collect();
        let recs = recommend_indexes(&workload, &stats(), 3);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].table, "orders");
        assert_eq!(recs[0].columns, vec!["o_cust"]);
        assert!(recs[0].saving > 0.0);
    }

    #[test]
    fn already_indexed_column_skipped() {
        let mut s = stats();
        let mut ts = s.get("orders");
        ts.indexed_columns.insert("o_cust".into());
        s.set("orders", ts);
        let workload = vec![parse("SELECT * FROM orders WHERE o_cust = 7").unwrap()];
        let recs = recommend_indexes(&workload, &s, 3);
        assert!(recs.iter().all(|r| r.columns != vec!["o_cust".to_string()]));
    }

    #[test]
    fn tiny_table_not_worth_indexing() {
        // Savings on 5 rows never beat maintenance — pruned.
        let workload = vec![parse("SELECT * FROM tiny WHERE a = 1").unwrap()];
        let recs = recommend_indexes(&workload, &stats(), 3);
        assert!(recs.is_empty());
    }

    #[test]
    fn join_keys_indexable_on_both_sides() {
        let workload = vec![parse(
            "SELECT o.o_id FROM orders o JOIN orders2 x ON o.o_cust = x.x_cust",
        )
        .unwrap()];
        let mut s = stats();
        s.set(
            "orders2",
            TableStats { rows: 500_000, avg_row_bytes: 80, ..Default::default() },
        );
        let recs = recommend_indexes(&workload, &s, 5);
        let tables: BTreeSet<_> = recs.iter().map(|r| r.table.clone()).collect();
        assert!(tables.contains("orders"));
        assert!(tables.contains("orders2"));
    }

    #[test]
    fn update_delete_predicates_analyzed() {
        let workload = vec![
            parse("UPDATE orders SET o_total = 0 WHERE o_cust = 3").unwrap(),
            parse("DELETE FROM orders WHERE o_cust = 4").unwrap(),
        ];
        let recs = recommend_indexes(&workload, &stats(), 3);
        assert!(recs.iter().any(|r| r.columns == vec!["o_cust".to_string()]));
    }

    #[test]
    fn ranked_by_saving_and_truncated() {
        let workload = vec![
            parse("SELECT * FROM orders WHERE o_cust = 1").unwrap(),
            parse("SELECT * FROM orders WHERE o_cust = 2").unwrap(),
            parse("SELECT * FROM orders WHERE o_date > 100").unwrap(),
        ];
        let recs = recommend_indexes(&workload, &stats(), 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].columns, vec!["o_cust"], "2 eq hits beat 1 range hit");
    }
}
