//! Logical rewrites: predicate pushdown and equi-join key lifting.
//!
//! These are the planning half of §VI-B's operator push-down: moving
//! filters as close to the scans as possible both shrinks CN↔DN traffic
//! and lets the executor push scan+filter fragments onto DN nodes. Lifting
//! `l.k = r.k` conjuncts out of a filter above a cross join converts the
//! executor's nested-loop-over-cross-product into a hash join.

use polardbx_sql::expr::{BinOp, Expr};
use polardbx_sql::plan::{conjoin, split_conjuncts, LogicalPlan};

use crate::cost::{estimate, Statistics};

/// Optimize a plan: run rewrites to fixpoint (bounded).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut p = plan;
    for _ in 0..8 {
        let (next, changed) = rewrite(p);
        p = next;
        if !changed {
            break;
        }
    }
    p
}

/// Full optimization: logical rewrites plus cost-based build-side
/// selection — hash joins build on the smaller input so the larger side
/// becomes the (partitionable) probe stream, which is also what lets the
/// MPP executor parallelize it.
pub fn optimize_with_stats(plan: LogicalPlan, stats: &Statistics) -> LogicalPlan {
    choose_build_sides(optimize(plan), stats)
}

fn choose_build_sides(plan: LogicalPlan, stats: &Statistics) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { left, right, on, filter } => {
            let left = choose_build_sides(*left, stats);
            let right = choose_build_sides(*right, stats);
            let la = left.schema().len();
            let ra = right.schema().len();
            let lrows = estimate(&left, stats).rows_out;
            let rrows = estimate(&right, stats).rows_out;
            if on.is_empty() || lrows <= rrows * 1.5 {
                return LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                    filter,
                };
            }
            // Swap: the smaller (old right) side becomes the build input.
            // Column positions in the swapped concatenation move — remap the
            // residual filter and restore the original order with a pure
            // projection above so parent expressions stay valid.
            let flipped: Vec<(usize, usize)> = on.iter().map(|&(l, r)| (r, l)).collect();
            let remap = |e: &Expr| {
                e.transform(&|x| match x {
                    Expr::ColumnIdx(i) => Ok(Expr::ColumnIdx(if *i < la {
                        ra + *i
                    } else {
                        *i - la
                    })),
                    other => Ok(other.clone()),
                })
                .expect("infallible remap")
            };
            let new_filter = filter.as_ref().map(remap);
            let mut names = left.schema();
            names.extend(right.schema());
            let join = LogicalPlan::Join {
                left: Box::new(right),
                right: Box::new(left),
                on: flipped,
                filter: new_filter,
            };
            let exprs: Vec<Expr> = (0..la)
                .map(|j| Expr::ColumnIdx(ra + j))
                .chain((0..ra).map(Expr::ColumnIdx))
                .collect();
            LogicalPlan::Project { input: Box::new(join), exprs, names }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(choose_build_sides(*input, stats)),
            predicate,
        },
        LogicalPlan::Project { input, exprs, names } => LogicalPlan::Project {
            input: Box::new(choose_build_sides(*input, stats)),
            exprs,
            names,
        },
        LogicalPlan::Aggregate { input, group_by, aggs, names } => LogicalPlan::Aggregate {
            input: Box::new(choose_build_sides(*input, stats)),
            group_by,
            aggs,
            names,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(choose_build_sides(*input, stats)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(choose_build_sides(*input, stats)), n }
        }
        leaf => leaf,
    }
}

fn rewrite(plan: LogicalPlan) -> (LogicalPlan, bool) {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (input, mut changed) = rewrite(*input);
            match input {
                // Merge stacked filters.
                LogicalPlan::Filter { input: inner, predicate: inner_pred } => {
                    let merged = Expr::binary(BinOp::And, predicate, inner_pred);
                    (LogicalPlan::Filter { input: inner, predicate: merged }, true)
                }
                // Push through a join.
                LogicalPlan::Join { left, right, mut on, filter } => {
                    let left_arity = left.schema().len();
                    let right_arity = right.schema().len();
                    let mut conjuncts = Vec::new();
                    split_conjuncts(&predicate, &mut conjuncts);
                    if let Some(f) = filter {
                        split_conjuncts(&f, &mut conjuncts);
                    }
                    let mut left_push = Vec::new();
                    let mut right_push = Vec::new();
                    let mut keep = Vec::new();
                    for c in conjuncts {
                        // Equi-key lifting: #l = #r across sides.
                        if let Expr::Binary { op: BinOp::Eq, left: a, right: b } = &c {
                            if let (Expr::ColumnIdx(x), Expr::ColumnIdx(y)) =
                                (a.as_ref(), b.as_ref())
                            {
                                let (lo, hi) = if x <= y { (*x, *y) } else { (*y, *x) };
                                if lo < left_arity && hi >= left_arity {
                                    on.push((lo, hi - left_arity));
                                    changed = true;
                                    continue;
                                }
                            }
                        }
                        let cols = col_set(&c);
                        if cols.iter().all(|&i| i < left_arity) {
                            left_push.push(c);
                            changed = true;
                        } else if cols.iter().all(|&i| i >= left_arity)
                            && cols.iter().all(|&i| i < left_arity + right_arity)
                        {
                            right_push.push(shift(&c, -(left_arity as isize)));
                            changed = true;
                        } else {
                            keep.push(c);
                        }
                    }
                    let new_left = match conjoin(left_push) {
                        Some(p) => {
                            LogicalPlan::Filter { input: left, predicate: p }
                        }
                        None => *left,
                    };
                    let new_right = match conjoin(right_push) {
                        Some(p) => {
                            LogicalPlan::Filter { input: right, predicate: p }
                        }
                        None => *right,
                    };
                    let join = LogicalPlan::Join {
                        left: Box::new(new_left),
                        right: Box::new(new_right),
                        on,
                        filter: None,
                    };
                    let out = match conjoin(keep) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                        None => join,
                    };
                    (out, changed)
                }
                // Push through a pure-column projection.
                LogicalPlan::Project { input: inner, exprs, names }
                    if exprs.iter().all(|e| matches!(e, Expr::ColumnIdx(_))) =>
                {
                    let mapping: Vec<usize> = exprs
                        .iter()
                        .map(|e| match e {
                            Expr::ColumnIdx(i) => *i,
                            _ => unreachable!(),
                        })
                        .collect();
                    let remapped = predicate
                        .transform(&|e| match e {
                            Expr::ColumnIdx(i) => Ok(Expr::ColumnIdx(mapping[*i])),
                            other => Ok(other.clone()),
                        })
                        .expect("infallible remap");
                    (
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::Filter {
                                input: inner,
                                predicate: remapped,
                            }),
                            exprs,
                            names,
                        },
                        true,
                    )
                }
                other => (
                    LogicalPlan::Filter { input: Box::new(other), predicate },
                    changed,
                ),
            }
        }
        LogicalPlan::Project { input, exprs, names } => {
            let (input, changed) = rewrite(*input);
            (LogicalPlan::Project { input: Box::new(input), exprs, names }, changed)
        }
        LogicalPlan::Join { left, right, on, filter } => {
            let (l, cl) = rewrite(*left);
            let (r, cr) = rewrite(*right);
            // A join-level residual filter also participates in pushdown:
            // express it as a filter above and let the Filter rule handle it.
            if let Some(f) = filter {
                let join = LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    on,
                    filter: None,
                };
                (LogicalPlan::Filter { input: Box::new(join), predicate: f }, true)
            } else {
                (
                    LogicalPlan::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        on,
                        filter: None,
                    },
                    cl || cr,
                )
            }
        }
        LogicalPlan::Aggregate { input, group_by, aggs, names } => {
            let (input, changed) = rewrite(*input);
            (
                LogicalPlan::Aggregate { input: Box::new(input), group_by, aggs, names },
                changed,
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let (input, changed) = rewrite(*input);
            (LogicalPlan::Sort { input: Box::new(input), keys }, changed)
        }
        LogicalPlan::Limit { input, n } => {
            let (input, changed) = rewrite(*input);
            (LogicalPlan::Limit { input: Box::new(input), n }, changed)
        }
        leaf => (leaf, false),
    }
}

fn col_set(e: &Expr) -> Vec<usize> {
    let mut out = Vec::new();
    e.visit(&mut |x| {
        if let Expr::ColumnIdx(i) = x {
            out.push(*i);
        }
    });
    out
}

fn shift(e: &Expr, delta: isize) -> Expr {
    e.transform(&|x| match x {
        Expr::ColumnIdx(i) => Ok(Expr::ColumnIdx((*i as isize + delta) as usize)),
        other => Ok(other.clone()),
    })
    .expect("infallible shift")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Result;
    use polardbx_sql::{build_plan, parse, Statement};

    struct Fixture;
    impl polardbx_sql::plan::SchemaProvider for Fixture {
        fn table_columns(&self, table: &str) -> Result<Vec<String>> {
            match table {
                "a" => Ok(vec!["id".into(), "x".into()]),
                "b" => Ok(vec!["id".into(), "y".into()]),
                _ => Err(polardbx_common::Error::UnknownTable { name: table.into() }),
            }
        }
    }

    fn plan(sql: &str) -> LogicalPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        build_plan(&sel, &Fixture).unwrap()
    }

    fn find_join(p: &LogicalPlan) -> Option<&LogicalPlan> {
        match p {
            LogicalPlan::Join { .. } => Some(p),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => find_join(input),
            _ => None,
        }
    }

    #[test]
    fn equi_keys_lifted_from_cross_join_filter() {
        let p = plan("SELECT a.x FROM a, b WHERE a.id = b.id AND a.x > 5");
        let opt = optimize(p);
        let LogicalPlan::Join { on, left, .. } = find_join(&opt).unwrap() else { panic!() };
        assert_eq!(on, &vec![(0usize, 0usize)], "equi key lifted into the join");
        // The single-side conjunct was pushed below the join.
        assert!(
            matches!(left.as_ref(), LogicalPlan::Filter { .. }),
            "a.x > 5 pushed to the left input: {opt:?}"
        );
    }

    #[test]
    fn right_side_predicates_remap_indices() {
        let p = plan("SELECT a.x FROM a, b WHERE b.y = 7");
        let opt = optimize(p);
        let LogicalPlan::Join { right, .. } = find_join(&opt).unwrap() else { panic!() };
        let LogicalPlan::Filter { predicate, .. } = right.as_ref() else {
            panic!("predicate must be pushed right: {opt:?}")
        };
        // b.y is global index 3, local index 1 after remapping.
        let mut cols = Vec::new();
        predicate.visit(&mut |e| {
            if let Expr::ColumnIdx(i) = e {
                cols.push(*i);
            }
        });
        assert_eq!(cols, vec![1]);
    }

    #[test]
    fn cross_side_residual_stays_above() {
        let p = plan("SELECT a.x FROM a, b WHERE a.x > b.y");
        let opt = optimize(p);
        // The comparison references both sides: must remain a filter above.
        let LogicalPlan::Project { input, .. } = &opt else { panic!() };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }), "{opt:?}");
    }

    #[test]
    fn stacked_filters_merge() {
        // Build Filter(Filter(Scan)) manually.
        let scan = plan("SELECT * FROM a");
        let f1 = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::binary(BinOp::Gt, Expr::ColumnIdx(0), Expr::int(1)),
        };
        let f2 = LogicalPlan::Filter {
            input: Box::new(f1),
            predicate: Expr::binary(BinOp::Lt, Expr::ColumnIdx(0), Expr::int(10)),
        };
        let opt = optimize(f2);
        let LogicalPlan::Filter { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(input.as_ref(), LogicalPlan::Scan { .. }), "single merged filter");
    }

    #[test]
    fn join_on_conditions_survive() {
        let p = plan("SELECT a.x FROM a JOIN b ON a.id = b.id WHERE a.x = 1");
        let opt = optimize(p);
        let LogicalPlan::Join { on, .. } = find_join(&opt).unwrap() else { panic!() };
        assert_eq!(on.len(), 1);
    }

    #[test]
    fn build_side_swap_preserves_schema_and_results() {
        use crate::cost::{Statistics, TableStats};
        let mut stats = Statistics::new();
        stats.set("a", TableStats { rows: 1_000_000, avg_row_bytes: 10, ..Default::default() });
        stats.set("b", TableStats { rows: 10, avg_row_bytes: 10, ..Default::default() });
        // a (huge) joins b (tiny): the build side must become b.
        let p = plan("SELECT a.x, b.y FROM a JOIN b ON a.id = b.id");
        let opt = super::optimize_with_stats(p.clone(), &stats);
        // Output schema unchanged.
        assert_eq!(opt.schema(), p.schema());
        // Somewhere inside, the join's LEFT (build) scans table b.
        fn build_table(p: &LogicalPlan) -> Option<String> {
            match p {
                LogicalPlan::Join { left, .. } => match left.as_ref() {
                    LogicalPlan::Scan { table, .. } => Some(table.clone()),
                    other => build_table(other),
                },
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => build_table(input),
                _ => None,
            }
        }
        assert_eq!(build_table(&opt).as_deref(), Some("b"));
    }

    #[test]
    fn no_swap_when_left_already_small() {
        use crate::cost::{Statistics, TableStats};
        let mut stats = Statistics::new();
        stats.set("a", TableStats { rows: 10, avg_row_bytes: 10, ..Default::default() });
        stats.set("b", TableStats { rows: 1_000_000, avg_row_bytes: 10, ..Default::default() });
        let p = plan("SELECT a.x FROM a JOIN b ON a.id = b.id");
        let opt = super::optimize_with_stats(p.clone(), &stats);
        assert_eq!(opt, super::optimize(p), "already build-optimal: unchanged");
    }

    #[test]
    fn optimize_is_idempotent() {
        let p = plan("SELECT a.x FROM a, b WHERE a.id = b.id AND a.x > 5 AND b.y < 3");
        let once = optimize(p);
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
    }
}
