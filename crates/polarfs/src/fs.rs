//! The PolarFS service façade: chunk-server fleet, volume management, and
//! the adapters the DN layer consumes (page store, redo-log sink), plus the
//! bandwidth model used to cost bulk data movement.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{DcId, Error, Lsn, NodeId, Result};
use polardbx_wal::LogSink;

use crate::chunk::ChunkServer;
use crate::volume::{Volume, VolumeId};

/// PolarFS deployment parameters.
#[derive(Debug, Clone)]
pub struct PolarFsConfig {
    /// Chunk size in bytes. The real system uses 10 GB; the default here is
    /// scaled down so tests provision quickly. All invariants are
    /// size-independent.
    pub chunk_size: u64,
    /// Simulated I/O latency per majority-committed write.
    pub io_latency: Duration,
    /// Chunk servers per datacenter.
    pub servers_per_dc: usize,
}

impl Default for PolarFsConfig {
    fn default() -> Self {
        PolarFsConfig {
            chunk_size: 4 * 1024 * 1024,
            io_latency: Duration::ZERO,
            servers_per_dc: 3,
        }
    }
}

/// The storage service: one fleet of chunk servers per datacenter and a
/// registry of volumes. Volumes never span datacenters (§III: "our
/// cross-datacenter data replication is not achieved at the SN layer, but
/// at the DN layer").
pub struct PolarFs {
    config: PolarFsConfig,
    fleets: RwLock<BTreeMap<DcId, Vec<Arc<ChunkServer>>>>,
    volumes: RwLock<BTreeMap<VolumeId, (DcId, Arc<Volume>)>>,
    next_volume: std::sync::atomic::AtomicU64,
    next_node: std::sync::atomic::AtomicU64,
}

impl PolarFs {
    /// A fresh service with the given config.
    pub fn new(config: PolarFsConfig) -> Arc<PolarFs> {
        Arc::new(PolarFs {
            config,
            fleets: RwLock::new(BTreeMap::new()),
            volumes: RwLock::new(BTreeMap::new()),
            next_volume: std::sync::atomic::AtomicU64::new(1),
            next_node: std::sync::atomic::AtomicU64::new(9_000),
        })
    }

    /// Default-configured service.
    pub fn with_defaults() -> Arc<PolarFs> {
        PolarFs::new(PolarFsConfig::default())
    }

    fn fleet(&self, dc: DcId) -> Vec<Arc<ChunkServer>> {
        {
            let fleets = self.fleets.read();
            if let Some(f) = fleets.get(&dc) {
                return f.clone();
            }
        }
        let mut fleets = self.fleets.write();
        fleets
            .entry(dc)
            .or_insert_with(|| {
                (0..self.config.servers_per_dc)
                    .map(|_| {
                        let id = NodeId(
                            self.next_node
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        );
                        ChunkServer::new(id, dc)
                    })
                    .collect()
            })
            .clone()
    }

    /// Add chunk servers to a DC's fleet (SN-layer scale-out, transparent to
    /// upper layers, §II-A).
    pub fn add_servers(&self, dc: DcId, count: usize) {
        let mut fleets = self.fleets.write();
        let fleet = fleets.entry(dc).or_default();
        for _ in 0..count {
            let id =
                NodeId(self.next_node.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            fleet.push(ChunkServer::new(id, dc));
        }
    }

    /// Create a volume in `dc`.
    pub fn create_volume(&self, dc: DcId) -> Result<Arc<Volume>> {
        let id = VolumeId(
            self.next_volume.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let vol = Volume::new(id, self.config.chunk_size, self.config.io_latency, self.fleet(dc))?;
        self.volumes.write().insert(id, (dc, Arc::clone(&vol)));
        Ok(vol)
    }

    /// Open an existing volume. Shared storage: any DN in the same DC may
    /// open it — this is what lets an RO node read the RW node's data and
    /// lets tenant migration skip data copying.
    pub fn open_volume(&self, id: VolumeId) -> Result<Arc<Volume>> {
        self.volumes
            .read()
            .get(&id)
            .map(|(_, v)| Arc::clone(v))
            .ok_or_else(|| Error::storage(format!("unknown volume {id}")))
    }

    /// The datacenter a volume lives in.
    pub fn volume_dc(&self, id: VolumeId) -> Option<DcId> {
        self.volumes.read().get(&id).map(|(dc, _)| *dc)
    }

    /// Chunk servers of a DC (for failure injection in tests).
    pub fn servers(&self, dc: DcId) -> Vec<Arc<ChunkServer>> {
        self.fleet(dc)
    }
}

/// Fixed-size page store over a region of a volume — the DN buffer pool
/// flushes dirty pages here and reloads clean pages from here.
pub struct PageStore {
    volume: Arc<Volume>,
    page_size: u64,
    /// Byte offset where the page region starts (the log region precedes it).
    base: u64,
}

impl PageStore {
    /// A page store of `page_size`-byte pages starting at `base`.
    pub fn new(volume: Arc<Volume>, page_size: u64, base: u64) -> PageStore {
        assert!(page_size > 0);
        PageStore { volume, page_size, base }
    }

    /// Persist a page image. `data` may be shorter than the page size (the
    /// remainder reads back as zeros).
    pub fn write_page(&self, page_no: u64, data: Bytes) -> Result<()> {
        if data.len() as u64 > self.page_size {
            return Err(Error::storage(format!(
                "page image {} exceeds page size {}",
                data.len(),
                self.page_size
            )));
        }
        self.volume.write(self.base + page_no * self.page_size, data)
    }

    /// Read a full page image.
    pub fn read_page(&self, page_no: u64) -> Result<Vec<u8>> {
        self.volume.read(self.base + page_no * self.page_size, self.page_size as usize)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

/// Redo-log sink writing the log region of a volume: LSN maps directly to a
/// volume offset (log region starts at offset `base`).
pub struct VolumeLogSink {
    volume: Arc<Volume>,
    base: u64,
}

impl VolumeLogSink {
    /// A log sink whose LSN 0 lands at volume offset `base`.
    pub fn new(volume: Arc<Volume>, base: u64) -> Arc<VolumeLogSink> {
        Arc::new(VolumeLogSink { volume, base })
    }

    /// Read back `len` bytes of log starting at `lsn` (for replica catch-up
    /// and recovery).
    pub fn read(&self, lsn: Lsn, len: usize) -> Result<Vec<u8>> {
        self.volume.read(self.base + lsn.raw(), len)
    }
}

impl LogSink for VolumeLogSink {
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()> {
        self.volume.write(self.base + at.raw(), bytes)
    }
}

/// Bandwidth/latency model for bulk data movement — used to cost the
/// shared-nothing "data transfer" scaling baseline of Fig 8(b).
#[derive(Debug, Clone)]
pub struct TransferModel {
    /// Sustained copy bandwidth in bytes/second (network + storage bound).
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-transfer setup cost.
    pub setup: Duration,
}

impl TransferModel {
    /// The paper's elasticity experiment moved 40 GB in ~489-660 s per step,
    /// i.e. an effective ~60-80 MB/s including re-sharding overhead; we
    /// default to 75 MB/s.
    pub fn paper_default() -> TransferModel {
        TransferModel {
            bandwidth_bytes_per_sec: 75 * 1024 * 1024,
            setup: Duration::from_secs(2),
        }
    }

    /// Time to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.setup + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_wal::{LogBuffer, Mtr, RedoPayload};
    use polardbx_common::{Key, TableId, TrxId, Value};

    #[test]
    fn volume_lifecycle() {
        let fs = PolarFs::with_defaults();
        let v = fs.create_volume(DcId(1)).unwrap();
        let again = fs.open_volume(v.id()).unwrap();
        assert_eq!(Arc::as_ptr(&v), Arc::as_ptr(&again), "shared storage: same volume");
        assert_eq!(fs.volume_dc(v.id()), Some(DcId(1)));
        assert!(fs.open_volume(VolumeId(999)).is_err());
    }

    #[test]
    fn page_store_roundtrip() {
        let fs = PolarFs::new(PolarFsConfig { chunk_size: 1 << 16, ..Default::default() });
        let v = fs.create_volume(DcId(1)).unwrap();
        let ps = PageStore::new(v, 4096, 1 << 20);
        ps.write_page(0, Bytes::from_static(b"page-zero")).unwrap();
        ps.write_page(7, Bytes::from_static(b"page-seven")).unwrap();
        assert_eq!(&ps.read_page(0).unwrap()[..9], b"page-zero");
        assert_eq!(&ps.read_page(7).unwrap()[..10], b"page-seven");
        // Untouched pages read as zeros.
        assert!(ps.read_page(3).unwrap().iter().all(|&b| b == 0));
        // Oversized page rejected.
        assert!(ps.write_page(1, Bytes::from(vec![0u8; 5000])).is_err());
    }

    #[test]
    fn log_sink_over_volume() {
        let fs = PolarFs::with_defaults();
        let v = fs.create_volume(DcId(1)).unwrap();
        let sink = VolumeLogSink::new(Arc::clone(&v), 0);
        let buf = LogBuffer::new(sink.clone());
        let mtr = Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(5)]),
            row: Bytes::from_static(b"persisted"),
        });
        let (start, end) = buf.append_sync(&mtr).unwrap();
        let read_back = sink.read(start, (end.raw() - start.raw()) as usize).unwrap();
        let decoded = Mtr::decode(Bytes::from(read_back)).unwrap();
        assert_eq!(decoded, mtr);
    }

    #[test]
    fn transfer_model_scales_linearly() {
        let m = TransferModel { bandwidth_bytes_per_sec: 100, setup: Duration::from_secs(1) };
        assert_eq!(m.transfer_time(0), Duration::from_secs(1));
        assert_eq!(m.transfer_time(1000), Duration::from_secs(11));
        // Paper scale: 40 GB at defaults lands in the few-hundred-seconds
        // range that Fig 8(b) reports.
        let t = TransferModel::paper_default().transfer_time(40 * (1 << 30));
        assert!(t > Duration::from_secs(400) && t < Duration::from_secs(800), "{t:?}");
    }

    #[test]
    fn sn_scale_out() {
        let fs = PolarFs::with_defaults();
        assert_eq!(fs.servers(DcId(1)).len(), 3);
        fs.add_servers(DcId(1), 2);
        assert_eq!(fs.servers(DcId(1)).len(), 5);
    }
}
