//! PolarFS: the simulated shared distributed storage service (SN layer).
//!
//! The real PolarFS is "a durable, atomic and horizontally scalable
//! distributed storage service" providing virtual volumes partitioned into
//! 10 GB chunks, each replicated three times within a datacenter through
//! ParallelRaft (§II-A). The upper layers — the DN storage engine, the redo
//! log, PolarDB-MT tenant files — only rely on that contract:
//!
//! * byte-addressable volumes whose space grows on demand,
//! * atomic writes with majority-replicated durability,
//! * shared access: any DN in the DC can open the same volume (this is what
//!   makes tenant migration data-movement-free in §V).
//!
//! We reproduce the contract in memory with a faithful structure: volumes →
//! chunks → a 3-replica [`raft::ParallelRaftGroup`] per chunk hosted on
//! [`chunk::ChunkServer`]s, plus a latency/bandwidth model so experiments
//! can account for I/O cost. The chunk size is configurable (default scaled
//! down from 10 GB) so tests stay laptop-sized; all invariants are
//! size-independent.

pub mod chunk;
pub mod fs;
pub mod raft;
pub mod volume;

pub use chunk::{ChunkId, ChunkServer};
pub use fs::{PageStore, PolarFs, PolarFsConfig, TransferModel, VolumeLogSink};
pub use raft::ParallelRaftGroup;
pub use volume::{Volume, VolumeId};
