//! ParallelRaft-lite: majority replication of chunk writes.
//!
//! PolarFS replicates each chunk three times inside a datacenter and
//! guarantees linearizable writes through ParallelRaft, "a consensus
//! protocol derived from Raft" whose signature feature is *out-of-order
//! acknowledgement*: writes to non-overlapping ranges may commit
//! independently rather than strictly in log order. We reproduce the
//! essentials:
//!
//! * a write succeeds once a majority of replicas persisted it,
//! * non-overlapping writes proceed concurrently (no global ordering lock),
//! * a downed replica is tolerated (2/3), two are not,
//! * a recovering replica is caught up from a healthy peer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{Error, Result};

use crate::chunk::{ChunkId, ChunkServer};

/// A replication group for one chunk: three replicas on distinct SNs.
pub struct ParallelRaftGroup {
    chunk: ChunkId,
    replicas: Vec<Arc<ChunkServer>>,
    /// Simulated per-write I/O latency (per majority commit, not per replica,
    /// since replica writes are parallel in the real system).
    io_latency: Duration,
    committed_writes: AtomicU64,
}

impl ParallelRaftGroup {
    /// Build a group over the given replica hosts; provisions the chunk on
    /// each. Panics unless exactly 3 replicas are supplied (PolarFS fixes
    /// the replication factor at 3 per DC).
    pub fn new(
        chunk: ChunkId,
        replicas: Vec<Arc<ChunkServer>>,
        io_latency: Duration,
    ) -> ParallelRaftGroup {
        assert_eq!(replicas.len(), 3, "PolarFS chunks use 3 replicas");
        for r in &replicas {
            r.host(chunk);
        }
        ParallelRaftGroup { chunk, replicas, io_latency, committed_writes: AtomicU64::new(0) }
    }

    /// The chunk this group replicates.
    pub fn chunk(&self) -> ChunkId {
        self.chunk
    }

    /// Replicate a write. Succeeds on majority (2/3) persistence; the
    /// replicas are written "in parallel" (we pay one `io_latency`, the
    /// slowest-of-majority).
    pub fn write(&self, offset: u64, bytes: Bytes) -> Result<()> {
        if !self.io_latency.is_zero() {
            std::thread::sleep(self.io_latency);
        }
        let mut acks = 0usize;
        for r in &self.replicas {
            if r.write(self.chunk, offset, bytes.clone()).is_ok() {
                acks += 1;
            }
        }
        if acks * 2 > self.replicas.len() {
            self.committed_writes.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(Error::NoQuorum { acks, needed: self.replicas.len() / 2 + 1 })
        }
    }

    /// Read from the first healthy replica. Reads are served by the chunk
    /// leader in real PolarFS; any up-to-date replica is equivalent here
    /// because writes are majority-synchronous and we catch up recovering
    /// replicas before serving them.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        for r in &self.replicas {
            if let Ok(data) = r.read(self.chunk, offset, len) {
                return Ok(data);
            }
        }
        Err(Error::storage(format!("no live replica of {}", self.chunk)))
    }

    /// Catch a recovered replica up by copying the full chunk content from
    /// a healthy peer (simplified ParallelRaft catch-up).
    pub fn catch_up(&self, lagging: usize) -> Result<()> {
        let healthy = self
            .replicas
            .iter()
            .enumerate()
            .find(|(i, r)| *i != lagging && !r.is_down())
            .map(|(_, r)| Arc::clone(r))
            .ok_or_else(|| Error::storage("no healthy peer to catch up from"))?;
        // Copy extent content wholesale; for the simulation a full-range read
        // over the written span suffices because reads default to zeros.
        let span = healthy.bytes_stored() as usize + 4096;
        let data = healthy.read(self.chunk, 0, span)?;
        self.replicas[lagging].write(self.chunk, 0, Bytes::from(data))?;
        Ok(())
    }

    /// Number of majority-committed writes.
    pub fn committed(&self) -> u64 {
        self.committed_writes.load(Ordering::Relaxed)
    }

    /// The replica hosts.
    pub fn replicas(&self) -> &[Arc<ChunkServer>] {
        &self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, NodeId};

    fn group(latency: Duration) -> ParallelRaftGroup {
        let sns: Vec<_> =
            (0..3).map(|i| ChunkServer::new(NodeId(i), DcId(1))).collect();
        ParallelRaftGroup::new(ChunkId { volume: 1, index: 0 }, sns, latency)
    }

    #[test]
    fn write_replicates_to_all() {
        let g = group(Duration::ZERO);
        g.write(0, Bytes::from_static(b"abc")).unwrap();
        for r in g.replicas() {
            assert_eq!(r.read(g.chunk(), 0, 3).unwrap(), b"abc");
        }
        assert_eq!(g.committed(), 1);
    }

    #[test]
    fn tolerates_one_failure() {
        let g = group(Duration::ZERO);
        g.replicas()[2].set_down(true);
        g.write(0, Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(g.read(0, 3).unwrap(), b"xyz");
    }

    #[test]
    fn two_failures_lose_quorum() {
        let g = group(Duration::ZERO);
        g.replicas()[1].set_down(true);
        g.replicas()[2].set_down(true);
        assert!(matches!(
            g.write(0, Bytes::from_static(b"x")),
            Err(Error::NoQuorum { acks: 1, needed: 2 })
        ));
    }

    #[test]
    fn catch_up_restores_replica() {
        let g = group(Duration::ZERO);
        g.replicas()[2].set_down(true);
        g.write(0, Bytes::from_static(b"recoverme")).unwrap();
        g.replicas()[2].set_down(false);
        g.catch_up(2).unwrap();
        assert_eq!(g.replicas()[2].read(g.chunk(), 0, 9).unwrap(), b"recoverme");
    }

    #[test]
    fn io_latency_applied() {
        use std::time::Instant;
        let g = group(Duration::from_millis(3));
        let t0 = Instant::now();
        g.write(0, Bytes::from_static(b"x")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn non_overlapping_writes_concurrent() {
        let g = Arc::new(group(Duration::from_millis(5)));
        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    g.write(i * 100, Bytes::from_static(b"block")).unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Out-of-order / concurrent commit: 4 writes at 5 ms each overlap.
        assert!(t0.elapsed() < Duration::from_millis(18));
    }
}
