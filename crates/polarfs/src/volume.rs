//! Volumes: byte-addressable virtual disks built from replicated chunks.
//!
//! "Each DN has one volume … Each volume contains up to 10K chunks and can
//! provide a maximum capacity of 100 TB. Chunks are provisioned on demand so
//! that volume space grows dynamically." (§II-A)

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{Error, Result};

use crate::chunk::{ChunkId, ChunkServer};
use crate::raft::ParallelRaftGroup;

/// Volume identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeId(pub u64);

impl std::fmt::Display for VolumeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// Maximum chunks per volume (paper: 10K chunks × 10 GB = 100 TB).
pub const MAX_CHUNKS: u64 = 10_000;

/// A byte-addressable volume. Writes that span chunk boundaries are split;
/// chunks are provisioned lazily, with replicas placed on the three
/// least-loaded chunk servers.
pub struct Volume {
    id: VolumeId,
    chunk_size: u64,
    io_latency: Duration,
    servers: Vec<Arc<ChunkServer>>,
    groups: RwLock<BTreeMap<u64, Arc<ParallelRaftGroup>>>,
}

impl Volume {
    /// A volume over `servers` (all in one DC) with the given chunk size.
    pub fn new(
        id: VolumeId,
        chunk_size: u64,
        io_latency: Duration,
        servers: Vec<Arc<ChunkServer>>,
    ) -> Result<Arc<Volume>> {
        if servers.len() < 3 {
            return Err(Error::storage("a volume needs at least 3 chunk servers"));
        }
        if chunk_size == 0 {
            return Err(Error::invalid("chunk size must be positive"));
        }
        Ok(Arc::new(Volume {
            id,
            chunk_size,
            io_latency,
            servers,
            groups: RwLock::new(BTreeMap::new()),
        }))
    }

    /// The volume id.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    fn group_for(&self, chunk_index: u64) -> Result<Arc<ParallelRaftGroup>> {
        if chunk_index >= MAX_CHUNKS {
            return Err(Error::storage(format!(
                "volume {} exceeded max capacity ({MAX_CHUNKS} chunks)",
                self.id
            )));
        }
        if let Some(g) = self.groups.read().get(&chunk_index) {
            return Ok(Arc::clone(g));
        }
        let mut groups = self.groups.write();
        if let Some(g) = groups.get(&chunk_index) {
            return Ok(Arc::clone(g));
        }
        // Provision on demand: pick the three least-loaded SNs.
        let mut hosts: Vec<Arc<ChunkServer>> = self.servers.clone();
        hosts.sort_by_key(|s| s.replica_count());
        let replicas = hosts.into_iter().take(3).collect();
        let group = Arc::new(ParallelRaftGroup::new(
            ChunkId { volume: self.id.0, index: chunk_index },
            replicas,
            self.io_latency,
        ));
        groups.insert(chunk_index, Arc::clone(&group));
        Ok(group)
    }

    /// Write `bytes` at `offset`, splitting across chunk boundaries.
    pub fn write(&self, offset: u64, bytes: Bytes) -> Result<()> {
        let mut pos = 0usize;
        while pos < bytes.len() {
            let abs = offset + pos as u64;
            let chunk_index = abs / self.chunk_size;
            let within = abs % self.chunk_size;
            let room = (self.chunk_size - within) as usize;
            let take = room.min(bytes.len() - pos);
            let group = self.group_for(chunk_index)?;
            group.write(within, bytes.slice(pos..pos + take))?;
            pos += take;
        }
        Ok(())
    }

    /// Read `len` bytes at `offset`. Unprovisioned space reads as zeros.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let chunk_index = abs / self.chunk_size;
            let within = abs % self.chunk_size;
            let room = (self.chunk_size - within) as usize;
            let take = room.min(len - pos);
            let provisioned = self.groups.read().contains_key(&chunk_index);
            if provisioned {
                let group = self.group_for(chunk_index)?;
                out.extend_from_slice(&group.read(within, take)?);
            } else {
                out.resize(out.len() + take, 0);
            }
            pos += take;
        }
        Ok(out)
    }

    /// Number of provisioned chunks.
    pub fn provisioned_chunks(&self) -> usize {
        self.groups.read().len()
    }

    /// Provisioned capacity in bytes.
    pub fn provisioned_bytes(&self) -> u64 {
        self.provisioned_chunks() as u64 * self.chunk_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, NodeId};

    fn servers(n: u64) -> Vec<Arc<ChunkServer>> {
        (0..n).map(|i| ChunkServer::new(NodeId(i), DcId(1))).collect()
    }

    fn vol(chunk_size: u64) -> Arc<Volume> {
        Volume::new(VolumeId(1), chunk_size, Duration::ZERO, servers(5)).unwrap()
    }

    #[test]
    fn write_read_within_chunk() {
        let v = vol(1024);
        v.write(10, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(v.read(10, 5).unwrap(), b"hello");
        assert_eq!(v.provisioned_chunks(), 1);
    }

    #[test]
    fn write_spanning_chunks_splits() {
        let v = vol(16);
        let data = Bytes::from((0..64u8).collect::<Vec<_>>());
        v.write(8, data.clone()).unwrap();
        assert_eq!(v.read(8, 64).unwrap(), &data[..]);
        // 8..72 touches chunks 0..=4.
        assert_eq!(v.provisioned_chunks(), 5);
    }

    #[test]
    fn unprovisioned_reads_zero() {
        let v = vol(64);
        assert_eq!(v.read(1000, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(v.provisioned_chunks(), 0, "reads must not provision");
    }

    #[test]
    fn on_demand_growth() {
        let v = vol(128);
        assert_eq!(v.provisioned_bytes(), 0);
        v.write(0, Bytes::from_static(b"x")).unwrap();
        assert_eq!(v.provisioned_bytes(), 128);
        v.write(4 * 128, Bytes::from_static(b"y")).unwrap();
        assert_eq!(v.provisioned_chunks(), 2, "sparse: only touched chunks provision");
    }

    #[test]
    fn capacity_limit_enforced() {
        let v = vol(4);
        let too_far = MAX_CHUNKS * 4 + 1;
        assert!(v.write(too_far, Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn needs_three_servers() {
        assert!(Volume::new(VolumeId(1), 64, Duration::ZERO, servers(2)).is_err());
    }

    #[test]
    fn placement_balances_replicas() {
        let sns = servers(6);
        let v = Volume::new(VolumeId(1), 8, Duration::ZERO, sns.clone()).unwrap();
        // Provision 8 chunks => 24 replicas over 6 SNs => 4 each if balanced.
        for i in 0..8u64 {
            v.write(i * 8, Bytes::from_static(b"12345678")).unwrap();
        }
        let counts: Vec<usize> = sns.iter().map(|s| s.replica_count()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced placement: {counts:?}");
    }
}
