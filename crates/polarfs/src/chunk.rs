//! Chunk servers: the storage nodes (SN) hosting chunk replicas.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use polardbx_common::{DcId, Error, NodeId, Result};

/// Identifies a chunk replica: (volume, chunk index within volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId {
    /// Owning volume.
    pub volume: u64,
    /// Index of the chunk within the volume's address space.
    pub index: u64,
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}/{}", self.volume, self.index)
    }
}

/// Sparse replica content: extent-start offset (within chunk) → bytes.
/// Overlapping writes split/replace existing extents.
#[derive(Debug, Default)]
struct ReplicaData {
    extents: BTreeMap<u64, Bytes>,
}

impl ReplicaData {
    fn write(&mut self, offset: u64, bytes: Bytes) {
        let end = offset + bytes.len() as u64;
        // Collect overlapping extents.
        let overlapping: Vec<u64> = self
            .extents
            .range(..end)
            .rev()
            .take_while(|(start, data)| **start + data.len() as u64 > offset)
            .map(|(s, _)| *s)
            .collect();
        for s in overlapping {
            let data = self.extents.remove(&s).expect("extent exists");
            let e = s + data.len() as u64;
            // Keep the non-overlapped prefix.
            if s < offset {
                self.extents.insert(s, data.slice(0..(offset - s) as usize));
            }
            // Keep the non-overlapped suffix.
            if e > end {
                self.extents.insert(end, data.slice((end - s) as usize..));
            }
        }
        self.extents.insert(offset, bytes);
    }

    fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let end = offset + len as u64;
        for (s, data) in self.extents.range(..end) {
            let e = s + data.len() as u64;
            if e <= offset {
                continue;
            }
            let copy_start = offset.max(*s);
            let copy_end = end.min(e);
            let src = &data[(copy_start - s) as usize..(copy_end - s) as usize];
            out[(copy_start - offset) as usize..(copy_end - offset) as usize]
                .copy_from_slice(src);
        }
        out
    }

    fn bytes_stored(&self) -> u64 {
        self.extents.values().map(|b| b.len() as u64).sum()
    }
}

/// A storage node hosting chunk replicas. Can be marked down for failure
/// injection; writes and reads then fail until it recovers.
pub struct ChunkServer {
    /// Node id in the cluster.
    pub id: NodeId,
    /// Datacenter this SN lives in (chunk replicas never cross DCs; cross-DC
    /// durability is the DN layer's job via Paxos, §III).
    pub dc: DcId,
    replicas: RwLock<BTreeMap<ChunkId, ReplicaData>>,
    down: AtomicBool,
    writes: AtomicU64,
}

impl ChunkServer {
    /// A fresh, empty chunk server.
    pub fn new(id: NodeId, dc: DcId) -> Arc<ChunkServer> {
        Arc::new(ChunkServer {
            id,
            dc,
            replicas: RwLock::new(BTreeMap::new()),
            down: AtomicBool::new(false),
            writes: AtomicU64::new(0),
        })
    }

    /// Provision an (empty) replica of `chunk` here.
    pub fn host(&self, chunk: ChunkId) {
        self.replicas.write().entry(chunk).or_default();
    }

    /// Write into a hosted replica.
    pub fn write(&self, chunk: ChunkId, offset: u64, bytes: Bytes) -> Result<()> {
        if self.down.load(Ordering::Relaxed) {
            return Err(Error::storage(format!("SN {} is down", self.id)));
        }
        let mut replicas = self.replicas.write();
        let data = replicas
            .get_mut(&chunk)
            .ok_or_else(|| Error::storage(format!("SN {} does not host {chunk}", self.id)))?;
        data.write(offset, bytes);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read from a hosted replica. Unwritten ranges read as zeros (thin
    /// provisioning).
    pub fn read(&self, chunk: ChunkId, offset: u64, len: usize) -> Result<Vec<u8>> {
        if self.down.load(Ordering::Relaxed) {
            return Err(Error::storage(format!("SN {} is down", self.id)));
        }
        let replicas = self.replicas.read();
        let data = replicas
            .get(&chunk)
            .ok_or_else(|| Error::storage(format!("SN {} does not host {chunk}", self.id)))?;
        Ok(data.read(offset, len))
    }

    /// Failure injection: take the server down / bring it back.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    /// Is the server down?
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Number of chunk replicas hosted.
    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }

    /// Total bytes stored across replicas (sparse accounting).
    pub fn bytes_stored(&self) -> u64 {
        self.replicas.read().values().map(ReplicaData::bytes_stored).sum()
    }

    /// Total write operations served.
    pub fn write_ops(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ChunkId {
        ChunkId { volume: 1, index: 0 }
    }

    #[test]
    fn write_read_roundtrip() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.write(cid(), 100, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(sn.read(cid(), 100, 5).unwrap(), b"hello");
    }

    #[test]
    fn unwritten_reads_zero() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        assert_eq!(sn.read(cid(), 0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn overlapping_write_replaces_middle() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.write(cid(), 0, Bytes::from_static(b"aaaaaaaaaa")).unwrap();
        sn.write(cid(), 3, Bytes::from_static(b"BBB")).unwrap();
        assert_eq!(sn.read(cid(), 0, 10).unwrap(), b"aaaBBBaaaa");
    }

    #[test]
    fn overlapping_write_spans_extents() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.write(cid(), 0, Bytes::from_static(b"11111")).unwrap();
        sn.write(cid(), 5, Bytes::from_static(b"22222")).unwrap();
        sn.write(cid(), 3, Bytes::from_static(b"XXXX")).unwrap();
        assert_eq!(sn.read(cid(), 0, 10).unwrap(), b"111XXXX222");
    }

    #[test]
    fn partial_overlap_reads() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.write(cid(), 10, Bytes::from_static(b"abcdef")).unwrap();
        // Read straddling written and unwritten space.
        let r = sn.read(cid(), 8, 10).unwrap();
        assert_eq!(r, b"\0\0abcdef\0\0");
    }

    #[test]
    fn down_server_rejects() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.set_down(true);
        assert!(sn.write(cid(), 0, Bytes::from_static(b"x")).is_err());
        assert!(sn.read(cid(), 0, 1).is_err());
        sn.set_down(false);
        assert!(sn.write(cid(), 0, Bytes::from_static(b"x")).is_ok());
    }

    #[test]
    fn unhosted_chunk_rejected() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        assert!(sn.write(cid(), 0, Bytes::from_static(b"x")).is_err());
        assert!(sn.read(cid(), 0, 1).is_err());
    }

    #[test]
    fn accounting() {
        let sn = ChunkServer::new(NodeId(1), DcId(1));
        sn.host(cid());
        sn.write(cid(), 0, Bytes::from_static(b"12345678")).unwrap();
        assert_eq!(sn.replica_count(), 1);
        assert_eq!(sn.bytes_stored(), 8);
        assert_eq!(sn.write_ops(), 1);
    }
}
