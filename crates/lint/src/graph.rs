//! Cross-crate lock-order graph and cycle detection.
//!
//! Every [`LockEdge`](crate::analysis::LockEdge) says "lock `from` was
//! held while `to` was acquired". A cycle in the directed graph over
//! those edges is a potential ABBA deadlock: two threads can each hold
//! one lock of the cycle and wait for the next. Edges justified with
//! `lint:allow(lock_order, …)` are excluded from cycle search but kept
//! for the report.

use crate::analysis::LockEdge;
use std::collections::{BTreeMap, BTreeSet};

/// A cycle found in the acquisition graph.
#[derive(Debug, Clone)]
pub struct Cycle {
    /// Lock names in acquisition order; the last is held while the first
    /// is re-acquired.
    pub nodes: Vec<String>,
    /// The edges realizing the cycle, with their source locations.
    pub edges: Vec<LockEdge>,
}

/// Find every elementary cycle reachable in the non-allowed edge set.
/// Deterministic: nodes and neighbours are visited in sorted order, and
/// each cycle is reported once (rotated so its lexicographically
/// smallest node comes first).
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Cycle> {
    // Deduplicate parallel edges, keep one representative location each.
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in edges {
        if e.allowed.is_some() {
            continue;
        }
        adj.entry(e.from.as_str()).or_default().entry(e.to.as_str()).or_insert(e);
    }

    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut cycles = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // Bounded DFS from each node looking for a path back to start.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((cur, path)) = stack.pop() {
            let Some(nexts) = adj.get(cur) else { continue };
            for (&nxt, _) in nexts.iter() {
                if nxt == start {
                    let mut names: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    // Canonical rotation for dedup.
                    let min_pos = names
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| n.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    names.rotate_left(min_pos);
                    if seen.insert(names.clone()) {
                        let mut cyc_edges = Vec::new();
                        for w in 0..names.len() {
                            let a = names[w].as_str();
                            let b = names[(w + 1) % names.len()].as_str();
                            if let Some(e) = adj.get(a).and_then(|m| m.get(b)) {
                                cyc_edges.push((*e).clone());
                            }
                        }
                        cycles.push(Cycle { nodes: names, edges: cyc_edges });
                    }
                } else if !path.contains(&nxt) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push(nxt);
                    stack.push((nxt, p));
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str, allowed: bool) -> LockEdge {
        LockEdge {
            from: from.into(),
            to: to.into(),
            file: "f.rs".into(),
            line: 1,
            allowed: allowed.then(|| "justified".to_string()),
            via: None,
        }
    }

    #[test]
    fn detects_two_node_cycle() {
        let cycles = find_cycles(&[edge("a", "b", false), edge("b", "a", false)]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn dag_has_no_cycles() {
        let cycles = find_cycles(&[
            edge("a", "b", false),
            edge("b", "c", false),
            edge("a", "c", false),
        ]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn allowed_edge_breaks_cycle() {
        let cycles = find_cycles(&[edge("a", "b", false), edge("b", "a", true)]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn three_node_cycle_reported_once() {
        let cycles = find_cycles(&[
            edge("x", "y", false),
            edge("y", "z", false),
            edge("z", "x", false),
        ]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.len(), 3);
    }
}
