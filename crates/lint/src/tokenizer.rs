//! A small hand-rolled Rust tokenizer, aware of exactly the constructs
//! that break naive text scanning: line and (nested) block comments,
//! string/char/byte literals, raw strings with arbitrary `#` fences, and
//! the lifetime-vs-char-literal ambiguity after `'`.
//!
//! It does NOT attempt full lexical fidelity (numeric literal suffixes and
//! float forms are split crudely); the analyses in this crate only need
//! identifier/punctuation sequences with correct line numbers and correct
//! skipping of comment/string content.

/// Token classes the analyses distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (split naively around `.`).
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (for `Punct`, a single character; strings keep only a
    /// placeholder — content is never needed and may be huge).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// lint:allow(rule, reason)` escape-hatch comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// The rule being allowed (e.g. `lock_order`).
    pub rule: String,
    /// The justification text; empty means the allow is malformed.
    pub reason: String,
}

/// Tokenizer output: the token stream plus any allow comments found.
#[derive(Debug, Default)]
pub struct TokenStream {
    /// All tokens outside comments/whitespace.
    pub toks: Vec<Tok>,
    /// All `lint:allow` comments, in source order.
    pub allows: Vec<Allow>,
    /// Lines carrying a `// lint:hotpath` marker: the next function is an
    /// allocation-free hot path (see the `hotpath_alloc` rule).
    pub hotpaths: Vec<u32>,
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF.
pub fn tokenize(src: &str) -> TokenStream {
    let b = src.as_bytes();
    let mut out = TokenStream::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                // Doc comments (`///`, `//!`) are prose, not directives —
                // mentioning lint:allow there must not create an allow.
                let is_doc = start < b.len() && (b[start] == b'/' || b[start] == b'!');
                if !is_doc {
                    scan_allow(&src[start..j], line, &mut out.allows);
                    scan_hotpath(&src[start..j], line, &mut out.hotpaths);
                }
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment. Plain ones are scanned for allows;
                // doc blocks (`/**`, `/*!`) are prose and skipped.
                let is_doc = i + 2 < b.len() && (b[i + 2] == b'*' || b[i + 2] == b'!');
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                if !is_doc {
                    scan_allow(&src[start..j.min(b.len())], start_line, &mut out.allows);
                    scan_hotpath(&src[start..j.min(b.len())], start_line, &mut out.hotpaths);
                }
                i = j;
            }
            b'"' => {
                i = scan_string(b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line });
            }
            b'r' | b'b' if is_raw_or_byte_start(b, i) => {
                let tok_line = line;
                let (ni, kind) = scan_raw_or_byte(b, i, &mut line);
                i = ni;
                out.toks.push(Tok { kind, text: String::new(), line: tok_line });
            }
            b'\'' => {
                let tok_line = line;
                let (ni, kind, text) = scan_quote(b, i, &mut line);
                i = ni;
                out.toks.push(Tok { kind, text, line: tok_line });
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok { kind: TokKind::Num, text: src[start..i].to_string(), line });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Is `b[i..]` the start of a raw string (`r"`, `r#"`) or byte literal
/// (`b"`, `b'`, `br"`, `br#"`)? Plain identifiers starting with r/b fall
/// through to ident scanning.
fn is_raw_or_byte_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return true;
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    } else if j < b.len() && b[j] == b'"' {
        return b[i] == b'b'; // b"…"
    } else {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Scan a raw/byte string or byte-char starting at `i`; returns the index
/// past it and the token kind.
fn scan_raw_or_byte(b: &[u8], i: usize, line: &mut u32) -> (usize, TokKind) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            let (nj, _, _) = scan_quote(b, j, line);
            return (nj, TokKind::Char);
        }
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    if raw {
        // Raw: no escapes; terminated by `"` followed by `hashes` hashes.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && seen < hashes && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, TokKind::Str);
                }
            }
            j += 1;
        }
        (j, TokKind::Str)
    } else {
        (scan_string(b, j - 1, line), TokKind::Str)
    }
}

/// Scan a `"…"` string with escapes starting at the opening quote index;
/// returns the index past the closing quote.
fn scan_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Disambiguate `'a'` (char) from `'a` (lifetime), starting at the `'`.
/// Returns (index past token, kind, text — the lifetime name if any).
fn scan_quote(b: &[u8], i: usize, line: &mut u32) -> (usize, TokKind, String) {
    let mut j = i + 1;
    if j >= b.len() {
        return (j, TokKind::Char, String::new());
    }
    if b[j] == b'\\' {
        // Escaped char literal: consume escape then to closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            if b[j] == b'\n' {
                *line += 1;
            }
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Char, String::new());
    }
    if b[j] == b'_' || b[j].is_ascii_alphabetic() {
        let start = j;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' && j - start == 1 {
            // 'a' — single-char literal.
            return (j + 1, TokKind::Char, String::new());
        }
        if j < b.len() && b[j] == b'\'' && j - start > 1 {
            // Multi-char between quotes is not valid Rust, but doc text in
            // cfg'd-out macros can produce it; treat as char to stay sane.
            return (j + 1, TokKind::Char, String::new());
        }
        let name = String::from_utf8_lossy(&b[start..j]).into_owned();
        return (j, TokKind::Lifetime, name);
    }
    // Something like '9' or punctuation char literal.
    while j < b.len() && b[j] != b'\'' {
        if b[j] == b'\n' {
            *line += 1;
        }
        j += 1;
    }
    ((j + 1).min(b.len()), TokKind::Char, String::new())
}

/// Extract `lint:allow(rule, reason)` from a comment body (may contain
/// several, e.g. in a block comment spanning lines — each is attributed to
/// the comment's starting line plus its newline offset).
fn scan_allow(comment: &str, start_line: u32, out: &mut Vec<Allow>) {
    let mut line = start_line;
    for part in comment.split('\n') {
        let mut rest = part;
        while let Some(pos) = rest.find("lint:allow") {
            rest = &rest[pos + "lint:allow".len()..];
            let Some(open) = rest.find('(') else { break };
            // Nothing but whitespace may sit between `lint:allow` and `(`.
            if !rest[..open].trim().is_empty() {
                continue;
            }
            let Some(close) = rest[open..].find(')') else {
                // Unterminated: record as malformed (empty reason).
                out.push(Allow { line, rule: rest[open + 1..].trim().to_string(), reason: String::new() });
                break;
            };
            let inner = &rest[open + 1..open + close];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), normalize_reason(why)),
                None => (inner.trim().to_string(), String::new()),
            };
            out.push(Allow { line, rule, reason });
            rest = &rest[open + close + 1..];
        }
        line += 1;
    }
}

/// Record lines carrying a `lint:hotpath` marker (one per comment line;
/// the marker annotates the function that follows).
fn scan_hotpath(comment: &str, start_line: u32, out: &mut Vec<u32>) {
    for (line, part) in (start_line..).zip(comment.split('\n')) {
        if part.contains("lint:hotpath") {
            out.push(line);
        }
    }
}

/// Trim whitespace and one layer of quotes from an allow reason.
fn normalize_reason(raw: &str) -> String {
    let t = raw.trim();
    let t = t.strip_prefix('"').unwrap_or(t);
    let t = t.strip_suffix('"').unwrap_or(t);
    t.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_line_and_nested_block_comments() {
        let src = "a // b c\n/* d /* e */ f */ g";
        assert_eq!(idents(src), vec!["a", "g"]);
    }

    #[test]
    fn skips_strings_and_raw_strings() {
        let src = r###"let x = "lock() inside"; let y = r#"also lock() " here"#; z"###;
        assert_eq!(idents(src), vec!["let", "x", "let", "y", "z"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.lock() }";
        let ids = idents(src);
        assert!(ids.contains(&"lock".to_string()), "{ids:?}");
        let lifetimes: Vec<_> = tokenize(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let src = "let c = 'a'; let n = '\\n'; let q = '\\''; done";
        assert_eq!(idents(src), vec!["let", "c", "let", "n", "let", "q", "done"]);
        let chars = tokenize(src).toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nb";
        let toks = tokenize(src).toks;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn allow_comments_are_parsed() {
        let src = "// lint:allow(lock_order, \"ordered by shard index\")\nx.lock();\n";
        let ts = tokenize(src);
        assert_eq!(ts.allows.len(), 1);
        assert_eq!(ts.allows[0].rule, "lock_order");
        assert_eq!(ts.allows[0].reason, "ordered by shard index");
        assert_eq!(ts.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_is_flagged_as_empty() {
        let src = "// lint:allow(determinism)\nx();\n";
        let ts = tokenize(src);
        assert_eq!(ts.allows[0].rule, "determinism");
        assert!(ts.allows[0].reason.is_empty());
    }

    #[test]
    fn hotpath_markers_are_recorded_but_not_in_doc_comments() {
        let src = "// lint:hotpath\npub fn hot() {}\n/// mentions lint:hotpath in prose\nfn cold() {}\n";
        let ts = tokenize(src);
        assert_eq!(ts.hotpaths, vec![1]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"lock()\"; let c = b'x'; let r = br#\"read()\"#; end";
        assert_eq!(idents(src), vec!["let", "a", "let", "c", "let", "r", "end"]);
    }
}
