//! Per-file invariant analysis over the token stream.
//!
//! Six rules (see DESIGN.md "Correctness tooling"):
//!
//! - `lock_order` — every nested `lock()/read()/write()` acquisition adds
//!   an edge `held → acquired` to a cross-crate graph; cycles (reported by
//!   [`crate::graph`]) are static ABBA deadlocks. Nested acquisition of
//!   the *same* lock name is reported directly (std-backed locks are not
//!   reentrant).
//! - `guard_blocking` — a live lock guard spanning a blocking call
//!   (`sleep`/`send`/`recv`/`join`/`flush`/sink `write`) serializes
//!   unrelated work behind I/O, and with channels in the mix can deadlock.
//! - `determinism` — `Instant::now`/`SystemTime::now`/ambient RNG outside
//!   the allowlist breaks same-seed chaos reproducibility.
//! - `unwrap` — `unwrap()/expect()` in protocol crates turns injected
//!   faults into panics instead of typed errors.
//! - `durability_order` — in a function that calls `make_durable`, a
//!   visibility stamp (`txns.commit(…)` / `store.commit(…)`) sequenced
//!   *before* the durability call acks a commit that crash recovery can
//!   never reconstruct — the redo-ahead invariant, statically.
//! - `hotpath_alloc` — inside a function annotated `// lint:hotpath`
//!   (the steady-state commit path), per-call heap allocation
//!   (`Vec::new`, `vec!`, `Box::new`, `.to_vec()`, `.clone()`…) defeats
//!   the allocation-free design; reuse a pooled buffer or move the work
//!   off the hot path. `Arc::clone(&x)` (the explicit refcount-bump
//!   form) is deliberately not flagged.
//!
//! Escape hatch: `// lint:allow(<rule>, <reason>)` on the offending line
//! or the line directly above. An allow without a reason is itself a
//! finding — justifications are the point.

use crate::tokenizer::{tokenize, Allow, Tok, TokKind};
use std::collections::{BTreeMap, HashSet};

/// Rule identifiers (also the names accepted by `lint:allow`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Lock acquisition-order violations (self-nesting or graph cycles).
    LockOrder,
    /// A live guard spans a blocking call.
    GuardBlocking,
    /// Ambient time or randomness outside the allowlist.
    Determinism,
    /// `unwrap()/expect()` in a protocol crate.
    Unwrap,
    /// Version visibility stamped before the durability ack (redo-ahead).
    DurabilityOrder,
    /// Heap allocation inside a `// lint:hotpath`-annotated function.
    HotpathAlloc,
    /// A malformed `lint:allow` (unknown rule or missing reason).
    BadAllow,
}

impl Rule {
    /// Canonical name, as used in `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock_order",
            Rule::GuardBlocking => "guard_blocking",
            Rule::Determinism => "determinism",
            Rule::Unwrap => "unwrap",
            Rule::DurabilityOrder => "durability_order",
            Rule::HotpathAlloc => "hotpath_alloc",
            Rule::BadAllow => "bad_allow",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        match s {
            "lock_order" => Some(Rule::LockOrder),
            "guard_blocking" => Some(Rule::GuardBlocking),
            "determinism" => Some(Rule::Determinism),
            "unwrap" => Some(Rule::Unwrap),
            "durability_order" => Some(Rule::DurabilityOrder),
            "hotpath_alloc" => Some(Rule::HotpathAlloc),
            _ => None,
        }
    }
}

/// One finding, justified or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a well-formed `lint:allow` covers the line.
    pub allowed: Option<String>,
}

/// One lock-order edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Held lock (crate-qualified name).
    pub from: String,
    /// Acquired lock (crate-qualified name).
    pub to: String,
    /// Where the nested acquisition happens.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// Justification, if the line carries `lint:allow(lock_order, …)`.
    pub allowed: Option<String>,
}

/// Linter configuration. Paths are matched as repo-relative prefixes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates where `unwrap()/expect()` is denied in non-test code.
    pub unwrap_deny_crates: Vec<String>,
    /// Path prefixes exempt from the determinism rule (clock sources,
    /// benches, the simnet latency model, and the shims that implement
    /// the abstractions everything else is told to use).
    pub determinism_allow_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            unwrap_deny_crates: vec!["txn".into(), "consensus".into(), "wal".into()],
            determinism_allow_paths: vec![
                "crates/hlc/".into(),
                "crates/bench/".into(),
                "crates/simnet/src/latency.rs".into(),
                // The sanctioned ambient-clock home everything else uses.
                "crates/common/src/time.rs".into(),
                "shims/".into(),
            ],
        }
    }
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule findings (cycle findings come later from the graph pass).
    pub findings: Vec<Finding>,
    /// Lock-order edges contributed to the workspace graph.
    pub edges: Vec<LockEdge>,
}

/// Blocking calls that must not run under a live lock guard. `wait` /
/// `wait_until` are deliberately absent: condvars release the guard.
const BLOCKING: &[&str] = &["sleep", "send", "recv", "recv_timeout", "join", "flush", "sync_all"];

/// Zero-argument methods treated as lock acquisitions.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Is this path test-scoped (integration tests, fixtures, examples,
/// benches directories)? Whole-file skip for every rule.
pub fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
        || p.contains("/benches/")
}

/// Crate name a repo-relative path belongs to (`crates/txn/…` → `txn`,
/// `shims/rand/…` → `shim-rand`, the root package → `root`).
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    let mut parts = p.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("shims") => format!("shim-{}", parts.next().unwrap_or("unknown")),
        _ => "root".to_string(),
    }
}

/// A live guard during the function walk.
struct Guard {
    /// Binding name (`None` for a temporary that dies at statement end).
    name: Option<String>,
    /// Crate-qualified lock node name.
    lock: String,
    /// Brace depth the binding lives at.
    depth: usize,
    /// Line of acquisition (for messages).
    line: u32,
}

/// Analyze one file's source. `path` is repo-relative and used for rule
/// scoping and messages.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    if is_test_path(path) {
        return out;
    }
    let stream = tokenize(src);
    let toks = &stream.toks;
    let krate = crate_of(path);

    // Allow lookup: an allow on line L covers line L (trailing comment)
    // and, if L itself carries no code, the next line that does.
    let code_lines: HashSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut allows: BTreeMap<u32, Vec<&Allow>> = BTreeMap::new();
    for a in &stream.allows {
        if Rule::from_name(&a.rule).is_none() {
            out.findings.push(Finding {
                rule: Rule::BadAllow,
                file: path.to_string(),
                line: a.line,
                message: format!("lint:allow names unknown rule '{}'", a.rule),
                allowed: None,
            });
            continue;
        }
        if a.reason.is_empty() {
            out.findings.push(Finding {
                rule: Rule::BadAllow,
                file: path.to_string(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a reason — justify the exception",
                    a.rule
                ),
                allowed: None,
            });
            continue;
        }
        let target = if code_lines.contains(&a.line) {
            a.line
        } else {
            code_lines.iter().copied().filter(|&l| l > a.line).min().unwrap_or(a.line)
        };
        allows.entry(target).or_default().push(a);
    }
    let allow_for = |rule: Rule, line: u32| -> Option<String> {
        allows
            .get(&line)
            .and_then(|v| v.iter().find(|a| a.rule == rule.name()))
            .map(|a| a.reason.clone())
    };

    // Mark token ranges belonging to test code: `#[cfg(test)] mod … { … }`
    // and `#[test] fn … { … }`.
    let test_mask = test_mask(toks);

    // ---- determinism rule (token-pattern scan) -------------------------
    let det_exempt = cfg.determinism_allow_paths.iter().any(|p| path.starts_with(p.as_str()));
    if !det_exempt {
        for i in 0..toks.len() {
            if test_mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let msg = if t.text == "now"
                && path_prefix_is(toks, i, &["Instant", "SystemTime"])
            {
                let src_ty = prev_path_ident(toks, i).unwrap_or_else(|| "Instant".into());
                Some(format!(
                    "{src_ty}::now() is ambient time — inject a clock (polardbx_common::time / hlc::PhysicalClock) instead",
                ))
            } else if t.text == "thread_rng" || t.text == "from_entropy" {
                Some(format!(
                    "{}() is ambient randomness — use a seeded StdRng so chaos runs replay",
                    t.text
                ))
            } else if t.text == "random" && path_prefix_is(toks, i, &["rand"]) {
                Some("rand::random() is ambient randomness — use a seeded StdRng".to_string())
            } else {
                None
            };
            if let Some(message) = msg {
                out.findings.push(Finding {
                    rule: Rule::Determinism,
                    file: path.to_string(),
                    line: t.line,
                    message,
                    allowed: allow_for(Rule::Determinism, t.line),
                });
            }
        }
    }

    // ---- unwrap rule ---------------------------------------------------
    if cfg.unwrap_deny_crates.contains(&krate) {
        for i in 0..toks.len() {
            if test_mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.findings.push(Finding {
                    rule: Rule::Unwrap,
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        ".{}() in protocol crate '{krate}' — return a typed Error instead of panicking",
                        t.text
                    ),
                    allowed: allow_for(Rule::Unwrap, t.line),
                });
            }
        }
    }

    // Hot-function lines: a `// lint:hotpath` marker annotates the next
    // line carrying code — the function signature it sits above.
    let hot_lines: HashSet<u32> = stream
        .hotpaths
        .iter()
        .map(|&l| {
            if code_lines.contains(&l) {
                l
            } else {
                code_lines.iter().copied().filter(|&c| c > l).min().unwrap_or(l)
            }
        })
        .collect();

    // ---- lock + durability + hotpath rules (per-function walks) --------
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !test_mask[i] {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                walk_body(
                    path,
                    &krate,
                    toks,
                    body_start,
                    body_end,
                    &allow_for,
                    &mut out,
                );
                check_durability_order(path, toks, body_start, body_end, &allow_for, &mut out);
                if hot_lines.contains(&toks[i].line) {
                    check_hotpath_alloc(path, toks, body_start, body_end, &allow_for, &mut out);
                }
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Allocating constructors flagged when path-called (`Vec::new()`…) in a
/// hot function.
const ALLOC_TYPES: &[&str] =
    &["Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Allocating methods flagged when method-called (`.to_vec()`…) in a hot
/// function. `clone` is handled separately so `Arc::clone(&x)` — the
/// explicit refcount-bump idiom — stays legal.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned"];

/// The allocation-free invariant for `// lint:hotpath` functions: the
/// steady-state commit path must not heap-allocate per call. Flags
/// `Vec::new()`-style constructors on allocating types, the `vec![…]`
/// macro, `.to_vec()/.to_string()/.to_owned()` copies, and method-form
/// `.clone()` (deep-copy by default; for refcounts use `Arc::clone(&x)`,
/// which the rule deliberately ignores). Era-amortized allocations that
/// must stay need `lint:allow(hotpath_alloc, why)`.
fn check_hotpath_alloc(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
) {
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let msg = if t.text == "vec" && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            Some("`vec![…]` heap-allocates per call".to_string())
        } else if t.text == "new" && is_call {
            prev_path_ident(toks, i)
                .filter(|ty| ALLOC_TYPES.contains(&ty.as_str()))
                .map(|ty| format!("`{ty}::new()` heap-allocates per call"))
        } else if ALLOC_METHODS.contains(&t.text.as_str())
            && is_call
            && i > body_start
            && toks[i - 1].is_punct('.')
        {
            Some(format!("`.{}()` copies into a fresh heap buffer", t.text))
        } else if t.text == "clone"
            && is_call
            && i > body_start
            && toks[i - 1].is_punct('.')
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            Some(
                "`.clone()` may deep-copy per call — reuse a buffer, or use `Arc::clone(&x)` \
                 for an explicit refcount bump"
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(m) = msg {
            out.findings.push(Finding {
                rule: Rule::HotpathAlloc,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "{m} inside a `lint:hotpath` function — the commit path must be \
                     allocation-free"
                ),
                allowed: allow_for(Rule::HotpathAlloc, t.line),
            });
        }
    }
}

/// The redo-ahead invariant, statically: in a function that makes redo
/// durable (`make_durable(…)`), every visibility stamp — `txns.commit(…)`
/// or `…store.commit(…)` — must be sequenced *after* the first durability
/// call. A commit made visible first would be acked without its redo, so a
/// crash in the gap is a silent RPO violation (see `StorageEngine::commit`
/// and the matching runtime `debug_assert`). Functions with no
/// `make_durable` at all are out of scope: replay and resolver paths stamp
/// visibility for records that are durable by definition.
fn check_durability_order(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
) {
    let mut first_durable: Option<(usize, u32)> = None;
    let mut visibility: Vec<(usize, u32, String)> = Vec::new();
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if t.text == "make_durable" {
            if first_durable.is_none() {
                first_durable = Some((i, t.line));
            }
        } else if t.text == "commit" && i > body_start && toks[i - 1].is_punct('.') {
            let recv = receiver_path(toks, i - 1, body_start);
            let last = recv.rsplit('.').next().unwrap_or(&recv);
            if last == "txns" || last.ends_with("store") {
                visibility.push((i, t.line, recv));
            }
        }
    }
    if let Some((d, durable_line)) = first_durable {
        for (i, line, recv) in visibility {
            if i < d {
                out.findings.push(Finding {
                    rule: Rule::DurabilityOrder,
                    file: path.to_string(),
                    line,
                    message: format!(
                        "'{recv}.commit()' makes versions visible before `make_durable` \
                         (line {durable_line}) returns — durability must be acked first \
                         (redo-ahead)",
                    ),
                    allowed: allow_for(Rule::DurabilityOrder, line),
                });
            }
        }
    }
}

/// Does the `::`-path ending just before ident `i` terminate in one of
/// `last`? Matches `Instant::now`, `std::time::Instant::now`, etc.
fn path_prefix_is(toks: &[Tok], i: usize, last: &[&str]) -> bool {
    prev_path_ident(toks, i).map(|t| last.contains(&t.as_str())).unwrap_or(false)
}

/// The identifier preceding `i` across a `::` separator, if any.
fn prev_path_ident(toks: &[Tok], i: usize) -> Option<String> {
    if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let p = &toks[i - 3];
        if p.kind == TokKind::Ident {
            return Some(p.text.clone());
        }
    }
    None
}

/// Token-index mask: true where the token sits in `#[cfg(test)] mod { … }`
/// or a `#[test] fn { … }` body.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // #[cfg(test)]  (also matches #[cfg(all(test, …))] via contains)
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let attr: Vec<&str> = toks[i + 2..close].iter().map(|t| t.text.as_str()).collect();
            let is_test_attr = attr.first() == Some(&"test")
                || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
            if is_test_attr {
                // Skip any further attributes, then expect mod/fn … `{`.
                let mut j = close + 1;
                while toks.get(j).is_some_and(|t| t.is_punct('#'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(toks, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return mask,
                    }
                }
                // Find the opening brace of the item (skipping signatures).
                let mut k = j;
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    if let Some(end) = matching(toks, k, '{', '}') {
                        for m in mask.iter_mut().take(end + 1).skip(i) {
                            *m = true;
                        }
                        i = end + 1;
                        continue;
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the punct matching the opener at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// For a `fn` keyword at `fn_idx`, the `(body_start, body_end)` token
/// indices of its `{ … }` body (both pointing at the braces), or `None`
/// for bodyless trait signatures.
fn fn_body(toks: &[Tok], fn_idx: usize) -> Option<(usize, usize)> {
    let mut j = fn_idx + 1;
    let mut angle = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` shows up as two puncts
        } else if t.is_punct('(') || t.is_punct('[') {
            let (o, c) = if t.is_punct('(') { ('(', ')') } else { ('[', ']') };
            j = matching(toks, j, o, c)?;
        } else if t.is_punct('{') && angle == 0 {
            let end = matching(toks, j, '{', '}')?;
            return Some((j, end));
        } else if t.is_punct(';') && angle == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Walk a function body tracking live guards, emitting lock-order edges
/// and guard-across-blocking findings.
#[allow(clippy::too_many_arguments)]
fn walk_body(
    path: &str,
    krate: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut paren = 0i64;
    let mut i = body_start;
    while i <= body_end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            // Temporaries from `if`/`while` conditions are dropped before
            // the block runs; only a `match` scrutinee guard survives into
            // its arms (the classic footgun — keep it live there).
            if !stmt_starts_with(toks, i, body_start, "match") {
                guards.retain(|g| g.name.is_some());
            }
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth && (g.name.is_some() || g.depth < depth));
            // Temporaries also die at block edges.
            guards.retain(|g| g.name.is_some());
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 1 {
            // Statement end (paren==1 covers the common `);` of a call —
            // close-paren processed after this token decrements it).
            guards.retain(|g| g.name.is_some());
        } else if t.kind == TokKind::Ident {
            // drop(name) kills the named guard.
            if t.text == "drop"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(victim) = toks.get(i + 2) {
                    if victim.kind == TokKind::Ident {
                        guards.retain(|g| g.name.as_deref() != Some(victim.text.as_str()));
                    }
                }
            }
            // Lock acquisition: `.lock()` / `.read()` / `.write()`.
            let zero_arg_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
            if ACQUIRE.contains(&t.text.as_str())
                && i > body_start
                && toks[i - 1].is_punct('.')
                && zero_arg_call
            {
                let recv = receiver_path(toks, i - 1, body_start);
                let lock_name = format!("{krate}::{recv}");
                let allowed = allow_for(Rule::LockOrder, t.line);
                for g in &guards {
                    if g.lock == lock_name {
                        out.findings.push(Finding {
                            rule: Rule::LockOrder,
                            file: path.to_string(),
                            line: t.line,
                            message: format!(
                                "nested acquisition of '{lock_name}' (already held since line {}) — std-backed locks are not reentrant",
                                g.line
                            ),
                            allowed: allowed.clone(),
                        });
                    } else {
                        out.edges.push(LockEdge {
                            from: g.lock.clone(),
                            to: lock_name.clone(),
                            file: path.to_string(),
                            line: t.line,
                            allowed: allowed.clone(),
                        });
                    }
                }
                // A guard is only *bound* when the acquisition terminates
                // the initializer (`let g = x.lock();`). A chained call
                // (`x.lock().remove(k)`) or deref (`*x.lock()`) hands out
                // the inner value; the guard itself is a temporary.
                let terminates_stmt = toks.get(i + 3).is_some_and(|n| n.is_punct(';'));
                let binding = if terminates_stmt {
                    binding_name(toks, i, body_start)
                } else {
                    None
                };
                if let Some(name) = &binding {
                    // Reassignment: the old guard is released after the new
                    // acquisition (edge above already captured the overlap).
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
                guards.push(Guard {
                    name: binding,
                    lock: lock_name,
                    depth,
                    line: t.line,
                });
                i += 3; // skip `( )`
                continue;
            }
            // Blocking call under a live guard.
            let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            let method_or_path = i > body_start
                && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
            let sink_write = t.text == "write"
                && is_call
                && !zero_arg_call
                && i > body_start
                && toks[i - 1].is_punct('.')
                && receiver_path(toks, i - 1, body_start).ends_with("sink");
            if is_call
                && method_or_path
                && (BLOCKING.contains(&t.text.as_str()) || sink_write)
                && !guards.is_empty()
            {
                let held: Vec<String> = guards
                    .iter()
                    .map(|g| {
                        format!(
                            "'{}'{}",
                            g.lock,
                            g.name.as_deref().map(|n| format!(" (as {n})")).unwrap_or_default()
                        )
                    })
                    .collect();
                let what = if sink_write { "sink write" } else { t.text.as_str() };
                out.findings.push(Finding {
                    rule: Rule::GuardBlocking,
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        "blocking call `{what}` while holding {} — release the guard first",
                        held.join(", ")
                    ),
                    allowed: allow_for(Rule::GuardBlocking, t.line),
                });
            }
        }
        i += 1;
    }
}

/// Walk backwards from the `.` before an acquisition to name the receiver:
/// `self.shards[i].map.read()` → `shards.map`. Keeps at most the last two
/// segments; drops a leading `self`.
fn receiver_path(toks: &[Tok], dot_idx: usize, floor: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot_idx; // points at '.'
    loop {
        if j == 0 || j <= floor {
            break;
        }
        let before = j - 1;
        let t = &toks[before];
        if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
            // Continue if the ident is itself preceded by `.`; a `::`
            // prefix means a path root (static/const) — stop there.
            if before > floor && toks[before - 1].is_punct('.') {
                j = before - 1;
                continue;
            }
            break;
        } else if t.is_punct(']') || t.is_punct(')') {
            // Skip the bracketed group backwards.
            let (open, close) = if t.is_punct(']') { ('[', ']') } else { ('(', ')') };
            let mut depth = 0i64;
            let mut k = before;
            loop {
                if toks[k].is_punct(close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 || k <= floor {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        } else {
            break;
        }
    }
    segs.retain(|s| s != "self");
    if segs.is_empty() {
        return "anon".to_string();
    }
    segs.reverse();
    if segs.len() > 2 {
        segs = segs.split_off(segs.len() - 2);
    }
    segs.join(".")
}

/// Index of the first token of the statement containing `idx` (scan back
/// to the last `;`, `{` or `}`).
fn stmt_start(toks: &[Tok], idx: usize, floor: usize) -> usize {
    let mut s = idx;
    while s > floor {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    s
}

/// Does the statement containing the token at `idx` open with `kw`?
fn stmt_starts_with(toks: &[Tok], idx: usize, floor: usize, kw: &str) -> bool {
    toks.get(stmt_start(toks, idx, floor)).is_some_and(|t| t.is_ident(kw))
}

/// If the statement containing the acquisition at `acq_idx` binds it via
/// `let [mut] name = …` or reassigns `name = …`, return the name.
fn binding_name(toks: &[Tok], acq_idx: usize, floor: usize) -> Option<String> {
    let s = stmt_start(toks, acq_idx, floor);
    let t0 = toks.get(s)?;
    if t0.is_ident("let") {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let name = toks.get(k)?;
        if name.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
            // `let v = *x.lock();` copies the pointee out — the guard is a
            // temporary, not the binding.
            if toks.get(k + 2).is_some_and(|t| t.is_punct('*')) {
                return None;
            }
            // Pattern bindings (`let Some(g) = …`) start uppercase; the
            // zero-arg acquisitions never return Option, so skip those.
            if name.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                return Some(name.text.clone());
            }
        }
        return None;
    }
    if t0.kind == TokKind::Ident && toks.get(s + 1).is_some_and(|t| t.is_punct('=')) {
        // Reassignment of an existing binding (`st = self.st.lock();`) —
        // but not `==`, and not through a deref.
        if !toks.get(s + 2).is_some_and(|t| t.is_punct('=') || t.is_punct('*')) {
            return Some(t0.text.clone());
        }
    }
    None
}
