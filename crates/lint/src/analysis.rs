//! Per-file invariant analysis over the token stream, plus the
//! workspace-level interprocedural pass ([`workspace_pass`]) fed by the
//! symbol table / call graph / summary layers.
//!
//! Ten rules (see DESIGN.md "Correctness tooling"):
//!
//! - `lock_order` — every nested `lock()/read()/write()` acquisition adds
//!   an edge `held → acquired` to a cross-crate graph; cycles (reported by
//!   [`crate::graph`]) are static ABBA deadlocks. Nested acquisition of
//!   the *same* lock name is reported directly (std-backed locks are not
//!   reentrant).
//! - `guard_blocking` — a live lock guard spanning a blocking call
//!   (`sleep`/`send`/`recv`/`join`/`flush`/sink `write`) serializes
//!   unrelated work behind I/O, and with channels in the mix can deadlock.
//! - `determinism` — `Instant::now`/`SystemTime::now`/ambient RNG outside
//!   the allowlist breaks same-seed chaos reproducibility.
//! - `unwrap` — `unwrap()/expect()` in protocol crates turns injected
//!   faults into panics instead of typed errors.
//! - `durability_order` — in a function that calls `make_durable`, a
//!   visibility stamp (`txns.commit(…)` / `store.commit(…)`) sequenced
//!   *before* the durability call acks a commit that crash recovery can
//!   never reconstruct — the redo-ahead invariant, statically.
//! - `hotpath_alloc` — inside a function annotated `// lint:hotpath`
//!   (the steady-state commit path), per-call heap allocation
//!   (`Vec::new`, `vec!`, `Box::new`, `.to_vec()`, `.clone()`…) defeats
//!   the allocation-free design; reuse a pooled buffer or move the work
//!   off the hot path. `Arc::clone(&x)` (the explicit refcount-bump
//!   form) is deliberately not flagged.
//! - `fence_completeness` — a bare routing call (`route_row`/`route_key`/
//!   `shard_dn`) inside a function that (transitively) reaches a shard
//!   write must be the fenced variant instead: an unfenced route has no
//!   commit-time epoch re-check, so a re-home cutover racing the
//!   statement strands the write on the detached old home (the PR-8
//!   lost-update class). Write reachability flows up the call graph.
//! - `release_on_all_paths` — a resource acquisition (`freeze_writes`,
//!   `epochs.freeze`) must be released on every exit path: a `?` or
//!   `return` between acquire and release leaks it (the PR-8
//!   `flush_tenant?` frozen-shard livelock class), and a body that never
//!   releases needs a (resolved) callee that does.
//! - `atomic_publish` — a `Relaxed` store to an atomic field that is
//!   `Acquire`-loaded elsewhere in the same crate publishes data without
//!   a happens-before edge; counters that stay relaxed on both sides and
//!   the sanctioned metrics/bench modules are exempt.
//! - interprocedural `lock_order` — held-lock sets flow across resolved
//!   direct calls: a call made under guard adds `held → callee-lock`
//!   edges for every lock the callee's transitive summary acquires, so
//!   ABBA cycles split across functions surface statically.
//!
//! Escape hatch: `// lint:allow(<rule>, <reason>)` on the offending line
//! or the line directly above. An allow without a reason is itself a
//! finding — justifications are the point.

use crate::callgraph::{CallGraph, STOPLIST};
use crate::summary::{compute as compute_summaries, Summary};
use crate::symbols::{
    AtomicAccess, AtomicOrd, CallSite, FnInfo, ResourceAcq, SymbolTable,
};
use crate::tokenizer::{tokenize, Allow, Tok, TokKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Rule identifiers (also the names accepted by `lint:allow`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Lock acquisition-order violations (self-nesting or graph cycles).
    LockOrder,
    /// A live guard spans a blocking call.
    GuardBlocking,
    /// Ambient time or randomness outside the allowlist.
    Determinism,
    /// `unwrap()/expect()` in a protocol crate.
    Unwrap,
    /// Version visibility stamped before the durability ack (redo-ahead).
    DurabilityOrder,
    /// Heap allocation inside a `// lint:hotpath`-annotated function.
    HotpathAlloc,
    /// Bare (unfenced) routing call in a function reaching a shard write.
    FenceCompleteness,
    /// Resource acquired but not released on every exit path.
    ReleaseOnAllPaths,
    /// Relaxed store to an atomic that is Acquire-loaded elsewhere.
    AtomicPublish,
    /// A malformed `lint:allow` (unknown rule or missing reason).
    BadAllow,
}

impl Rule {
    /// Canonical name, as used in `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock_order",
            Rule::GuardBlocking => "guard_blocking",
            Rule::Determinism => "determinism",
            Rule::Unwrap => "unwrap",
            Rule::DurabilityOrder => "durability_order",
            Rule::HotpathAlloc => "hotpath_alloc",
            Rule::FenceCompleteness => "fence_completeness",
            Rule::ReleaseOnAllPaths => "release_on_all_paths",
            Rule::AtomicPublish => "atomic_publish",
            Rule::BadAllow => "bad_allow",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        match s {
            "lock_order" => Some(Rule::LockOrder),
            "guard_blocking" => Some(Rule::GuardBlocking),
            "determinism" => Some(Rule::Determinism),
            "unwrap" => Some(Rule::Unwrap),
            "durability_order" => Some(Rule::DurabilityOrder),
            "hotpath_alloc" => Some(Rule::HotpathAlloc),
            "fence_completeness" => Some(Rule::FenceCompleteness),
            "release_on_all_paths" => Some(Rule::ReleaseOnAllPaths),
            "atomic_publish" => Some(Rule::AtomicPublish),
            _ => None,
        }
    }

    /// All rule names, for the JSON report header.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "lock_order",
            "guard_blocking",
            "determinism",
            "unwrap",
            "durability_order",
            "hotpath_alloc",
            "fence_completeness",
            "release_on_all_paths",
            "atomic_publish",
            "bad_allow",
        ]
    }
}

/// One finding, justified or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a well-formed `lint:allow` covers the line.
    pub allowed: Option<String>,
    /// Symbol path of the enclosing function, when the rule knows it
    /// (`core::cluster::Session::insert`); surfaced in the JSON report.
    pub symbol: Option<String>,
}

/// One lock-order edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Held lock (crate-qualified name).
    pub from: String,
    /// Acquired lock (crate-qualified name).
    pub to: String,
    /// Where the nested acquisition happens.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// Justification, if the line carries `lint:allow(lock_order, …)`.
    pub allowed: Option<String>,
    /// For interprocedural edges: which call carried the held set into
    /// the callee (`via call to flush_tenant`). `None` for direct edges.
    pub via: Option<String>,
}

/// An acquire/release method pair tracked by `release_on_all_paths`.
#[derive(Debug, Clone)]
pub struct ResourcePair {
    /// The acquiring method name (`freeze_writes`).
    pub acquire: String,
    /// The releasing method name (`unfreeze_writes`).
    pub release: String,
    /// When set, the acquire/release receivers' last segment must equal
    /// this (distinguishes `epochs.freeze` from `bytes.freeze()`).
    pub recv: Option<String>,
}

impl ResourcePair {
    fn new(acquire: &str, release: &str, recv: Option<&str>) -> ResourcePair {
        ResourcePair {
            acquire: acquire.into(),
            release: release.into(),
            recv: recv.map(str::to_string),
        }
    }
}

/// Linter configuration. Paths are matched as repo-relative prefixes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates where `unwrap()/expect()` is denied in non-test code.
    pub unwrap_deny_crates: Vec<String>,
    /// Path prefixes exempt from the determinism rule (clock sources,
    /// benches, the simnet latency model, and the shims that implement
    /// the abstractions everything else is told to use).
    pub determinism_allow_paths: Vec<String>,
    /// Path prefixes where bare routing calls are sanctioned — the
    /// module that *defines* the fenced variants builds them out of the
    /// bare ones.
    pub fence_sanctioned_paths: Vec<String>,
    /// Path prefixes exempt from `atomic_publish` — metrics counters and
    /// bench harness state are read approximately by design.
    pub atomic_sanctioned_paths: Vec<String>,
    /// Acquire/release pairs for `release_on_all_paths`.
    pub resource_pairs: Vec<ResourcePair>,
    /// Identifiers whose presence in a function body marks it as
    /// reaching a shard write (`fence_completeness` reachability seeds).
    pub write_markers: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            unwrap_deny_crates: vec!["txn".into(), "consensus".into(), "wal".into()],
            determinism_allow_paths: vec![
                "crates/hlc/".into(),
                "crates/bench/".into(),
                "crates/simnet/src/latency.rs".into(),
                // The sanctioned ambient-clock home everything else uses.
                "crates/common/src/time.rs".into(),
                "shims/".into(),
            ],
            fence_sanctioned_paths: vec![
                // Defines route_row_fenced/shard_dn_fenced in terms of the
                // bare routers + the epoch fence.
                "crates/core/src/gms.rs".into(),
            ],
            atomic_sanctioned_paths: vec![
                "crates/common/src/metrics.rs".into(),
                "crates/bench/".into(),
                "shims/".into(),
            ],
            resource_pairs: vec![
                ResourcePair::new("freeze_writes", "unfreeze_writes", None),
                ResourcePair::new("freeze", "unfreeze", Some("epochs")),
            ],
            write_markers: vec!["WireWriteOp".into()],
        }
    }
}

/// Result of analyzing one file.
/// Resolved allow targets for one file: line → `(rule, reason)` pairs.
pub type AllowMap = BTreeMap<u32, Vec<(String, String)>>;

#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule findings (cycle findings come later from the graph pass).
    pub findings: Vec<Finding>,
    /// Lock-order edges contributed to the workspace graph.
    pub edges: Vec<LockEdge>,
    /// Function symbols + facts for the interprocedural pass.
    pub fns: Vec<FnInfo>,
    /// Atomic accesses for the workspace `atomic_publish` matching.
    pub atomics: Vec<AtomicAccess>,
    /// Resolved allow targets, so the workspace pass can honor
    /// `lint:allow` on lines it reports later.
    pub allow_map: AllowMap,
}

/// Blocking calls that must not run under a live lock guard. `wait` /
/// `wait_until` are deliberately absent: condvars release the guard.
const BLOCKING: &[&str] = &["sleep", "send", "recv", "recv_timeout", "join", "flush", "sync_all"];

/// Zero-argument methods treated as lock acquisitions.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Is this path test-scoped (integration tests, fixtures, examples,
/// benches directories)? Whole-file skip for every rule.
pub fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
        || p.contains("/benches/")
}

/// Crate name a repo-relative path belongs to (`crates/txn/…` → `txn`,
/// `shims/rand/…` → `shim-rand`, the root package → `root`).
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    let mut parts = p.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("shims") => format!("shim-{}", parts.next().unwrap_or("unknown")),
        _ => "root".to_string(),
    }
}

/// A live guard during the function walk.
struct Guard {
    /// Binding name (`None` for a temporary that dies at statement end).
    name: Option<String>,
    /// Crate-qualified lock node name.
    lock: String,
    /// Brace depth the binding lives at.
    depth: usize,
    /// Line of acquisition (for messages).
    line: u32,
}

/// Analyze one file's source. `path` is repo-relative and used for rule
/// scoping and messages.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    if is_test_path(path) {
        return out;
    }
    let stream = tokenize(src);
    let toks = &stream.toks;
    let krate = crate_of(path);

    // Allow lookup: an allow on line L covers line L (trailing comment)
    // and, if L itself carries no code, the next line that does.
    let code_lines: HashSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut allows: BTreeMap<u32, Vec<&Allow>> = BTreeMap::new();
    for a in &stream.allows {
        if Rule::from_name(&a.rule).is_none() {
            out.findings.push(Finding {
                rule: Rule::BadAllow,
                file: path.to_string(),
                line: a.line,
                message: format!("lint:allow names unknown rule '{}'", a.rule),
                allowed: None,
                symbol: None,
            });
            continue;
        }
        if a.reason.is_empty() {
            out.findings.push(Finding {
                rule: Rule::BadAllow,
                file: path.to_string(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a reason — justify the exception",
                    a.rule
                ),
                allowed: None,
                symbol: None,
            });
            continue;
        }
        let target = if code_lines.contains(&a.line) {
            a.line
        } else {
            code_lines.iter().copied().filter(|&l| l > a.line).min().unwrap_or(a.line)
        };
        allows.entry(target).or_default().push(a);
        // Export for the workspace pass (which reports findings on lines
        // of this file after all files are analyzed).
        out.allow_map
            .entry(target)
            .or_default()
            .push((a.rule.clone(), a.reason.clone()));
    }
    let allow_for = |rule: Rule, line: u32| -> Option<String> {
        allows
            .get(&line)
            .and_then(|v| v.iter().find(|a| a.rule == rule.name()))
            .map(|a| a.reason.clone())
    };

    // Mark token ranges belonging to test code: `#[cfg(test)] mod … { … }`
    // and `#[test] fn … { … }`.
    let test_mask = test_mask(toks);

    // ---- determinism rule (token-pattern scan) -------------------------
    let det_exempt = cfg.determinism_allow_paths.iter().any(|p| path.starts_with(p.as_str()));
    if !det_exempt {
        for i in 0..toks.len() {
            if test_mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let msg = if t.text == "now"
                && path_prefix_is(toks, i, &["Instant", "SystemTime"])
            {
                let src_ty = prev_path_ident(toks, i).unwrap_or_else(|| "Instant".into());
                Some(format!(
                    "{src_ty}::now() is ambient time — inject a clock (polardbx_common::time / hlc::PhysicalClock) instead",
                ))
            } else if t.text == "thread_rng" || t.text == "from_entropy" {
                Some(format!(
                    "{}() is ambient randomness — use a seeded StdRng so chaos runs replay",
                    t.text
                ))
            } else if t.text == "random" && path_prefix_is(toks, i, &["rand"]) {
                Some("rand::random() is ambient randomness — use a seeded StdRng".to_string())
            } else {
                None
            };
            if let Some(message) = msg {
                out.findings.push(Finding {
                    rule: Rule::Determinism,
                    file: path.to_string(),
                    line: t.line,
                    message,
                    allowed: allow_for(Rule::Determinism, t.line),
                    symbol: None,
                });
            }
        }
    }

    // ---- unwrap rule ---------------------------------------------------
    if cfg.unwrap_deny_crates.contains(&krate) {
        for i in 0..toks.len() {
            if test_mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.findings.push(Finding {
                    rule: Rule::Unwrap,
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        ".{}() in protocol crate '{krate}' — return a typed Error instead of panicking",
                        t.text
                    ),
                    allowed: allow_for(Rule::Unwrap, t.line),
                    symbol: None,
                });
            }
        }
    }

    // Hot-function lines: a `// lint:hotpath` marker annotates the next
    // line carrying code — the function signature it sits above.
    let hot_lines: HashSet<u32> = stream
        .hotpaths
        .iter()
        .map(|&l| {
            if code_lines.contains(&l) {
                l
            } else {
                code_lines.iter().copied().filter(|&c| c > l).min().unwrap_or(l)
            }
        })
        .collect();

    // Enclosing `impl Type` / `trait Type` name per token index, for the
    // symbol table (qualifier narrowing needs to know which impl block a
    // method lives in).
    let impls = impl_mask(toks);

    // ---- lock + durability + hotpath rules (per-function walks) --------
    // The same walk extracts per-function facts (calls made under locks,
    // resources acquired/released, atomics touched) for the workspace
    // interprocedural pass.
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !test_mask[i] {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                let fn_name = toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_else(|| "anon".into());
                let mut info = FnInfo {
                    name: fn_name,
                    impl_ty: impls[i].clone(),
                    file: path.to_string(),
                    krate: krate.clone(),
                    line: toks[i].line,
                    calls: Vec::new(),
                    locks: Vec::new(),
                    direct_write: false,
                    bare_routes: Vec::new(),
                    acquisitions: Vec::new(),
                    releases: Vec::new(),
                };
                walk_body(
                    path,
                    &krate,
                    toks,
                    body_start,
                    body_end,
                    &allow_for,
                    &mut out,
                    &mut info,
                );
                check_durability_order(path, toks, body_start, body_end, &allow_for, &mut out);
                if hot_lines.contains(&toks[i].line) {
                    check_hotpath_alloc(path, toks, body_start, body_end, &allow_for, &mut out);
                }
                scan_fn_facts(cfg, toks, body_start, body_end, &mut info);
                scan_resources(cfg, toks, body_start, body_end, &mut info);
                scan_atomics(path, toks, body_start, body_end, &mut out.atomics);
                out.fns.push(info);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Routing calls with fenced variants (`<name>_fenced`); bare use in a
/// write-reaching function is a `fence_completeness` finding.
const BARE_ROUTES: &[&str] = &["route_row", "route_key", "shard_dn"];

/// Direct-write markers and bare routing calls in one body.
fn scan_fn_facts(
    cfg: &Config,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    info: &mut FnInfo,
) {
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if cfg.write_markers.iter().any(|m| m == &t.text) {
            info.direct_write = true;
        }
        if BARE_ROUTES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            info.bare_routes.push((t.text.clone(), t.line));
        }
    }
}

/// Match resource acquisitions (`freeze_writes`, `epochs.freeze`, …) and
/// scan their exit paths: a `?` or `return` between an acquisition and
/// its in-body release is a leaky exit; a body that never releases
/// records the calls made afterwards so the workspace pass can discharge
/// the leak through a callee's summary. Closure bodies are skipped — a
/// `?` inside `let cutover = || { … }` exits the closure, not the
/// function holding the resource.
fn scan_resources(
    cfg: &Config,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    info: &mut FnInfo,
) {
    // Method call at `i` matching `name` with the pair's receiver
    // constraint satisfied.
    let is_res_call = |i: usize, name: &str, recv: &Option<String>| -> bool {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || t.text != name
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || i == 0
            || !toks[i - 1].is_punct('.')
        {
            return false;
        }
        match recv {
            None => true,
            Some(want) => {
                let r = receiver_path(toks, i - 1, body_start);
                r.rsplit('.').next() == Some(want.as_str())
            }
        }
    };
    for pair in &cfg.resource_pairs {
        for i in body_start..=body_end {
            if is_res_call(i, &pair.release, &pair.recv)
                && !info.releases.contains(&pair.release)
            {
                info.releases.push(pair.release.clone());
            }
            if !is_res_call(i, &pair.acquire, &pair.recv) {
                continue;
            }
            let acq_line = toks[i].line;
            // Forward scan: find the first matching release, collecting
            // exits and calls along the way (closures skipped).
            let mut release_at: Option<usize> = None;
            let mut exits: Vec<(u32, &'static str)> = Vec::new();
            let mut calls_after: Vec<String> = Vec::new();
            let mut j = i + 1;
            while j <= body_end {
                let t = &toks[j];
                if t.is_punct('|') && closure_starts(toks, j, body_start) {
                    j = skip_closure(toks, j, body_end);
                    continue;
                }
                if is_res_call(j, &pair.release, &pair.recv) {
                    release_at = Some(j);
                    break;
                }
                if t.is_punct('?') {
                    exits.push((t.line, "?"));
                } else if t.is_ident("return") {
                    exits.push((t.line, "return"));
                } else if t.kind == TokKind::Ident
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    && !is_keyword(&t.text)
                {
                    calls_after.push(t.text.clone());
                }
                j += 1;
            }
            info.acquisitions.push(ResourceAcq {
                acquire: pair.acquire.clone(),
                release: pair.release.clone(),
                line: acq_line,
                released_in_body: release_at.is_some(),
                leaky_exits: if release_at.is_some() { exits } else { Vec::new() },
                calls_after,
            });
        }
    }
}

/// Does the `|` at `idx` open a closure parameter list? True when it
/// follows `=`, `(`, `,`, `move`, or another expression-starting
/// position — which in this codebase distinguishes it from bitwise-or.
fn closure_starts(toks: &[Tok], idx: usize, floor: usize) -> bool {
    if idx <= floor {
        return false;
    }
    let p = &toks[idx - 1];
    p.is_punct('=')
        || p.is_punct('(')
        || p.is_punct(',')
        || p.is_punct('{')
        || p.is_ident("move")
}

/// Skip a closure starting at the `|` at `idx`: past the parameter list,
/// an optional `-> Type`, and either a braced body (to its matching `}`)
/// or an expression body (to the `,`/`)`/`;` ending it). Returns the
/// index to resume at.
fn skip_closure(toks: &[Tok], idx: usize, body_end: usize) -> usize {
    // Parameter list: `||` or `|args|`.
    let mut j = idx + 1;
    while j <= body_end && !toks[j].is_punct('|') {
        j += 1;
    }
    j += 1; // past closing '|'
    // Body: first `{` before a terminator is a braced body. Paren and
    // bracket groups are skipped whole so a `-> Result<()>` return type
    // (or tuple/arg groups in an expression body) can't end the scan —
    // only an *unmatched* `)`/`,`/`;` terminates an expression closure.
    let mut k = j;
    while k <= body_end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            let (o, c) = if t.is_punct('(') { ('(', ')') } else { ('[', ']') };
            match matching(toks, k, o, c) {
                Some(e) => {
                    k = e + 1;
                    continue;
                }
                None => return body_end + 1,
            }
        }
        if t.is_punct('{') {
            return matching(toks, k, '{', '}').map(|e| e + 1).unwrap_or(body_end + 1);
        }
        if t.is_punct(';') || t.is_punct(',') || t.is_punct(')') {
            return k;
        }
        k += 1;
    }
    body_end + 1
}

/// Keywords that can directly precede `(` without being calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "else"
            | "let"
            | "fn"
            | "impl"
            | "use"
            | "pub"
            | "mod"
            | "where"
            | "unsafe"
            | "mut"
            | "ref"
            | "break"
            | "continue"
    )
}

/// Atomic access methods whose first ordering argument classifies the
/// site. Calls with *no* ordering identifier in their arguments are not
/// atomics (`self.store(table)`) and are skipped.
const ATOMIC_STORES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Atomic accesses in one body, with receiver field and strongest named
/// ordering.
fn scan_atomics(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    out: &mut Vec<AtomicAccess>,
) {
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let is_store = ATOMIC_STORES.contains(&t.text.as_str());
        let is_load = t.text == "load";
        if !is_store && !is_load {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let Some(close) = matching(toks, open, '(', ')') else { continue };
        let mut ord: Option<AtomicOrd> = None;
        for a in &toks[open + 1..close] {
            if a.kind == TokKind::Ident {
                if let Some(o) = AtomicOrd::from_ident(&a.text) {
                    ord = Some(ord.map_or(o, |p| p.max(o)));
                }
            }
        }
        // No Ordering ident → not an atomic access (e.g. a cache's
        // `.store(value)`); skip rather than guess.
        let Some(ordering) = ord else { continue };
        let field = receiver_path(toks, i - 1, body_start)
            .rsplit('.')
            .next()
            .unwrap_or("anon")
            .to_string();
        out.push(AtomicAccess {
            field,
            is_store,
            ordering,
            file: path.to_string(),
            line: t.line,
        });
    }
}

/// Allocating constructors flagged when path-called (`Vec::new()`…) in a
/// hot function.
const ALLOC_TYPES: &[&str] =
    &["Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Allocating methods flagged when method-called (`.to_vec()`…) in a hot
/// function. `clone` is handled separately so `Arc::clone(&x)` — the
/// explicit refcount-bump idiom — stays legal.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned"];

/// The allocation-free invariant for `// lint:hotpath` functions: the
/// steady-state commit path must not heap-allocate per call. Flags
/// `Vec::new()`-style constructors on allocating types, the `vec![…]`
/// macro, `.to_vec()/.to_string()/.to_owned()` copies, and method-form
/// `.clone()` (deep-copy by default; for refcounts use `Arc::clone(&x)`,
/// which the rule deliberately ignores). Era-amortized allocations that
/// must stay need `lint:allow(hotpath_alloc, why)`.
fn check_hotpath_alloc(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
) {
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let msg = if t.text == "vec" && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            Some("`vec![…]` heap-allocates per call".to_string())
        } else if t.text == "new" && is_call {
            prev_path_ident(toks, i)
                .filter(|ty| ALLOC_TYPES.contains(&ty.as_str()))
                .map(|ty| format!("`{ty}::new()` heap-allocates per call"))
        } else if ALLOC_METHODS.contains(&t.text.as_str())
            && is_call
            && i > body_start
            && toks[i - 1].is_punct('.')
        {
            Some(format!("`.{}()` copies into a fresh heap buffer", t.text))
        } else if t.text == "clone"
            && is_call
            && i > body_start
            && toks[i - 1].is_punct('.')
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            Some(
                "`.clone()` may deep-copy per call — reuse a buffer, or use `Arc::clone(&x)` \
                 for an explicit refcount bump"
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(m) = msg {
            out.findings.push(Finding {
                rule: Rule::HotpathAlloc,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "{m} inside a `lint:hotpath` function — the commit path must be \
                     allocation-free"
                ),
                allowed: allow_for(Rule::HotpathAlloc, t.line),
                symbol: None,
            });
        }
    }
}

/// The redo-ahead invariant, statically: in a function that makes redo
/// durable (`make_durable(…)`), every visibility stamp — `txns.commit(…)`
/// or `…store.commit(…)` — must be sequenced *after* the first durability
/// call. A commit made visible first would be acked without its redo, so a
/// crash in the gap is a silent RPO violation (see `StorageEngine::commit`
/// and the matching runtime `debug_assert`). Functions with no
/// `make_durable` at all are out of scope: replay and resolver paths stamp
/// visibility for records that are durable by definition.
fn check_durability_order(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
) {
    let mut first_durable: Option<(usize, u32)> = None;
    let mut visibility: Vec<(usize, u32, String)> = Vec::new();
    for i in body_start..=body_end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if t.text == "make_durable" {
            if first_durable.is_none() {
                first_durable = Some((i, t.line));
            }
        } else if t.text == "commit" && i > body_start && toks[i - 1].is_punct('.') {
            let recv = receiver_path(toks, i - 1, body_start);
            let last = recv.rsplit('.').next().unwrap_or(&recv);
            if last == "txns" || last.ends_with("store") {
                visibility.push((i, t.line, recv));
            }
        }
    }
    if let Some((d, durable_line)) = first_durable {
        for (i, line, recv) in visibility {
            if i < d {
                out.findings.push(Finding {
                    rule: Rule::DurabilityOrder,
                    file: path.to_string(),
                    line,
                    message: format!(
                        "'{recv}.commit()' makes versions visible before `make_durable` \
                         (line {durable_line}) returns — durability must be acked first \
                         (redo-ahead)",
                    ),
                    allowed: allow_for(Rule::DurabilityOrder, line),
                    symbol: None,
                });
            }
        }
    }
}

/// Does the `::`-path ending just before ident `i` terminate in one of
/// `last`? Matches `Instant::now`, `std::time::Instant::now`, etc.
fn path_prefix_is(toks: &[Tok], i: usize, last: &[&str]) -> bool {
    prev_path_ident(toks, i).map(|t| last.contains(&t.as_str())).unwrap_or(false)
}

/// The identifier preceding `i` across a `::` separator, if any.
fn prev_path_ident(toks: &[Tok], i: usize) -> Option<String> {
    if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let p = &toks[i - 3];
        if p.kind == TokKind::Ident {
            return Some(p.text.clone());
        }
    }
    None
}

/// Token-index mask: true where the token sits in `#[cfg(test)] mod { … }`
/// or a `#[test] fn { … }` body.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // #[cfg(test)]  (also matches #[cfg(all(test, …))] via contains)
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let attr: Vec<&str> = toks[i + 2..close].iter().map(|t| t.text.as_str()).collect();
            let is_test_attr = attr.first() == Some(&"test")
                || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
            if is_test_attr {
                // Skip any further attributes, then expect mod/fn … `{`.
                let mut j = close + 1;
                while toks.get(j).is_some_and(|t| t.is_punct('#'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(toks, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return mask,
                    }
                }
                // Find the opening brace of the item (skipping signatures).
                let mut k = j;
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    if let Some(end) = matching(toks, k, '{', '}') {
                        for m in mask.iter_mut().take(end + 1).skip(i) {
                            *m = true;
                        }
                        i = end + 1;
                        continue;
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Per-token enclosing `impl Type` / `trait Type` name. For
/// `impl Trait for Type` the *type* wins (that's what `Type::method`
/// call qualifiers name).
fn impl_mask(toks: &[Tok]) -> Vec<Option<String>> {
    let mut mask: Vec<Option<String>> = vec![None; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // Item-position check: `-> impl Trait` (return position) and
        // `(impl Trait` / `, impl Trait` (argument position) are trait
        // bounds, not blocks. An item-level `impl`/`trait` follows the
        // start of file, a block edge, an attribute, or `pub`/`unsafe`.
        let item_pos = i == 0
            || toks[i - 1].is_punct('{')
            || toks[i - 1].is_punct('}')
            || toks[i - 1].is_punct(';')
            || toks[i - 1].is_punct(']')
            || toks[i - 1].is_ident("pub")
            || toks[i - 1].is_ident("unsafe");
        if (toks[i].is_ident("impl") || toks[i].is_ident("trait")) && item_pos {
            // Collect header idents up to the opening `{` (skipping
            // paren/bracket groups so `impl<F: Fn() -> R>` can't confuse
            // the scan), tracking `for`.
            let mut j = i + 1;
            let mut after_for: Option<String> = None;
            let mut first: Option<String> = None;
            let mut saw_for = false;
            let mut angle = 0i64;
            let mut ok = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    if j > 0 && toks[j - 1].is_punct('-') {
                        // `->` in a bound; not an angle close.
                    } else {
                        angle = (angle - 1).max(0);
                    }
                } else if t.is_punct('(') || t.is_punct('[') {
                    let (o, c) = if t.is_punct('(') { ('(', ')') } else { ('[', ']') };
                    match matching(toks, j, o, c) {
                        Some(e) => j = e,
                        None => break,
                    }
                } else if t.is_punct('{') && angle == 0 {
                    ok = true;
                    break;
                } else if t.is_punct(';') && angle == 0 {
                    break;
                } else if t.kind == TokKind::Ident && angle == 0 {
                    if t.text == "for" {
                        saw_for = true;
                    } else if t.text == "where" {
                        // where-clause idents are bounds, not the type.
                    } else if saw_for {
                        if after_for.is_none() {
                            after_for = Some(t.text.clone());
                        }
                    } else if first.is_none() {
                        first = Some(t.text.clone());
                    }
                }
                j += 1;
            }
            if ok {
                if let Some(end) = matching(toks, j, '{', '}') {
                    let name = after_for.or(first);
                    if let Some(n) = name {
                        for m in mask.iter_mut().take(end + 1).skip(j) {
                            *m = Some(n.clone());
                        }
                    }
                    // Impl blocks don't nest; resume after the header so
                    // nested `impl Trait` bounds inside the block are
                    // still scanned (they fail the `{`-before-`;` test).
                    i = j + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the punct matching the opener at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// For a `fn` keyword at `fn_idx`, the `(body_start, body_end)` token
/// indices of its `{ … }` body (both pointing at the braces), or `None`
/// for bodyless trait signatures.
fn fn_body(toks: &[Tok], fn_idx: usize) -> Option<(usize, usize)> {
    let mut j = fn_idx + 1;
    let mut angle = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` shows up as two puncts
        } else if t.is_punct('(') || t.is_punct('[') {
            let (o, c) = if t.is_punct('(') { ('(', ')') } else { ('[', ']') };
            j = matching(toks, j, o, c)?;
        } else if t.is_punct('{') && angle == 0 {
            let end = matching(toks, j, '{', '}')?;
            return Some((j, end));
        } else if t.is_punct(';') && angle == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Walk a function body tracking live guards, emitting lock-order edges
/// and guard-across-blocking findings. Also records, into `info`, the
/// locks this body acquires and every call site with the lock context it
/// runs under — the raw material for the interprocedural pass.
#[allow(clippy::too_many_arguments)]
fn walk_body(
    path: &str,
    krate: &str,
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    allow_for: &dyn Fn(Rule, u32) -> Option<String>,
    out: &mut FileAnalysis,
    info: &mut FnInfo,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut paren = 0i64;
    let mut i = body_start;
    while i <= body_end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            // Temporaries from `if`/`while` conditions are dropped before
            // the block runs; only a `match` scrutinee guard survives into
            // its arms (the classic footgun — keep it live there).
            if !stmt_starts_with(toks, i, body_start, "match") {
                guards.retain(|g| g.name.is_some());
            }
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth && (g.name.is_some() || g.depth < depth));
            // Temporaries also die at block edges.
            guards.retain(|g| g.name.is_some());
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 1 {
            // Statement end (paren==1 covers the common `);` of a call —
            // close-paren processed after this token decrements it).
            guards.retain(|g| g.name.is_some());
        } else if t.kind == TokKind::Ident {
            // drop(name) kills the named guard.
            if t.text == "drop"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(victim) = toks.get(i + 2) {
                    if victim.kind == TokKind::Ident {
                        guards.retain(|g| g.name.as_deref() != Some(victim.text.as_str()));
                    }
                }
            }
            // Lock acquisition: `.lock()` / `.read()` / `.write()`.
            let zero_arg_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
            if ACQUIRE.contains(&t.text.as_str())
                && i > body_start
                && toks[i - 1].is_punct('.')
                && zero_arg_call
            {
                let recv = receiver_path(toks, i - 1, body_start);
                let lock_name = format!("{krate}::{recv}");
                if !info.locks.contains(&lock_name) {
                    info.locks.push(lock_name.clone());
                }
                let allowed = allow_for(Rule::LockOrder, t.line);
                for g in &guards {
                    if g.lock == lock_name {
                        out.findings.push(Finding {
                            rule: Rule::LockOrder,
                            file: path.to_string(),
                            line: t.line,
                            message: format!(
                                "nested acquisition of '{lock_name}' (already held since line {}) — std-backed locks are not reentrant",
                                g.line
                            ),
                            allowed: allowed.clone(),
                            symbol: None,
                        });
                    } else {
                        out.edges.push(LockEdge {
                            from: g.lock.clone(),
                            to: lock_name.clone(),
                            file: path.to_string(),
                            line: t.line,
                            allowed: allowed.clone(),
                            via: None,
                        });
                    }
                }
                // A guard is only *bound* when the acquisition terminates
                // the initializer (`let g = x.lock();`). A chained call
                // (`x.lock().remove(k)`) or deref (`*x.lock()`) hands out
                // the inner value; the guard itself is a temporary.
                let terminates_stmt = toks.get(i + 3).is_some_and(|n| n.is_punct(';'));
                let binding = if terminates_stmt {
                    binding_name(toks, i, body_start)
                } else {
                    None
                };
                if let Some(name) = &binding {
                    // Reassignment: the old guard is released after the new
                    // acquisition (edge above already captured the overlap).
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
                guards.push(Guard {
                    name: binding,
                    lock: lock_name,
                    depth,
                    line: t.line,
                });
                i += 3; // skip `( )`
                continue;
            }
            // Call-site recording for the interprocedural pass: any
            // lowercase ident applied to `(…)` that isn't a keyword. The
            // `Type::name` qualifier (uppercase path prefix) narrows
            // resolution later; macro invocations (`name!`) never match
            // because `!` sits between the ident and the paren.
            let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if is_call
                && !is_keyword(&t.text)
                && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
            {
                let qual = prev_path_ident(toks, i)
                    .filter(|q| q.chars().next().is_some_and(|c| c.is_uppercase()));
                info.calls.push(CallSite {
                    callee: t.text.clone(),
                    qual,
                    held: guards.iter().map(|g| g.lock.clone()).collect(),
                    line: t.line,
                });
            }
            // Blocking call under a live guard.
            let method_or_path = i > body_start
                && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
            let sink_write = t.text == "write"
                && is_call
                && !zero_arg_call
                && i > body_start
                && toks[i - 1].is_punct('.')
                && receiver_path(toks, i - 1, body_start).ends_with("sink");
            if is_call
                && method_or_path
                && (BLOCKING.contains(&t.text.as_str()) || sink_write)
                && !guards.is_empty()
            {
                let held: Vec<String> = guards
                    .iter()
                    .map(|g| {
                        format!(
                            "'{}'{}",
                            g.lock,
                            g.name.as_deref().map(|n| format!(" (as {n})")).unwrap_or_default()
                        )
                    })
                    .collect();
                let what = if sink_write { "sink write" } else { t.text.as_str() };
                out.findings.push(Finding {
                    rule: Rule::GuardBlocking,
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        "blocking call `{what}` while holding {} — release the guard first",
                        held.join(", ")
                    ),
                    allowed: allow_for(Rule::GuardBlocking, t.line),
                    symbol: None,
                });
            }
        }
        i += 1;
    }
}

/// Walk backwards from the `.` before an acquisition to name the receiver:
/// `self.shards[i].map.read()` → `shards.map`. Keeps at most the last two
/// segments; drops a leading `self`.
fn receiver_path(toks: &[Tok], dot_idx: usize, floor: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot_idx; // points at '.'
    loop {
        if j == 0 || j <= floor {
            break;
        }
        let before = j - 1;
        let t = &toks[before];
        if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
            // Continue if the ident is itself preceded by `.`; a `::`
            // prefix means a path root (static/const) — stop there.
            if before > floor && toks[before - 1].is_punct('.') {
                j = before - 1;
                continue;
            }
            break;
        } else if t.is_punct(']') || t.is_punct(')') {
            // Skip the bracketed group backwards.
            let (open, close) = if t.is_punct(']') { ('[', ']') } else { ('(', ')') };
            let mut depth = 0i64;
            let mut k = before;
            loop {
                if toks[k].is_punct(close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 || k <= floor {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        } else {
            break;
        }
    }
    segs.retain(|s| s != "self");
    if segs.is_empty() {
        return "anon".to_string();
    }
    segs.reverse();
    if segs.len() > 2 {
        segs = segs.split_off(segs.len() - 2);
    }
    segs.join(".")
}

/// Index of the first token of the statement containing `idx` (scan back
/// to the last `;`, `{` or `}`).
fn stmt_start(toks: &[Tok], idx: usize, floor: usize) -> usize {
    let mut s = idx;
    while s > floor {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    s
}

/// Does the statement containing the token at `idx` open with `kw`?
fn stmt_starts_with(toks: &[Tok], idx: usize, floor: usize, kw: &str) -> bool {
    toks.get(stmt_start(toks, idx, floor)).is_some_and(|t| t.is_ident(kw))
}

/// If the statement containing the acquisition at `acq_idx` binds it via
/// `let [mut] name = …` or reassigns `name = …`, return the name.
fn binding_name(toks: &[Tok], acq_idx: usize, floor: usize) -> Option<String> {
    let s = stmt_start(toks, acq_idx, floor);
    let t0 = toks.get(s)?;
    if t0.is_ident("let") {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let name = toks.get(k)?;
        if name.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
            // `let v = *x.lock();` copies the pointee out — the guard is a
            // temporary, not the binding.
            if toks.get(k + 2).is_some_and(|t| t.is_punct('*')) {
                return None;
            }
            // Pattern bindings (`let Some(g) = …`) start uppercase; the
            // zero-arg acquisitions never return Option, so skip those.
            if name.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                return Some(name.text.clone());
            }
        }
        return None;
    }
    if t0.kind == TokKind::Ident && toks.get(s + 1).is_some_and(|t| t.is_punct('=')) {
        // Reassignment of an existing binding (`st = self.st.lock();`) —
        // but not `==`, and not through a deref.
        if !toks.get(s + 2).is_some_and(|t| t.is_punct('=') || t.is_punct('*')) {
            return Some(t0.text.clone());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Workspace interprocedural pass
// ---------------------------------------------------------------------------

/// Run the interprocedural rules over the whole workspace's per-file
/// facts: builds the symbol table + call graph, propagates summaries to
/// fixpoint, and emits `fence_completeness` / `release_on_all_paths` /
/// `atomic_publish` findings plus interprocedural lock-order edges
/// (held-lock sets flowing across resolved calls).
pub fn workspace_pass(
    cfg: &Config,
    fns: Vec<FnInfo>,
    atomics: &[AtomicAccess],
    allow_maps: &HashMap<String, AllowMap>,
) -> (Vec<Finding>, Vec<LockEdge>) {
    let table = SymbolTable::build(fns);
    let graph = CallGraph::build(&table);
    let sums: Vec<Summary> = compute_summaries(&table, &graph);
    let stop: HashSet<&str> = STOPLIST.iter().copied().collect();

    let allow_of = |file: &str, line: u32, rule: Rule| -> Option<String> {
        allow_maps
            .get(file)
            .and_then(|m| m.get(&line))
            .and_then(|v| v.iter().find(|(r, _)| r == rule.name()))
            .map(|(_, reason)| reason.clone())
    };
    let sanctioned = |paths: &[String], file: &str| paths.iter().any(|p| file.starts_with(p.as_str()));

    let mut findings: Vec<Finding> = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();

    // ---- fence_completeness -------------------------------------------
    for (i, f) in table.fns.iter().enumerate() {
        if f.bare_routes.is_empty()
            || !sums[i].reaches_write
            || sanctioned(&cfg.fence_sanctioned_paths, &f.file)
        {
            continue;
        }
        for (name, line) in &f.bare_routes {
            findings.push(Finding {
                rule: Rule::FenceCompleteness,
                file: f.file.clone(),
                line: *line,
                message: format!(
                    "bare `{name}()` in a function that reaches a shard write — use \
                     `{name}_fenced()` so a re-home cutover racing this statement is \
                     caught by the commit-time epoch re-check (lost-update class)",
                ),
                allowed: allow_of(&f.file, *line, Rule::FenceCompleteness),
                symbol: Some(f.symbol_path()),
            });
        }
    }

    // ---- release_on_all_paths -----------------------------------------
    for f in &table.fns {
        for acq in &f.acquisitions {
            if acq.released_in_body {
                for (line, kind) in &acq.leaky_exits {
                    findings.push(Finding {
                        rule: Rule::ReleaseOnAllPaths,
                        file: f.file.clone(),
                        line: *line,
                        message: format!(
                            "`{kind}` exit between `{}()` (line {}) and its `{}()` — an \
                             early error return leaks the acquisition (frozen-shard \
                             livelock class); release unconditionally before propagating",
                            acq.acquire, acq.line, acq.release,
                        ),
                        allowed: allow_of(&f.file, *line, Rule::ReleaseOnAllPaths),
                        symbol: Some(f.symbol_path()),
                    });
                }
            } else {
                // No in-body release: a resolved callee whose transitive
                // summary releases the resource discharges the leak
                // (release moved into a helper).
                let discharged = acq.calls_after.iter().any(|callee| {
                    crate::callgraph::resolve(&table, &stop, &f.krate, callee, None)
                        .iter()
                        .any(|&t| sums[t].releases.contains(&acq.release))
                });
                if !discharged {
                    findings.push(Finding {
                        rule: Rule::ReleaseOnAllPaths,
                        file: f.file.clone(),
                        line: acq.line,
                        message: format!(
                            "`{}()` is never released in this function (no `{}()` on any \
                             path, directly or via a resolved callee) — the resource \
                             stays acquired forever (frozen-shard livelock class)",
                            acq.acquire, acq.release,
                        ),
                        allowed: allow_of(&f.file, acq.line, Rule::ReleaseOnAllPaths),
                        symbol: Some(f.symbol_path()),
                    });
                }
            }
        }
    }

    // ---- atomic_publish ------------------------------------------------
    // Key by (crate, field): cross-crate fields with the same name are
    // unrelated atomics.
    let mut by_field: BTreeMap<(String, String), Vec<&AtomicAccess>> = BTreeMap::new();
    for a in atomics {
        by_field.entry((crate_of(&a.file), a.field.clone())).or_default().push(a);
    }
    for ((_, field), accesses) in &by_field {
        let acquire_load = accesses
            .iter()
            .find(|a| !a.is_store && a.ordering >= AtomicOrd::RelAcq);
        let Some(al) = acquire_load else { continue };
        for a in accesses {
            if !a.is_store
                || a.ordering != AtomicOrd::Relaxed
                || sanctioned(&cfg.atomic_sanctioned_paths, &a.file)
            {
                continue;
            }
            findings.push(Finding {
                rule: Rule::AtomicPublish,
                file: a.file.clone(),
                line: a.line,
                message: format!(
                    "Relaxed store to atomic `{field}`, which is Acquire-loaded at \
                     {}:{} — publication without a Release store has no happens-before \
                     edge; readers can observe the flag without the data it guards",
                    al.file, al.line,
                ),
                allowed: allow_of(&a.file, a.line, Rule::AtomicPublish),
                symbol: enclosing_symbol(&table, &a.file, a.line),
            });
        }
    }

    // ---- interprocedural lock-order edges ------------------------------
    // A call made under guard contributes `held → callee-transitive-lock`
    // edges; cycles split across functions then surface in the same
    // graph pass as intraprocedural ones.
    let mut seen: HashSet<(String, String, String, u32)> = HashSet::new();
    for (i, f) in table.fns.iter().enumerate() {
        for (c, call) in f.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            for &t in &graph.targets[i][c] {
                if t == i {
                    continue;
                }
                for lock in &sums[t].locks {
                    for held in &call.held {
                        if held == lock {
                            continue;
                        }
                        if !seen.insert((held.clone(), lock.clone(), f.file.clone(), call.line))
                        {
                            continue;
                        }
                        edges.push(LockEdge {
                            from: held.clone(),
                            to: lock.clone(),
                            file: f.file.clone(),
                            line: call.line,
                            allowed: allow_of(&f.file, call.line, Rule::LockOrder),
                            via: Some(call.callee.clone()),
                        });
                    }
                }
            }
        }
    }

    (findings, edges)
}

/// Symbol path of the function enclosing `line` in `file`, if any.
fn enclosing_symbol(table: &SymbolTable, file: &str, line: u32) -> Option<String> {
    table
        .fns
        .iter()
        .filter(|f| f.file == file && f.line <= line)
        .max_by_key(|f| f.line)
        .map(|f| f.symbol_path())
}
