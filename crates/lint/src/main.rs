//! `polarlint` CLI.
//!
//! Usage: `polarlint [--workspace] [--root <dir>] [--format text|json]
//!         [--report <path>] [--json-report <path>]`
//!
//! Exits 1 when the workspace has unjustified findings or lock-order
//! cycles; the report in the selected `--format` goes to stdout. With
//! `--report` the text report is also written to a file, and with
//! `--json-report` the machine-readable report (stable versioned
//! schema, see `LintReport::render_json`) is written alongside it — CI
//! archives both as artifacts.

use polardbx_lint::{lint_workspace, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut json_report_path: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // --workspace is the (only) mode; accepted for readability.
            "--workspace" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--json-report" => json_report_path = args.next().map(PathBuf::from),
            "--format" => {
                format = args.next().unwrap_or_default();
                if format != "text" && format != "json" {
                    eprintln!("polarlint: --format must be 'text' or 'json'");
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "polarlint [--workspace] [--root <dir>] [--format text|json] \
                     [--report <path>] [--json-report <path>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("polarlint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let cfg = LintConfig::default();
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("polarlint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, report.render()) {
            eprintln!("polarlint: failed to write report {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = json_report_path {
        if let Err(e) = std::fs::write(&p, report.render_json()) {
            eprintln!("polarlint: failed to write json report {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from CWD until a directory containing `Cargo.toml` with a
/// `[workspace]` table is found; fall back to CWD.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
