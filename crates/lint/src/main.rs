//! `polarlint` CLI.
//!
//! Usage: `polarlint [--workspace] [--root <dir>] [--report <path>]`
//!
//! Exits 1 when the workspace has unjustified findings or lock-order
//! cycles; the rendered report goes to stdout and, with `--report`, to
//! the given file (CI archives it as an artifact).

use polardbx_lint::{lint_workspace, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // --workspace is the (only) mode; accepted for readability.
            "--workspace" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("polarlint [--workspace] [--root <dir>] [--report <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("polarlint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let cfg = LintConfig::default();
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("polarlint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = report.render();
    print!("{rendered}");
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, &rendered) {
            eprintln!("polarlint: failed to write report {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from CWD until a directory containing `Cargo.toml` with a
/// `[workspace]` table is found; fall back to CWD.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
