//! Direct-call graph over the workspace symbol table.
//!
//! Resolution is name-based (no type inference) with three precision
//! levers that keep the graph honest instead of exploding it:
//!
//! 1. **Stoplist** — generic method names (`new`, `get`, `insert`,
//!    `clone`, `commit`, …) resolve to dozens of unrelated functions;
//!    calls to them are left unresolved rather than smeared across the
//!    workspace. The interprocedural rules are written so their
//!    *markers* (e.g. `WireWriteOp` at a write site) sit in the caller's
//!    own body and survive the stoplist.
//! 2. **Qualifier narrowing** — a path-form call `Type::name(…)` only
//!    resolves to functions inside `impl Type` / `trait Type` blocks.
//! 3. **Same-crate preference + ambiguity cap** — an unqualified call
//!    prefers candidates in the caller's crate; if more than
//!    [`MAX_CANDIDATES`] remain it is treated as unresolved (a shadowed
//!    symbol too ambiguous to follow is worse than no edge at all).

use crate::symbols::SymbolTable;
use std::collections::HashSet;

/// Calls to these names are never resolved — the names are too generic
/// for name-based resolution to mean anything.
pub const STOPLIST: &[&str] = &[
    // std-ish constructors/accessors
    "new", "default", "clone", "from", "into", "as_ref", "as_mut", "to_vec",
    "to_string", "to_owned", "len", "is_empty", "clear", "contains",
    "contains_key", "get", "get_mut", "set", "take", "replace", "push",
    "pop", "insert", "remove", "entry", "keys", "values", "iter",
    "iter_mut", "into_iter", "next", "map", "and_then", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "ok_or", "ok_or_else", "unwrap",
    "expect", "min", "max", "abs", "raw", "fmt", "eq", "cmp", "hash",
    "drop", "extend", "drain", "split", "join", "parse", "format",
    // `x.with(|v| …)` is the thread-local / FnOnce-accessor idiom; `alloc`
    // is usually a closure parameter or the GlobalAlloc shim. Resolving
    // either by name fuses unrelated lock domains into one summary.
    "with", "alloc",
    // concurrency primitives the per-file rules already model
    "lock", "read", "write", "store", "load", "swap", "send", "recv",
    "wait", "notify_all", "notify_one", "spawn", "sleep", "yield_now",
    // protocol verbs implemented by many types; resolving them by name
    // would fuse unrelated state machines into one call graph
    "begin", "commit", "abort", "apply", "flush", "run", "start", "stop",
    "tick", "step", "handle", "execute", "scan", "encode", "decode",
    "name", "id", "now", "eval", "reset", "snapshot", "observe", "record",
];

/// Unqualified calls resolving to more candidates than this (after the
/// same-crate filter) are treated as unresolved.
pub const MAX_CANDIDATES: usize = 4;

/// The resolved call graph: per function, per call site, the symbol ids
/// the call may target (empty = unresolved).
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `targets[f][c]` = resolved callee ids for call site `c` of fn `f`.
    pub targets: Vec<Vec<Vec<usize>>>,
}

impl CallGraph {
    /// Resolve every call site in the table.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let stop: HashSet<&str> = STOPLIST.iter().copied().collect();
        let mut targets = Vec::with_capacity(table.fns.len());
        for f in &table.fns {
            let mut per_call = Vec::with_capacity(f.calls.len());
            for c in &f.calls {
                per_call.push(resolve(table, &stop, &f.krate, &c.callee, c.qual.as_deref()));
            }
            targets.push(per_call);
        }
        CallGraph { targets }
    }

    /// Flat callee set of one function (union over its call sites).
    pub fn callees(&self, f: usize) -> impl Iterator<Item = usize> + '_ {
        self.targets[f].iter().flatten().copied()
    }
}

/// Resolve one call. Public for the fixture tests.
pub fn resolve(
    table: &SymbolTable,
    stop: &HashSet<&str>,
    caller_crate: &str,
    callee: &str,
    qual: Option<&str>,
) -> Vec<usize> {
    if stop.contains(callee) {
        return Vec::new();
    }
    let cands = table.candidates(callee);
    if cands.is_empty() {
        return Vec::new();
    }
    // A `Type::name` qualifier pins the impl block.
    if let Some(q) = qual {
        let narrowed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| table.fns[i].impl_ty.as_deref() == Some(q))
            .collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
        // Qualifier names a type we never saw an impl for (std type,
        // trait object) — leave unresolved rather than guessing.
        return Vec::new();
    }
    // Same-crate candidates shadow foreign ones.
    let local: Vec<usize> =
        cands.iter().copied().filter(|&i| table.fns[i].krate == caller_crate).collect();
    let pool = if local.is_empty() { cands.to_vec() } else { local };
    if pool.len() > MAX_CANDIDATES {
        return Vec::new();
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{fn_info, SymbolTable};

    fn stop() -> HashSet<&'static str> {
        STOPLIST.iter().copied().collect()
    }

    #[test]
    fn stoplisted_and_unknown_names_stay_unresolved() {
        let t = SymbolTable::build(vec![fn_info("insert", "crates/core/src/a.rs")]);
        assert!(resolve(&t, &stop(), "core", "insert", None).is_empty());
        assert!(resolve(&t, &stop(), "core", "missing", None).is_empty());
    }

    #[test]
    fn same_crate_candidates_shadow_foreign_ones() {
        let t = SymbolTable::build(vec![
            fn_info("helper", "crates/wal/src/a.rs"),
            fn_info("helper", "crates/txn/src/b.rs"),
        ]);
        let r = resolve(&t, &stop(), "wal", "helper", None);
        assert_eq!(r, vec![0], "wal's call must bind wal's helper only");
        // A third crate sees both and keeps both (under the cap).
        let r = resolve(&t, &stop(), "core", "helper", None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn qualifier_narrows_to_the_named_impl() {
        let mut a = fn_info("flush_all", "crates/storage/src/pool.rs");
        a.impl_ty = Some("BufferPool".into());
        let mut b = fn_info("flush_all", "crates/wal/src/sink.rs");
        b.impl_ty = Some("VecSink".into());
        let t = SymbolTable::build(vec![a, b]);
        let r = resolve(&t, &stop(), "core", "flush_all", Some("BufferPool"));
        assert_eq!(r, vec![0]);
        // Unknown qualifier: unresolved, not a guess.
        assert!(resolve(&t, &stop(), "core", "flush_all", Some("File")).is_empty());
    }

    #[test]
    fn ambiguous_fanout_is_capped() {
        let fns: Vec<_> = (0..MAX_CANDIDATES + 1)
            .map(|i| fn_info("calc", &format!("crates/c{i}/src/lib.rs")))
            .collect();
        let t = SymbolTable::build(fns);
        assert!(resolve(&t, &stop(), "other", "calc", None).is_empty());
    }
}
