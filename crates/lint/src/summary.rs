//! Per-function summaries propagated across the call graph.
//!
//! Each function gets a [`Summary`] seeded from its own body facts
//! (locks it acquires, whether it reaches a shard write, which
//! resources it releases) and widened to a fixpoint by unioning the
//! summaries of every resolved callee — Eraser-style lockset flow, but
//! computed statically over the direct-call graph. The fixpoint is
//! bounded ([`MAX_ROUNDS`]) purely as a backstop; the workspace
//! converges in a handful of rounds because the sets are tiny.

use crate::callgraph::CallGraph;
use crate::symbols::SymbolTable;
use std::collections::BTreeSet;

/// Transitive facts of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Locks acquired by this function or anything it (transitively)
    /// calls through resolved edges.
    pub locks: BTreeSet<String>,
    /// True when a shard write (a `WireWriteOp` site or configured
    /// write call) is reachable.
    pub reaches_write: bool,
    /// Resource release method names reachable (for discharging
    /// `release_on_all_paths` leaks whose release moved into a helper).
    pub releases: BTreeSet<String>,
}

/// Fixpoint iteration bound (depth of call-chain propagation).
pub const MAX_ROUNDS: usize = 20;

/// Compute all summaries to fixpoint.
pub fn compute(table: &SymbolTable, graph: &CallGraph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = table
        .fns
        .iter()
        .map(|f| Summary {
            locks: f.locks.iter().cloned().collect(),
            reaches_write: f.direct_write,
            releases: f.releases.iter().cloned().collect(),
        })
        .collect();
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for i in 0..sums.len() {
            // Union every resolved callee's summary into ours.
            let mut add_locks: Vec<String> = Vec::new();
            let mut add_rel: Vec<String> = Vec::new();
            let mut write = sums[i].reaches_write;
            for c in graph.callees(i) {
                if c == i {
                    continue;
                }
                for l in &sums[c].locks {
                    if !sums[i].locks.contains(l) {
                        add_locks.push(l.clone());
                    }
                }
                for r in &sums[c].releases {
                    if !sums[i].releases.contains(r) {
                        add_rel.push(r.clone());
                    }
                }
                write |= sums[c].reaches_write;
            }
            if !add_locks.is_empty() || !add_rel.is_empty() || write != sums[i].reaches_write
            {
                changed = true;
                sums[i].locks.extend(add_locks);
                sums[i].releases.extend(add_rel);
                sums[i].reaches_write = write;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{fn_info, CallSite, SymbolTable};

    fn call(name: &str) -> CallSite {
        CallSite { callee: name.into(), qual: None, held: Vec::new(), line: 1 }
    }

    #[test]
    fn facts_flow_up_a_call_chain() {
        // a -> b -> c; c locks and writes.
        let mut a = fn_info("a", "crates/core/src/x.rs");
        a.calls.push(call("b"));
        let mut b = fn_info("b", "crates/core/src/x.rs");
        b.calls.push(call("c"));
        let mut c = fn_info("c", "crates/core/src/x.rs");
        c.locks.push("core::deep".into());
        c.direct_write = true;
        c.releases.push("unfreeze_writes".into());
        let t = SymbolTable::build(vec![a, b, c]);
        let g = CallGraph::build(&t);
        let s = compute(&t, &g);
        assert!(s[0].reaches_write && s[1].reaches_write);
        assert!(s[0].locks.contains("core::deep"));
        assert!(s[0].releases.contains("unfreeze_writes"));
    }

    #[test]
    fn recursion_converges() {
        let mut a = fn_info("ping", "crates/core/src/x.rs");
        a.calls.push(call("pong"));
        a.locks.push("core::a".into());
        let mut b = fn_info("pong", "crates/core/src/x.rs");
        b.calls.push(call("ping"));
        b.locks.push("core::b".into());
        let t = SymbolTable::build(vec![a, b]);
        let g = CallGraph::build(&t);
        let s = compute(&t, &g);
        assert!(s[0].locks.contains("core::b") && s[1].locks.contains("core::a"));
    }

    #[test]
    fn unresolved_calls_propagate_nothing() {
        let mut a = fn_info("caller", "crates/core/src/x.rs");
        a.calls.push(call("insert")); // stoplisted
        let mut b = fn_info("insert", "crates/core/src/x.rs");
        b.direct_write = true;
        let t = SymbolTable::build(vec![a, b]);
        let g = CallGraph::build(&t);
        let s = compute(&t, &g);
        assert!(!s[0].reaches_write, "stoplisted call must not smear facts");
    }
}
