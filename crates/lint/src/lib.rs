//! polarlint — workspace invariant linter for the PolarDB-X repro.
//!
//! Dependency-free static analysis over every workspace `.rs` file:
//! a hand-rolled tokenizer feeds per-file rule passes ([`analysis`])
//! that also extract per-function symbols and facts; a workspace
//! interprocedural pass ([`symbols`] + [`callgraph`] + [`summary`])
//! propagates them across direct calls for the fence/release/atomic
//! rules, and all lock-order edges — intra- and interprocedural — are
//! stitched into a cross-crate acquisition graph checked for cycles
//! ([`graph`]). See DESIGN.md "Correctness tooling" for the rule
//! catalogue and escape hatch.

pub mod analysis;
pub mod callgraph;
pub mod graph;
pub mod summary;
pub mod symbols;
pub mod tokenizer;

use analysis::{analyze_source, workspace_pass, Config, Finding, LockEdge};
use graph::{find_cycles, Cycle};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Full workspace lint result.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Per-line findings (allowed and not).
    pub findings: Vec<Finding>,
    /// All lock-order edges observed (for the report appendix).
    pub edges: Vec<LockEdge>,
    /// Acquisition-graph cycles (always unjustified by construction).
    pub cycles: Vec<Cycle>,
    /// Number of files analyzed.
    pub files: usize,
}

impl LintReport {
    /// Findings not covered by a well-formed `lint:allow`.
    pub fn unjustified(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none()).collect()
    }

    /// True when the workspace passes: no unjustified findings, no cycles.
    pub fn clean(&self) -> bool {
        self.unjustified().is_empty() && self.cycles.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let unjust = self.unjustified();
        let _ = writeln!(
            s,
            "polarlint: {} files, {} findings ({} unjustified), {} lock-order edges, {} cycles",
            self.files,
            self.findings.len(),
            unjust.len(),
            self.edges.len(),
            self.cycles.len()
        );
        if !unjust.is_empty() {
            let _ = writeln!(s, "\n== unjustified findings ==");
            for f in &unjust {
                let _ = writeln!(s, "  [{}] {}:{} {}", f.rule.name(), f.file, f.line, f.message);
            }
        }
        if !self.cycles.is_empty() {
            let _ = writeln!(s, "\n== lock-order cycles (potential ABBA deadlocks) ==");
            for c in &self.cycles {
                let _ = writeln!(s, "  cycle: {}", c.nodes.join(" -> "));
                for e in &c.edges {
                    let _ = writeln!(
                        s,
                        "    {} -> {} at {}:{}",
                        e.from, e.to, e.file, e.line
                    );
                }
            }
        }
        let justified: Vec<&Finding> =
            self.findings.iter().filter(|f| f.allowed.is_some()).collect();
        if !justified.is_empty() {
            let _ = writeln!(s, "\n== justified exceptions ==");
            for f in &justified {
                let _ = writeln!(
                    s,
                    "  [{}] {}:{} — {}",
                    f.rule.name(),
                    f.file,
                    f.line,
                    f.allowed.as_deref().unwrap_or("")
                );
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(s, "\n== acquisition order (held -> acquired) ==");
            let mut shown: Vec<String> = self
                .edges
                .iter()
                .map(|e| {
                    format!(
                        "  {} -> {}{}{}",
                        e.from,
                        e.to,
                        e.via.as_deref().map(|v| format!("  (via {v})")).unwrap_or_default(),
                        if e.allowed.is_some() { "  (allowed)" } else { "" }
                    )
                })
                .collect();
            shown.sort();
            shown.dedup();
            for line in shown {
                let _ = writeln!(s, "{line}");
            }
        }
        s
    }

    /// Render the machine-readable report. The schema is stable and
    /// versioned: bump `version` on any breaking change so downstream
    /// tooling (CI artifact consumers) can branch on it.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(
            s,
            "  \"rules\": [{}],",
            analysis::Rule::all_names()
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(s, "  \"files\": {},", self.files);
        let _ = writeln!(s, "  \"clean\": {},", self.clean());
        let _ = writeln!(
            s,
            "  \"summary\": {{\"findings\": {}, \"unjustified\": {}, \"edges\": {}, \"cycles\": {}}},",
            self.findings.len(),
            self.unjustified().len(),
            self.edges.len(),
            self.cycles.len()
        );
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"symbol\": {}, \
                 \"message\": {}, \"justification\": {}}}",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                f.symbol.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
                json_str(&f.message),
                f.allowed.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
            );
            s.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"cycles\": [\n");
        for (i, c) in self.cycles.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"nodes\": [{}], \"edges\": [{}]}}",
                c.nodes.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", "),
                c.edges
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"via\": {}}}",
                            json_str(&e.from),
                            json_str(&e.to),
                            json_str(&e.file),
                            e.line,
                            e.via.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            s.push_str(if i + 1 < self.cycles.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string encoder (no serde — zero-dep philosophy).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint a set of `(path, source)` pairs. Paths are repo-relative.
pub fn lint_sources<'a, I>(sources: I, cfg: &Config) -> LintReport
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut report = LintReport::default();
    let mut fns = Vec::new();
    let mut atomics = Vec::new();
    let mut allow_maps = HashMap::new();
    for (path, src) in sources {
        let fa = analyze_source(path, src, cfg);
        report.findings.extend(fa.findings);
        report.edges.extend(fa.edges);
        fns.extend(fa.fns);
        atomics.extend(fa.atomics);
        if !fa.allow_map.is_empty() {
            allow_maps.insert(path.to_string(), fa.allow_map);
        }
        report.files += 1;
    }
    // Workspace interprocedural pass: fence/release/atomic findings plus
    // held-lock edges flowing across resolved calls.
    let (ip_findings, ip_edges) = workspace_pass(cfg, fns, &atomics, &allow_maps);
    report.findings.extend(ip_findings);
    report.edges.extend(ip_edges);
    // Rule findings for every self-edge already exist; cycles come from
    // the cross-file graph (intra- and interprocedural edges together).
    report.cycles = find_cycles(&report.edges);
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    report
}

/// Recursively collect workspace `.rs` files under `root`, skipping
/// `target/`, hidden dirs, and the lint fixtures (they are deliberately
/// bad).
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else { continue };
        for entry in rd.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Lint every `.rs` file under the workspace root.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let files = workspace_rs_files(root);
    let mut owned: Vec<(String, String)> = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&f)?;
        owned.push((rel, src));
    }
    Ok(lint_sources(owned.iter().map(|(p, s)| (p.as_str(), s.as_str())), cfg))
}

pub use analysis::{Config as LintConfig, Rule as LintRule};
