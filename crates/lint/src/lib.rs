//! polarlint — workspace invariant linter for the PolarDB-X repro.
//!
//! Dependency-free static analysis over every workspace `.rs` file:
//! a hand-rolled tokenizer feeds per-file rule passes
//! ([`analysis`]) whose lock-order edges are stitched into a cross-crate
//! acquisition graph checked for cycles ([`graph`]). See DESIGN.md
//! "Correctness tooling" for the rule catalogue and escape hatch.

pub mod analysis;
pub mod graph;
pub mod tokenizer;

use analysis::{analyze_source, Config, Finding, LockEdge};
use graph::{find_cycles, Cycle};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Full workspace lint result.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Per-line findings (allowed and not).
    pub findings: Vec<Finding>,
    /// All lock-order edges observed (for the report appendix).
    pub edges: Vec<LockEdge>,
    /// Acquisition-graph cycles (always unjustified by construction).
    pub cycles: Vec<Cycle>,
    /// Number of files analyzed.
    pub files: usize,
}

impl LintReport {
    /// Findings not covered by a well-formed `lint:allow`.
    pub fn unjustified(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none()).collect()
    }

    /// True when the workspace passes: no unjustified findings, no cycles.
    pub fn clean(&self) -> bool {
        self.unjustified().is_empty() && self.cycles.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let unjust = self.unjustified();
        let _ = writeln!(
            s,
            "polarlint: {} files, {} findings ({} unjustified), {} lock-order edges, {} cycles",
            self.files,
            self.findings.len(),
            unjust.len(),
            self.edges.len(),
            self.cycles.len()
        );
        if !unjust.is_empty() {
            let _ = writeln!(s, "\n== unjustified findings ==");
            for f in &unjust {
                let _ = writeln!(s, "  [{}] {}:{} {}", f.rule.name(), f.file, f.line, f.message);
            }
        }
        if !self.cycles.is_empty() {
            let _ = writeln!(s, "\n== lock-order cycles (potential ABBA deadlocks) ==");
            for c in &self.cycles {
                let _ = writeln!(s, "  cycle: {}", c.nodes.join(" -> "));
                for e in &c.edges {
                    let _ = writeln!(
                        s,
                        "    {} -> {} at {}:{}",
                        e.from, e.to, e.file, e.line
                    );
                }
            }
        }
        let justified: Vec<&Finding> =
            self.findings.iter().filter(|f| f.allowed.is_some()).collect();
        if !justified.is_empty() {
            let _ = writeln!(s, "\n== justified exceptions ==");
            for f in &justified {
                let _ = writeln!(
                    s,
                    "  [{}] {}:{} — {}",
                    f.rule.name(),
                    f.file,
                    f.line,
                    f.allowed.as_deref().unwrap_or("")
                );
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(s, "\n== acquisition order (held -> acquired) ==");
            let mut shown: Vec<String> = self
                .edges
                .iter()
                .map(|e| format!("  {} -> {}{}", e.from, e.to, if e.allowed.is_some() { "  (allowed)" } else { "" }))
                .collect();
            shown.sort();
            shown.dedup();
            for line in shown {
                let _ = writeln!(s, "{line}");
            }
        }
        s
    }
}

/// Lint a set of `(path, source)` pairs. Paths are repo-relative.
pub fn lint_sources<'a, I>(sources: I, cfg: &Config) -> LintReport
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut report = LintReport::default();
    for (path, src) in sources {
        let fa = analyze_source(path, src, cfg);
        report.findings.extend(fa.findings);
        report.edges.extend(fa.edges);
        report.files += 1;
    }
    // Rule findings for every self-edge already exist; cycles come from
    // the cross-file graph.
    report.cycles = find_cycles(&report.edges);
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    report
}

/// Recursively collect workspace `.rs` files under `root`, skipping
/// `target/`, hidden dirs, and the lint fixtures (they are deliberately
/// bad).
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else { continue };
        for entry in rd.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Lint every `.rs` file under the workspace root.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let files = workspace_rs_files(root);
    let mut owned: Vec<(String, String)> = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&f)?;
        owned.push((rel, src));
    }
    Ok(lint_sources(owned.iter().map(|(p, s)| (p.as_str(), s.as_str())), cfg))
}

pub use analysis::{Config as LintConfig, Rule as LintRule};
