//! Workspace symbol table: every function definition, with its enclosing
//! `impl`/`trait` context, module path, and the per-function facts the
//! interprocedural analyses consume ([`FnInfo`]).
//!
//! The table is name-indexed, not type-resolved — polarlint has no rustc
//! and never will (same zero-dep philosophy as the tokenizer). Method
//! calls resolve by bare name with two precision levers applied by
//! [`crate::callgraph`]: an explicit `Type::name` qualifier narrows to
//! matching `impl` blocks, and unqualified calls prefer same-crate
//! candidates. Shadowed symbols (the same name defined in several
//! crates) therefore stay apart unless a call is genuinely ambiguous.

use crate::analysis::crate_of;

/// One call site inside a function body, with the lock context it runs
/// under — the raw material for interprocedural lock-order and summary
/// propagation.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`flush_tenant`, `write_gsi_row`, …).
    pub callee: String,
    /// `Type::callee` qualifier when the call is path-form; narrows
    /// resolution to `impl Type` methods.
    pub qual: Option<String>,
    /// Lock node names held when the call is made (crate-qualified, same
    /// namespace as [`crate::analysis::LockEdge`]).
    pub held: Vec<String>,
    /// 1-based line of the call.
    pub line: u32,
}

/// A resource acquisition (`freeze_writes`, `epochs.freeze`, …) found in
/// a function body, with what the exit-path scan saw between it and its
/// release (see the `release_on_all_paths` rule).
#[derive(Debug, Clone)]
pub struct ResourceAcq {
    /// The acquire method name (also the finding's resource label).
    pub acquire: String,
    /// The matching release method name.
    pub release: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// True when a matching release call exists later in the same body.
    pub released_in_body: bool,
    /// Lines of `?` / `return` exits between the acquisition and its
    /// in-body release (empty when `released_in_body` is false — the
    /// leak finding dominates).
    pub leaky_exits: Vec<(u32, &'static str)>,
    /// Bare names of functions called after the acquisition — a callee
    /// whose transitive summary releases the resource discharges the
    /// leak (release moved into a helper).
    pub calls_after: Vec<String>,
}

/// One atomic access (`.store`/`.load`/`fetch_*`/`swap`/`compare_exchange`)
/// with its receiver field name and the strongest `Ordering` it names.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// Last receiver segment (`watermark`, `applied`, `key`, …).
    pub field: String,
    /// True for stores and read-modify-writes; false for plain loads.
    pub is_store: bool,
    /// Strongest ordering named in the call arguments.
    pub ordering: AtomicOrd,
    /// Repo-relative file (filled by the workspace pass).
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Ordering strength lattice for [`AtomicAccess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomicOrd {
    /// `Ordering::Relaxed` (or no ordering ident found).
    Relaxed,
    /// `Release` or `Acquire`.
    RelAcq,
    /// `AcqRel`.
    AcqRel,
    /// `SeqCst`.
    SeqCst,
}

impl AtomicOrd {
    /// Parse one ordering identifier.
    pub fn from_ident(s: &str) -> Option<AtomicOrd> {
        match s {
            "Relaxed" => Some(AtomicOrd::Relaxed),
            "Release" | "Acquire" => Some(AtomicOrd::RelAcq),
            "AcqRel" => Some(AtomicOrd::AcqRel),
            "SeqCst" => Some(AtomicOrd::SeqCst),
            _ => None,
        }
    }
}

/// Everything the workspace pass knows about one function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl Type` / `trait Type` name, if any.
    pub impl_ty: Option<String>,
    /// Repo-relative file.
    pub file: String,
    /// Owning crate (`crate_of(file)`).
    pub krate: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Lock node names acquired anywhere in the body (deduped).
    pub locks: Vec<String>,
    /// True when the body reaches a shard write directly (it names
    /// `WireWriteOp` or one of the configured write calls).
    pub direct_write: bool,
    /// Bare (unfenced) routing calls: `(name, line)`.
    pub bare_routes: Vec<(String, u32)>,
    /// Resource acquisitions found in the body.
    pub acquisitions: Vec<ResourceAcq>,
    /// Resource release method names called in the body (deduped).
    pub releases: Vec<String>,
}

impl FnInfo {
    /// `crate::module::Type::name` display path for reports and JSON.
    pub fn symbol_path(&self) -> String {
        let module = module_of(&self.file);
        match &self.impl_ty {
            Some(t) => format!("{}::{}::{}::{}", self.krate, module, t, self.name),
            None => format!("{}::{}::{}", self.krate, module, self.name),
        }
    }
}

/// Module name a repo-relative path maps to (`crates/core/src/cluster.rs`
/// → `cluster`; `lib.rs`/`main.rs`/`mod.rs` use the parent directory).
pub fn module_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    let stem = p.rsplit('/').next().unwrap_or(&p).trim_end_matches(".rs");
    if stem == "lib" || stem == "main" || stem == "mod" {
        let mut parts: Vec<&str> = p.split('/').collect();
        parts.pop();
        while let Some(last) = parts.last() {
            if *last == "src" || *last == "bin" {
                parts.pop();
            } else {
                return (*last).to_string();
            }
        }
        "root".to_string()
    } else {
        stem.to_string()
    }
}

/// The workspace symbol table: all functions, name-indexed.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All functions, in file order.
    pub fns: Vec<FnInfo>,
    /// Bare name → indices into `fns`.
    pub by_name: std::collections::HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build the table from per-file extractions.
    pub fn build(fns: Vec<FnInfo>) -> SymbolTable {
        let mut by_name: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        SymbolTable { fns, by_name }
    }

    /// Candidates for a bare name.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Convenience constructor used by tests.
pub fn fn_info(name: &str, file: &str) -> FnInfo {
    FnInfo {
        name: name.to_string(),
        impl_ty: None,
        file: file.to_string(),
        krate: crate_of(file),
        line: 1,
        calls: Vec::new(),
        locks: Vec::new(),
        direct_write: false,
        bare_routes: Vec::new(),
        acquisitions: Vec::new(),
        releases: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_names_prefer_file_stem_then_parent_dir() {
        assert_eq!(module_of("crates/core/src/cluster.rs"), "cluster");
        assert_eq!(module_of("crates/core/src/lib.rs"), "core");
        assert_eq!(module_of("crates/bench/src/bin/main.rs"), "bench");
        assert_eq!(module_of("src/lib.rs"), "root");
    }

    #[test]
    fn symbol_paths_carry_impl_context() {
        let mut f = fn_info("insert", "crates/core/src/cluster.rs");
        f.impl_ty = Some("Session".into());
        assert_eq!(f.symbol_path(), "core::cluster::Session::insert");
        let g = fn_info("route_row", "crates/core/src/gms.rs");
        assert_eq!(g.symbol_path(), "core::gms::route_row");
    }

    #[test]
    fn table_indexes_shadowed_names_separately() {
        let t = SymbolTable::build(vec![
            fn_info("helper", "crates/wal/src/a.rs"),
            fn_info("helper", "crates/txn/src/b.rs"),
            fn_info("other", "crates/wal/src/a.rs"),
        ]);
        assert_eq!(t.candidates("helper").len(), 2);
        assert_eq!(t.candidates("other").len(), 1);
        assert!(t.candidates("missing").is_empty());
    }
}
