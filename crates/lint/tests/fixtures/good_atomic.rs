//! Known-good twin of `bad_atomic.rs`: Release/Acquire publication, a
//! counter relaxed on both sides, and a non-atomic `.store(value)` cache
//! setter (no `Ordering` argument). Stays silent.

pub struct Gate {
    slots: Mutex<Vec<Arc<Table>>>,
    watermark: AtomicU64,
    hits: AtomicU64,
    cached: TableCache,
}

impl Gate {
    /// Proper publication: Release store pairs with the Acquire load.
    pub fn publish(&self, table: Arc<Table>, seq: u64) {
        self.slots.lock().push(table);
        self.watermark.store(seq, Ordering::Release);
    }

    pub fn visible_up_to(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// A stats counter relaxed on both sides publishes nothing.
    pub fn bump(&self) {
        let n = self.hits.load(Ordering::Relaxed);
        self.hits.store(n + 1, Ordering::Relaxed);
    }

    /// Not an atomic at all: `.store(value)` with no `Ordering` ident is
    /// a cache setter and must not be classified.
    pub fn remember(&self, t: Table) {
        self.cached.store(t);
    }
}
