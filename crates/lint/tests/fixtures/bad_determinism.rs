// Fixture: ambient time and randomness — each site must fire determinism.

pub fn wall_clock_deadline() -> std::time::Instant {
    std::time::Instant::now() + std::time::Duration::from_secs(1)
}

pub fn system_time() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

pub fn ambient_rng() -> u64 {
    use rand::Rng;
    rand::thread_rng().gen_range(0..10)
}
