// Fixture: a live guard spans blocking calls — each shape must fire
// guard_blocking.

pub fn sleep_under_guard(state: &parking_lot::Mutex<u64>) {
    let g = state.lock();
    std::thread::sleep(std::time::Duration::from_millis(1));
    drop(g);
}

pub fn send_under_guard(
    state: &parking_lot::Mutex<u64>,
    tx: &crossbeam::channel::Sender<u64>,
) {
    let g = state.lock();
    tx.send(*g).unwrap();
}

pub fn nested_same_lock(state: &parking_lot::Mutex<u64>) -> u64 {
    let outer = state.lock();
    let inner = state.lock();
    *outer + *inner
}
