//! Known-good twin of `bad_interproc_lock.rs`: both paths acquire in
//! the same alpha → beta order, so the interprocedural edges form a DAG
//! and no cycle is reported.

pub struct Registry {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Registry {
    pub fn path_one(&self) {
        let g = self.alpha.lock();
        self.append_beta(g.len() as u64);
    }

    fn append_beta(&self, v: u64) {
        let mut h = self.beta.lock();
        h.push(v);
    }

    /// Same order as `path_one`: alpha first, beta in the callee.
    pub fn path_two(&self) {
        let g = self.alpha.lock();
        self.hop(g.len() as u64);
    }

    fn hop(&self, v: u64) {
        self.append_beta(v);
    }
}
