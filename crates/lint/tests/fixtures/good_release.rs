//! Known-good twin of `bad_release.rs`: the fixed cutover-closure shape
//! (every exit funnels through the unconditional unfreeze pair), a
//! release moved into a resolved helper, and a `Bytes::freeze`-style
//! call that is not a resource acquisition at all. Stays silent.

pub struct Cluster {
    epochs: Epochs,
    engine: Engine,
    buf: BytesMut,
}

impl Cluster {
    /// The PR-8 fix: the fallible body runs in a closure so success and
    /// every error path alike reach the unconditional releases below.
    pub fn rehome(&self, stid: TableId) -> Result<Duration> {
        self.epochs.freeze(stid);
        self.engine.freeze_writes(stid);
        let cutover = || -> Result<()> {
            if !self.epochs.drain(stid, DRAIN_LIMIT) {
                return Err(Error::Timeout);
            }
            self.engine.pool.flush_tenant(stid, None)?;
            self.detach_attach(stid)?;
            Ok(())
        };
        let result = cutover();
        self.engine.unfreeze_writes(stid);
        self.epochs.unfreeze(stid);
        result.map(|()| self.elapsed())
    }

    /// The release lives in a helper; the callee's summary discharges
    /// the acquisition.
    pub fn freeze_then_helper(&self, stid: TableId) {
        self.engine.freeze_writes(stid);
        self.finish_cutover(stid);
    }

    fn finish_cutover(&self, stid: TableId) {
        self.engine.unfreeze_writes(stid);
    }

    /// `Bytes`-style `freeze()` on a buffer is ownership transfer, not a
    /// resource acquisition — the receiver constraint keeps it out.
    pub fn seal(&mut self) -> Bytes {
        self.buf.freeze()
    }

    fn detach_attach(&self, _stid: TableId) -> Result<()> {
        Ok(())
    }
}
