// Fixture: known-good shapes — none of these may produce an unjustified
// finding.

pub struct State {
    st: parking_lot::Mutex<u64>,
    side: parking_lot::Mutex<u64>,
}

impl State {
    /// Guard explicitly dropped before blocking.
    pub fn drop_before_sleep(&self) {
        let g = self.st.lock();
        let snapshot = *g;
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(snapshot));
    }

    /// Chained access: the guard is a temporary that dies at the `;`.
    pub fn chained_temporary(&self, tx: &crossbeam::channel::Sender<u64>) {
        let v = *self.st.lock();
        tx.send(v).ok();
    }

    /// The group-commit shape: drop, do I/O, re-lock the same binding.
    pub fn drop_flush_relock(&self, tx: &crossbeam::channel::Sender<u64>) {
        let mut st = self.st.lock();
        *st += 1;
        drop(st);
        tx.send(1).ok();
        st = self.st.lock();
        *st += 1;
    }

    /// Consistent nesting order only ever st -> side: no cycle.
    pub fn consistent_order(&self) -> u64 {
        let a = self.st.lock();
        let b = self.side.lock();
        *a + *b
    }

    /// A justified exception keeps the finding but marks it allowed.
    pub fn justified_send(&self, tx: &crossbeam::channel::Sender<u64>) {
        let g = self.st.lock();
        // lint:allow(guard_blocking, "bounded channel has capacity 1 reserved for this guard")
        tx.send(*g).ok();
    }
}

/// If-condition guard temporaries die before the block body runs.
pub fn condition_temporary(st: &parking_lot::Mutex<u64>) {
    if *st.lock() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
