//! Known-bad: a `Relaxed` store publishing data that another function
//! `Acquire`-loads — no happens-before edge, so the reader can observe
//! the flag without the rows it guards. Must fire `atomic_publish`.

pub struct Gate {
    slots: Mutex<Vec<Arc<Table>>>,
    watermark: AtomicU64,
}

impl Gate {
    /// Publishes `table` then raises the watermark with `Relaxed` — the
    /// reader below has no ordering edge back to the push.
    pub fn publish(&self, table: Arc<Table>, seq: u64) {
        self.slots.lock().push(table);
        self.watermark.store(seq, Ordering::Relaxed);
    }

    /// Acquire side: pairs with a Release store that doesn't exist.
    pub fn visible_up_to(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }
}
