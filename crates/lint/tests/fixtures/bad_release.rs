//! Known-bad: resource acquisitions leaked on early-exit paths — the
//! exact PR-8 `flush_tenant?` freeze-leak shape. Every `?` between an
//! acquisition and its release, and a body that never releases at all,
//! must fire `release_on_all_paths`.

pub struct Cluster {
    epochs: Epochs,
    engine: Engine,
}

impl Cluster {
    /// The PR-8 bug verbatim: `flush_tenant(…)?` (and the detach below
    /// it) propagate errors while the shard is still frozen — every
    /// fenced route and commit then bounces retryably forever.
    pub fn rehome(&self, stid: TableId) -> Result<()> {
        self.epochs.freeze(stid);
        self.engine.freeze_writes(stid);
        self.engine.pool.flush_tenant(stid, None)?;
        self.detach_attach(stid)?;
        self.engine.unfreeze_writes(stid);
        self.epochs.unfreeze(stid);
        Ok(())
    }

    /// No release on any path, direct or via callee: a permanent freeze.
    pub fn freeze_forever(&self, stid: TableId) {
        self.engine.freeze_writes(stid);
        self.log_frozen(stid);
    }

    fn log_frozen(&self, _stid: TableId) {}

    fn detach_attach(&self, _stid: TableId) -> Result<()> {
        Ok(())
    }
}
