//! Fixture: heap allocations inside `// lint:hotpath` functions. Each
//! construct in `hot_commit` must fire `hotpath_alloc`; the identical
//! shapes in the unannotated `cold_setup` must stay quiet, and
//! `Arc::clone(&x)` is sanctioned in hot code.

use std::sync::Arc;

// lint:hotpath
pub fn hot_commit(buf: &mut Vec<u8>, key: &[u8], shared: &Arc<u64>) -> usize {
    let mut scratch = Vec::new(); // fires: Vec::new
    scratch.extend_from_slice(key);
    let copy = key.to_vec(); // fires: to_vec
    let boxed = Box::new(copy.len()); // fires: Box::new
    let tags = vec![1u8, 2, 3]; // fires: vec!
    let dup = buf.clone(); // fires: clone()
    let rc = Arc::clone(shared); // sanctioned: explicit refcount bump
    scratch.len() + *boxed + tags.len() + dup.len() + *rc as usize
}

pub fn cold_setup() -> Vec<u8> {
    // Not annotated: the same constructs are fine off the hot path.
    let mut v = Vec::new();
    v.extend_from_slice(&[1, 2, 3]);
    let w = v.to_vec();
    w.clone()
}

// lint:hotpath
pub fn hot_with_justified_refill(pool: &mut Vec<Vec<u8>>) {
    // lint:allow(hotpath_alloc, "pool refill runs once per era, not per commit")
    pool.push(Vec::new());
}
