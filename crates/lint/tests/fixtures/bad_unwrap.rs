// Fixture: panicking escalation in a protocol crate (linted as if it
// lived under crates/txn/). The test-gated unwrap must NOT fire.

pub fn unwrap_in_protocol(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn expect_in_protocol(x: Result<u64, String>) -> u64 {
    x.expect("must work")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
