//! Known-bad: bare routing calls in write-reaching functions — the PR-8
//! lost-update shape, reduced from `Session::insert` / the DML
//! dispatcher. Both the direct shape (bare route next to the shard
//! write) and the indirect one (bare route one call above the write)
//! must fire `fence_completeness`.

pub struct Session {
    gms: Gms,
    txn: Txn,
    schema: Schema,
}

impl Session {
    /// Direct: bare `route_row` in the same body as the `WireWriteOp`
    /// shard write. A re-home cutover between routing and commit strands
    /// this write on the detached old home.
    pub fn insert_row(&self, row: &Row) -> Result<()> {
        let (shard, dn) = self.gms.route_row(&self.schema, row)?;
        self.txn.write(dn, shard, key_of(row), WireWriteOp::Insert(row.clone()))
    }

    /// Indirect: the bare route sits one call above the write; write
    /// reachability must flow up through `insert_row`'s summary.
    pub fn run_statement(&self, row: &Row) -> Result<()> {
        let _dn = self.gms.shard_dn(self.schema.id, 0)?;
        self.insert_row(row)
    }
}
