//! Known-good twin of `bad_fence.rs`: fenced routes on the write path,
//! bare routes only where no write is reachable. Stays silent.

pub struct Session {
    gms: Gms,
    txn: Txn,
    schema: Schema,
}

impl Session {
    /// The fixed shape: the fenced route returns the routing epoch and
    /// the write carries it to the commit-time re-check.
    pub fn insert_row(&self, row: &Row) -> Result<()> {
        let (shard, dn, epoch) = self.gms.route_row_fenced(&self.schema, row)?;
        self.txn.write_at(dn, shard, epoch, key_of(row), WireWriteOp::Insert(row.clone()))
    }

    /// Read-only lookup: a bare route is fine when no shard write is
    /// reachable from this function.
    pub fn lookup_home(&self, row: &Row) -> Result<NodeId> {
        let (_shard, dn) = self.gms.route_row(&self.schema, row)?;
        Ok(dn)
    }
}
