//! Known-bad: an ABBA cycle split across functions — each function
//! nests at most one lock directly, so the per-file pass sees nothing;
//! only held-lock sets flowing across resolved calls (one of them two
//! levels deep) expose the cycle.

pub struct Registry {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Registry {
    /// alpha held, then beta acquired two calls down (alpha → hop →
    /// append_beta): the summary must carry beta up through `hop`.
    pub fn path_one(&self) {
        let g = self.alpha.lock();
        self.hop(g.len() as u64);
    }

    fn hop(&self, v: u64) {
        self.append_beta(v);
    }

    fn append_beta(&self, v: u64) {
        let mut h = self.beta.lock();
        h.push(v);
    }

    /// beta held, then alpha acquired in the callee: the opposite order.
    pub fn path_two(&self) {
        let h = self.beta.lock();
        self.append_alpha(h.len() as u64);
    }

    fn append_alpha(&self, v: u64) {
        let mut g = self.alpha.lock();
        g.push(v);
    }
}
