// Fixture: two functions acquire the same pair of locks in opposite
// orders — the cross-function graph must contain an a<->b cycle.

pub struct Pair {
    a: parking_lot::Mutex<u64>,
    b: parking_lot::Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *gb - *ga
    }
}
