// Fixture: visibility stamped before the durability ack (redo-ahead
// violation). `commit_wrong` must fire `durability_order`; `commit_right`
// and `replay_only` must stay clean.

pub fn commit_wrong(e: &Engine, trx: TrxId, commit_ts: u64, mtrs: &[Mtr]) -> Result<Lsn> {
    e.txns.commit(trx, commit_ts)?;
    e.store.commit(trx, commit_ts, &[]);
    let lsn = e.durability.make_durable(mtrs)?;
    Ok(lsn)
}

pub fn commit_right(e: &Engine, trx: TrxId, commit_ts: u64, mtrs: &[Mtr]) -> Result<Lsn> {
    let lsn = e.durability.make_durable(mtrs)?;
    e.txns.commit(trx, commit_ts)?;
    e.store.commit(trx, commit_ts, &[]);
    Ok(lsn)
}

// Replay stamps visibility for records that are durable by definition —
// no `make_durable` in the body, so the rule stays quiet.
pub fn replay_only(e: &Engine, trx: TrxId, commit_ts: u64) {
    e.txns.commit(trx, commit_ts).ok();
}
