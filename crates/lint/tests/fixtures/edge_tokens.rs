// Fixture: tokenizer traps. Every forbidden pattern below is inert —
// inside strings, raw strings, comments, or test code — so this file must
// lint clean. The lifetime-heavy function at the bottom must also parse
// without desync.

pub fn decoys_in_strings() -> Vec<String> {
    vec![
        "Instant::now()".to_string(),
        r#"SystemTime::now() and x.unwrap() live in a raw string"#.to_string(),
        r##"nested "# fence: thread_rng() stays inert"##.to_string(),
        String::from("let g = m.lock(); tx.send(g)"),
    ]
}

/* Block comment with a decoy: Instant::now()
   /* nested block comment: x.unwrap().expect("boom") */
   still inside the outer comment: rand::thread_rng()
*/

// Line comment decoy: SystemTime::now()

pub struct Holder<'a, T> {
    inner: &'a T,
}

pub fn lifetimes_and_chars<'x>(v: &'x [char]) -> Option<(&'x char, char)> {
    let escaped: char = '\'';
    let plain: char = 'q';
    let first: &'x char = v.first()?;
    let _ = escaped;
    Some((first, plain))
}

pub fn byte_oddities() -> (u8, &'static [u8]) {
    (b'\'', b"Instant::now() in a byte string")
}
