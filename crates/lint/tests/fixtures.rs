//! Fixture tests: known-bad snippets must fire each rule, known-good must
//! stay clean, and tokenizer traps must not desync the analysis. The
//! interprocedural rules (fence/release/atomic/cross-function lock order)
//! are exercised through [`lint_sources`], which runs the workspace pass.

use polardbx_lint::analysis::{analyze_source, Config, Rule};
use polardbx_lint::graph::find_cycles;
use polardbx_lint::lint_sources;

fn cfg() -> Config {
    Config::default()
}

const BAD_LOCK_ORDER: &str = include_str!("fixtures/bad_lock_order.rs");
const BAD_GUARD_BLOCKING: &str = include_str!("fixtures/bad_guard_blocking.rs");
const BAD_DETERMINISM: &str = include_str!("fixtures/bad_determinism.rs");
const BAD_UNWRAP: &str = include_str!("fixtures/bad_unwrap.rs");
const BAD_DURABILITY_ORDER: &str = include_str!("fixtures/bad_durability_order.rs");
const BAD_HOTPATH_ALLOC: &str = include_str!("fixtures/bad_hotpath_alloc.rs");
const GOOD_CLEAN: &str = include_str!("fixtures/good_clean.rs");
const EDGE_TOKENS: &str = include_str!("fixtures/edge_tokens.rs");
const BAD_FENCE: &str = include_str!("fixtures/bad_fence.rs");
const GOOD_FENCE: &str = include_str!("fixtures/good_fence.rs");
const BAD_RELEASE: &str = include_str!("fixtures/bad_release.rs");
const GOOD_RELEASE: &str = include_str!("fixtures/good_release.rs");
const BAD_ATOMIC: &str = include_str!("fixtures/bad_atomic.rs");
const GOOD_ATOMIC: &str = include_str!("fixtures/good_atomic.rs");
const BAD_INTERPROC: &str = include_str!("fixtures/bad_interproc_lock.rs");
const GOOD_INTERPROC: &str = include_str!("fixtures/good_interproc_lock.rs");

#[test]
fn opposite_nesting_orders_form_a_cycle() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_LOCK_ORDER, &cfg());
    assert!(
        fa.findings.iter().all(|f| f.rule != Rule::LockOrder),
        "distinct locks must not fire the self-nesting finding"
    );
    let cycles = find_cycles(&fa.edges);
    assert_eq!(cycles.len(), 1, "a<->b must be detected: {:?}", fa.edges);
    assert!(cycles[0].nodes.iter().any(|n| n.ends_with("::a")));
    assert!(cycles[0].nodes.iter().any(|n| n.ends_with("::b")));
}

#[test]
fn guard_across_blocking_fires_per_shape() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_GUARD_BLOCKING, &cfg());
    let blocking: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::GuardBlocking).collect();
    assert_eq!(blocking.len(), 2, "sleep + send: {:?}", fa.findings);
    assert!(blocking.iter().any(|f| f.message.contains("sleep")));
    assert!(blocking.iter().any(|f| f.message.contains("send")));
    let nested: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert_eq!(nested.len(), 1, "same-lock nesting: {:?}", fa.findings);
    assert!(nested[0].message.contains("nested acquisition"));
}

#[test]
fn determinism_fires_on_ambient_time_and_rng() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_DETERMINISM, &cfg());
    let det: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::Determinism).collect();
    assert_eq!(det.len(), 3, "{:?}", fa.findings);
    assert!(det.iter().any(|f| f.message.contains("Instant::now")));
    assert!(det.iter().any(|f| f.message.contains("SystemTime::now")));
    assert!(det.iter().any(|f| f.message.contains("thread_rng")));
}

#[test]
fn determinism_respects_the_allowlist() {
    let fa = analyze_source("crates/hlc/src/fixture.rs", BAD_DETERMINISM, &cfg());
    assert!(
        fa.findings.iter().all(|f| f.rule != Rule::Determinism),
        "hlc is the sanctioned clock source: {:?}",
        fa.findings
    );
}

#[test]
fn unwrap_fires_only_in_protocol_crates_and_not_in_tests() {
    let fa = analyze_source("crates/txn/src/fixture.rs", BAD_UNWRAP, &cfg());
    let unwraps: Vec<_> = fa.findings.iter().filter(|f| f.rule == Rule::Unwrap).collect();
    assert_eq!(unwraps.len(), 2, "unwrap + expect, test mod skipped: {:?}", fa.findings);

    let outside = analyze_source("crates/executor/src/fixture.rs", BAD_UNWRAP, &cfg());
    assert!(
        outside.findings.iter().all(|f| f.rule != Rule::Unwrap),
        "executor is not in the deny list"
    );
}

#[test]
fn durability_order_fires_on_visibility_before_ack() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_DURABILITY_ORDER, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::DurabilityOrder).collect();
    // `commit_wrong` stamps both the txn table and the version store
    // before make_durable; the correct and replay-only shapes stay quiet.
    assert_eq!(hits.len(), 2, "{:?}", fa.findings);
    assert!(hits.iter().any(|f| f.message.contains("txns.commit")));
    assert!(hits.iter().any(|f| f.message.contains("store.commit")));
    assert!(hits.iter().all(|f| f.line < 10), "only commit_wrong may fire: {hits:?}");
}

#[test]
fn durability_order_respects_allow() {
    let src = "pub fn f(e: &E) -> Result<Lsn> {\n\
               \x20   // lint:allow(durability_order, visibility is rolled back on flush failure)\n\
               \x20   e.txns.commit(t, ts)?;\n\
               \x20   e.durability.make_durable(m)\n}\n";
    let fa = analyze_source("crates/storage/src/fixture.rs", src, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::DurabilityOrder).collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].allowed.as_deref().unwrap().contains("rolled back"));
}

#[test]
fn hotpath_alloc_fires_only_in_annotated_functions() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_HOTPATH_ALLOC, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::HotpathAlloc).collect();
    let unjustified: Vec<_> = hits.iter().filter(|f| f.allowed.is_none()).collect();
    // hot_commit: Vec::new + to_vec + Box::new + vec! + clone = 5 findings;
    // cold_setup's identical constructs and Arc::clone stay quiet.
    assert_eq!(unjustified.len(), 5, "{:?}", fa.findings);
    assert!(unjustified.iter().any(|f| f.message.contains("Vec::new")));
    assert!(unjustified.iter().any(|f| f.message.contains("to_vec")));
    assert!(unjustified.iter().any(|f| f.message.contains("Box::new")));
    assert!(unjustified.iter().any(|f| f.message.contains("vec![")));
    assert!(unjustified.iter().any(|f| f.message.contains("clone")));
    assert!(
        unjustified.iter().all(|f| f.line < 20),
        "cold_setup (unannotated) must not fire: {unjustified:?}"
    );
    // The era-amortized pool refill is present but justified.
    let allowed: Vec<_> = hits.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1, "{hits:?}");
    assert!(allowed[0].allowed.as_deref().unwrap().contains("once per era"));
}

#[test]
fn known_good_shapes_stay_clean() {
    let fa = analyze_source("crates/wal/src/fixture.rs", GOOD_CLEAN, &cfg());
    let unjustified: Vec<_> =
        fa.findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(unjustified.is_empty(), "{unjustified:?}");
    // The justified send is still present, with its reason attached.
    let allowed: Vec<_> = fa.findings.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].allowed.as_deref().unwrap().contains("bounded channel"));
    // Consistent nesting produced an edge but no cycle.
    assert!(!fa.edges.is_empty());
    assert!(find_cycles(&fa.edges).is_empty());
}

#[test]
fn tokenizer_traps_do_not_fire_or_desync() {
    let fa = analyze_source("crates/storage/src/fixture.rs", EDGE_TOKENS, &cfg());
    assert!(fa.findings.is_empty(), "{:?}", fa.findings);
    assert!(fa.edges.is_empty());
}

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    // lint:allow(unwrap)\n    x.unwrap()\n}\n";
    let fa = analyze_source("crates/txn/src/fixture.rs", src, &cfg());
    assert!(fa.findings.iter().any(|f| f.rule == Rule::BadAllow));
    // The malformed allow does not shield the unwrap itself.
    assert!(fa
        .findings
        .iter()
        .any(|f| f.rule == Rule::Unwrap && f.allowed.is_none()));
}

#[test]
fn cross_file_cycles_surface_in_the_report() {
    let a = "pub fn f(p: &S) { let x = p.a.lock(); let y = p.b.lock(); }";
    let b = "pub fn g(p: &S) { let y = p.b.lock(); let x = p.a.lock(); }";
    let report = lint_sources(
        [("crates/wal/src/one.rs", a), ("crates/wal/src/two.rs", b)],
        &cfg(),
    );
    assert_eq!(report.cycles.len(), 1, "{:?}", report.edges);
    assert!(!report.clean());
    let rendered = report.render();
    assert!(rendered.contains("lock-order cycles"), "{rendered}");
}

// ---------------------------------------------------------------------------
// Interprocedural rules (workspace pass)
// ---------------------------------------------------------------------------

#[test]
fn fence_fires_on_bare_routes_in_write_paths() {
    let report = lint_sources([("crates/core/src/fixture.rs", BAD_FENCE)], &cfg());
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::FenceCompleteness && f.allowed.is_none())
        .collect();
    // Direct (route_row next to the write) and indirect (shard_dn one
    // call above it) must both fire.
    assert_eq!(hits.len(), 2, "{:?}", report.findings);
    assert!(hits.iter().any(|f| f.message.contains("route_row")));
    assert!(hits.iter().any(|f| f.message.contains("shard_dn")));
    assert!(
        hits.iter()
            .any(|f| f.symbol.as_deref() == Some("core::fixture::Session::insert_row")),
        "symbol paths must carry the impl context: {hits:?}"
    );
}

#[test]
fn fence_stays_silent_on_fenced_and_readonly_twin() {
    let report = lint_sources([("crates/core/src/fixture.rs", GOOD_FENCE)], &cfg());
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::FenceCompleteness),
        "{:?}",
        report.findings
    );
}

#[test]
fn fence_respects_sanctioned_paths() {
    // The module defining the fenced variants builds them from bare
    // routes — the identical bad shape is sanctioned there.
    let report = lint_sources([("crates/core/src/gms.rs", BAD_FENCE)], &cfg());
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::FenceCompleteness),
        "{:?}",
        report.findings
    );
}

#[test]
fn release_fires_on_early_exits_and_never_released() {
    let report = lint_sources([("crates/core/src/fixture.rs", BAD_RELEASE)], &cfg());
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::ReleaseOnAllPaths && f.allowed.is_none())
        .collect();
    // rehome: two `?` exits × two live acquisitions (epoch freeze +
    // write freeze) = 4; freeze_forever adds the never-released leak.
    assert_eq!(hits.len(), 5, "{:?}", report.findings);
    let leaks: Vec<_> =
        hits.iter().filter(|f| f.message.contains("never released")).collect();
    assert_eq!(leaks.len(), 1, "{hits:?}");
    assert!(leaks[0].symbol.as_deref().unwrap().ends_with("freeze_forever"));
    assert!(hits.iter().any(|f| f.message.contains("`?` exit")));
}

#[test]
fn release_stays_silent_on_cutover_closure_helper_and_bytes_freeze() {
    let report = lint_sources([("crates/core/src/fixture.rs", GOOD_RELEASE)], &cfg());
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::ReleaseOnAllPaths),
        "closure exits / helper release / Bytes::freeze must not fire: {:?}",
        report.findings
    );
}

#[test]
fn atomic_publish_fires_on_relaxed_store_with_acquire_load() {
    let report = lint_sources([("crates/core/src/fixture.rs", BAD_ATOMIC)], &cfg());
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicPublish && f.allowed.is_none())
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].message.contains("watermark"));
    assert!(hits[0].message.contains("Acquire-loaded"));
    assert!(hits[0].symbol.as_deref().unwrap().ends_with("publish"));
}

#[test]
fn atomic_publish_good_twin_stays_silent() {
    let report = lint_sources([("crates/core/src/fixture.rs", GOOD_ATOMIC)], &cfg());
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::AtomicPublish),
        "Release publication / both-relaxed counter / orderingless cache \
         setter must not fire: {:?}",
        report.findings
    );
}

#[test]
fn atomic_publish_keys_fields_per_crate() {
    // Same field name split across crates: unrelated atomics, no pairing.
    let store_side = "impl Gate {\n    pub fn publish(&self, seq: u64) {\n        \
                      self.watermark.store(seq, Ordering::Relaxed);\n    }\n}\n";
    let load_side = "impl Other {\n    pub fn read(&self) -> u64 {\n        \
                     self.watermark.load(Ordering::Acquire)\n    }\n}\n";
    let report = lint_sources(
        [("crates/wal/src/fixture.rs", store_side), ("crates/core/src/fixture.rs", load_side)],
        &cfg(),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::AtomicPublish),
        "{:?}",
        report.findings
    );
}

#[test]
fn interproc_abba_cycle_surfaces_with_via_labels() {
    let report = lint_sources([("crates/core/src/fixture.rs", BAD_INTERPROC)], &cfg());
    assert_eq!(report.cycles.len(), 1, "{:?}", report.edges);
    let nodes = &report.cycles[0].nodes;
    assert!(nodes.iter().any(|n| n.ends_with("::alpha")), "{nodes:?}");
    assert!(nodes.iter().any(|n| n.ends_with("::beta")), "{nodes:?}");
    // Both realizing edges crossed a call (one through the two-level
    // `hop` chain) — each must carry its via label.
    assert!(
        report.cycles[0].edges.iter().all(|e| e.via.is_some()),
        "{:?}",
        report.cycles[0].edges
    );
    assert!(
        report.cycles[0].edges.iter().any(|e| e.via.as_deref() == Some("hop")),
        "the two-level chain must resolve through hop: {:?}",
        report.cycles[0].edges
    );
}

#[test]
fn interproc_consistent_order_stays_acyclic() {
    let report = lint_sources([("crates/core/src/fixture.rs", GOOD_INTERPROC)], &cfg());
    assert!(report.cycles.is_empty(), "{:?}", report.cycles);
    // The edges themselves exist (alpha → beta, some via calls).
    assert!(
        report.edges.iter().any(|e| e.via.is_some()),
        "interprocedural edges expected: {:?}",
        report.edges
    );
}

#[test]
fn trait_methods_resolve_by_qualifier_not_by_name() {
    use polardbx_lint::callgraph::{resolve, STOPLIST};
    use polardbx_lint::symbols::SymbolTable;
    use std::collections::HashSet;

    let src = "pub trait Flusher {\n\
               \x20   fn flush_all(&self) -> usize {\n\
               \x20       self.pending()\n\
               \x20   }\n\
               }\n\
               pub struct Wal { inner: Mutex<Vec<u8>> }\n\
               impl Flusher for Wal {\n\
               \x20   fn flush_all(&self) -> usize {\n\
               \x20       let g = self.inner.lock();\n\
               \x20       g.len()\n\
               \x20   }\n\
               }\n";
    let fa = analyze_source("crates/wal/src/fixture.rs", src, &cfg());
    let tys: Vec<_> = fa
        .fns
        .iter()
        .filter(|f| f.name == "flush_all")
        .map(|f| f.impl_ty.clone())
        .collect();
    assert_eq!(tys.len(), 2, "trait default + impl method: {:?}", fa.fns);
    assert!(tys.contains(&Some("Flusher".into())), "{tys:?}");
    assert!(tys.contains(&Some("Wal".into())), "{tys:?}");

    let stop: HashSet<&str> = STOPLIST.iter().copied().collect();
    let table = SymbolTable::build(fa.fns);
    let to_wal = resolve(&table, &stop, "wal", "flush_all", Some("Wal"));
    assert_eq!(to_wal.len(), 1);
    assert_eq!(table.fns[to_wal[0]].impl_ty.as_deref(), Some("Wal"));
    let to_trait = resolve(&table, &stop, "wal", "flush_all", Some("Flusher"));
    assert_eq!(to_trait.len(), 1);
    assert_eq!(table.fns[to_trait[0]].impl_ty.as_deref(), Some("Flusher"));
}
