//! Fixture tests: known-bad snippets must fire each rule, known-good must
//! stay clean, and tokenizer traps must not desync the analysis.

use polardbx_lint::analysis::{analyze_source, Config, Rule};
use polardbx_lint::graph::find_cycles;
use polardbx_lint::lint_sources;

fn cfg() -> Config {
    Config::default()
}

const BAD_LOCK_ORDER: &str = include_str!("fixtures/bad_lock_order.rs");
const BAD_GUARD_BLOCKING: &str = include_str!("fixtures/bad_guard_blocking.rs");
const BAD_DETERMINISM: &str = include_str!("fixtures/bad_determinism.rs");
const BAD_UNWRAP: &str = include_str!("fixtures/bad_unwrap.rs");
const BAD_DURABILITY_ORDER: &str = include_str!("fixtures/bad_durability_order.rs");
const BAD_HOTPATH_ALLOC: &str = include_str!("fixtures/bad_hotpath_alloc.rs");
const GOOD_CLEAN: &str = include_str!("fixtures/good_clean.rs");
const EDGE_TOKENS: &str = include_str!("fixtures/edge_tokens.rs");

#[test]
fn opposite_nesting_orders_form_a_cycle() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_LOCK_ORDER, &cfg());
    assert!(
        fa.findings.iter().all(|f| f.rule != Rule::LockOrder),
        "distinct locks must not fire the self-nesting finding"
    );
    let cycles = find_cycles(&fa.edges);
    assert_eq!(cycles.len(), 1, "a<->b must be detected: {:?}", fa.edges);
    assert!(cycles[0].nodes.iter().any(|n| n.ends_with("::a")));
    assert!(cycles[0].nodes.iter().any(|n| n.ends_with("::b")));
}

#[test]
fn guard_across_blocking_fires_per_shape() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_GUARD_BLOCKING, &cfg());
    let blocking: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::GuardBlocking).collect();
    assert_eq!(blocking.len(), 2, "sleep + send: {:?}", fa.findings);
    assert!(blocking.iter().any(|f| f.message.contains("sleep")));
    assert!(blocking.iter().any(|f| f.message.contains("send")));
    let nested: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert_eq!(nested.len(), 1, "same-lock nesting: {:?}", fa.findings);
    assert!(nested[0].message.contains("nested acquisition"));
}

#[test]
fn determinism_fires_on_ambient_time_and_rng() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_DETERMINISM, &cfg());
    let det: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::Determinism).collect();
    assert_eq!(det.len(), 3, "{:?}", fa.findings);
    assert!(det.iter().any(|f| f.message.contains("Instant::now")));
    assert!(det.iter().any(|f| f.message.contains("SystemTime::now")));
    assert!(det.iter().any(|f| f.message.contains("thread_rng")));
}

#[test]
fn determinism_respects_the_allowlist() {
    let fa = analyze_source("crates/hlc/src/fixture.rs", BAD_DETERMINISM, &cfg());
    assert!(
        fa.findings.iter().all(|f| f.rule != Rule::Determinism),
        "hlc is the sanctioned clock source: {:?}",
        fa.findings
    );
}

#[test]
fn unwrap_fires_only_in_protocol_crates_and_not_in_tests() {
    let fa = analyze_source("crates/txn/src/fixture.rs", BAD_UNWRAP, &cfg());
    let unwraps: Vec<_> = fa.findings.iter().filter(|f| f.rule == Rule::Unwrap).collect();
    assert_eq!(unwraps.len(), 2, "unwrap + expect, test mod skipped: {:?}", fa.findings);

    let outside = analyze_source("crates/executor/src/fixture.rs", BAD_UNWRAP, &cfg());
    assert!(
        outside.findings.iter().all(|f| f.rule != Rule::Unwrap),
        "executor is not in the deny list"
    );
}

#[test]
fn durability_order_fires_on_visibility_before_ack() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_DURABILITY_ORDER, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::DurabilityOrder).collect();
    // `commit_wrong` stamps both the txn table and the version store
    // before make_durable; the correct and replay-only shapes stay quiet.
    assert_eq!(hits.len(), 2, "{:?}", fa.findings);
    assert!(hits.iter().any(|f| f.message.contains("txns.commit")));
    assert!(hits.iter().any(|f| f.message.contains("store.commit")));
    assert!(hits.iter().all(|f| f.line < 10), "only commit_wrong may fire: {hits:?}");
}

#[test]
fn durability_order_respects_allow() {
    let src = "pub fn f(e: &E) -> Result<Lsn> {\n\
               \x20   // lint:allow(durability_order, visibility is rolled back on flush failure)\n\
               \x20   e.txns.commit(t, ts)?;\n\
               \x20   e.durability.make_durable(m)\n}\n";
    let fa = analyze_source("crates/storage/src/fixture.rs", src, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::DurabilityOrder).collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].allowed.as_deref().unwrap().contains("rolled back"));
}

#[test]
fn hotpath_alloc_fires_only_in_annotated_functions() {
    let fa = analyze_source("crates/storage/src/fixture.rs", BAD_HOTPATH_ALLOC, &cfg());
    let hits: Vec<_> =
        fa.findings.iter().filter(|f| f.rule == Rule::HotpathAlloc).collect();
    let unjustified: Vec<_> = hits.iter().filter(|f| f.allowed.is_none()).collect();
    // hot_commit: Vec::new + to_vec + Box::new + vec! + clone = 5 findings;
    // cold_setup's identical constructs and Arc::clone stay quiet.
    assert_eq!(unjustified.len(), 5, "{:?}", fa.findings);
    assert!(unjustified.iter().any(|f| f.message.contains("Vec::new")));
    assert!(unjustified.iter().any(|f| f.message.contains("to_vec")));
    assert!(unjustified.iter().any(|f| f.message.contains("Box::new")));
    assert!(unjustified.iter().any(|f| f.message.contains("vec![")));
    assert!(unjustified.iter().any(|f| f.message.contains("clone")));
    assert!(
        unjustified.iter().all(|f| f.line < 20),
        "cold_setup (unannotated) must not fire: {unjustified:?}"
    );
    // The era-amortized pool refill is present but justified.
    let allowed: Vec<_> = hits.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1, "{hits:?}");
    assert!(allowed[0].allowed.as_deref().unwrap().contains("once per era"));
}

#[test]
fn known_good_shapes_stay_clean() {
    let fa = analyze_source("crates/wal/src/fixture.rs", GOOD_CLEAN, &cfg());
    let unjustified: Vec<_> =
        fa.findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(unjustified.is_empty(), "{unjustified:?}");
    // The justified send is still present, with its reason attached.
    let allowed: Vec<_> = fa.findings.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].allowed.as_deref().unwrap().contains("bounded channel"));
    // Consistent nesting produced an edge but no cycle.
    assert!(!fa.edges.is_empty());
    assert!(find_cycles(&fa.edges).is_empty());
}

#[test]
fn tokenizer_traps_do_not_fire_or_desync() {
    let fa = analyze_source("crates/storage/src/fixture.rs", EDGE_TOKENS, &cfg());
    assert!(fa.findings.is_empty(), "{:?}", fa.findings);
    assert!(fa.edges.is_empty());
}

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    // lint:allow(unwrap)\n    x.unwrap()\n}\n";
    let fa = analyze_source("crates/txn/src/fixture.rs", src, &cfg());
    assert!(fa.findings.iter().any(|f| f.rule == Rule::BadAllow));
    // The malformed allow does not shield the unwrap itself.
    assert!(fa
        .findings
        .iter()
        .any(|f| f.rule == Rule::Unwrap && f.allowed.is_none()));
}

#[test]
fn cross_file_cycles_surface_in_the_report() {
    let a = "pub fn f(p: &S) { let x = p.a.lock(); let y = p.b.lock(); }";
    let b = "pub fn g(p: &S) { let y = p.b.lock(); let x = p.a.lock(); }";
    let report = lint_sources(
        [("crates/wal/src/one.rs", a), ("crates/wal/src/two.rs", b)],
        &cfg(),
    );
    assert_eq!(report.cycles.len(), 1, "{:?}", report.edges);
    assert!(!report.clean());
    let rendered = report.render();
    assert!(rendered.contains("lock-order cycles"), "{rendered}");
}
