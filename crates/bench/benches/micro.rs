//! Criterion micro-benchmarks for the design claims DESIGN.md calls out:
//!
//! * HLC primitive cost and the batched-`ClockUpdate` optimization (§IV),
//! * MVCC read/write throughput,
//! * order-preserving key encoding,
//! * vectorized columnar kernels vs row-at-a-time filtering (§VI-E).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use polardbx_columnar::kernels::{self, CmpOp};
use polardbx_columnar::ColumnIndex;
use polardbx_common::{DataType, Key, Row, TableId, TenantId, TrxId, Value};
use polardbx_hlc::{Clock, Hlc, HlcTimestamp};
use polardbx_storage::{StorageEngine, WriteOp};

fn bench_hlc(c: &mut Criterion) {
    let mut g = c.benchmark_group("hlc");
    let hlc = Hlc::new();
    g.bench_function("advance", |b| b.iter(|| std::hint::black_box(hlc.advance())));
    g.bench_function("now", |b| b.iter(|| std::hint::black_box(hlc.now())));
    g.bench_function("update", |b| {
        let ts = HlcTimestamp::at_pt(1);
        b.iter(|| hlc.update(std::hint::black_box(ts)))
    });
    // §IV optimization: one batched update vs N individual updates — the
    // coordinator's per-commit clock cost.
    let prepares: Vec<HlcTimestamp> =
        (0..8).map(|i| HlcTimestamp::new(100 + i, 0)).collect();
    g.bench_function("update_per_participant_x8", |b| {
        b.iter(|| {
            for &ts in &prepares {
                hlc.update(ts);
            }
        })
    });
    g.bench_function("update_batched_max_x8", |b| {
        b.iter(|| hlc.update_max(prepares.iter().copied()))
    });
    g.finish();
}

fn bench_mvcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc");
    let engine = StorageEngine::in_memory();
    engine.create_table(TableId(1), TenantId(1));
    // Preload 10k rows.
    for i in 0..10_000i64 {
        let trx = TrxId(1_000_000 + i as u64);
        engine.begin(trx, 0);
        engine
            .write(
                trx,
                TableId(1),
                Key::encode(&[Value::Int(i)]),
                WriteOp::Insert(Row::new(vec![Value::Int(i), Value::str("payload")])),
            )
            .unwrap();
        engine.commit(trx, 10).unwrap();
    }
    let key = Key::encode(&[Value::Int(5_000)]);
    g.bench_function("point_read", |b| {
        b.iter(|| engine.read(TableId(1), &key, u64::MAX, None).unwrap())
    });
    let mut next = 10_000i64;
    g.bench_function("insert_commit", |b| {
        b.iter(|| {
            next += 1;
            let trx = TrxId(2_000_000 + next as u64);
            engine.begin(trx, 10);
            engine
                .write(
                    trx,
                    TableId(1),
                    Key::encode(&[Value::Int(next)]),
                    WriteOp::Insert(Row::new(vec![Value::Int(next), Value::str("p")])),
                )
                .unwrap();
            engine.commit(trx, 20).unwrap();
        })
    });
    g.finish();
}

fn bench_key_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("key");
    let vals =
        vec![Value::Int(123456), Value::str("customer-name-here"), Value::Double(3.25)];
    g.bench_function("encode", |b| b.iter(|| Key::encode(std::hint::black_box(&vals))));
    let key = Key::encode(&vals);
    g.bench_function("decode", |b| b.iter(|| std::hint::black_box(&key).decode()));
    g.finish();
}

fn bench_columnar_vs_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_filter_sum");
    const N: i64 = 100_000;
    // Row store path: Vec<Row> + per-row eval.
    let rows: Vec<Row> = (0..N)
        .map(|i| Row::new(vec![Value::Int(i), Value::Double(i as f64 * 1.5)]))
        .collect();
    // Column index path.
    let index = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
    for i in 0..N {
        index
            .apply_put(
                TrxId(1),
                1,
                Key::encode(&[Value::Int(i)]),
                &Row::new(vec![Value::Int(i), Value::Double(i as f64 * 1.5)]),
            )
            .unwrap();
    }
    let snap = Arc::new(index.snapshot(u64::MAX));

    g.bench_function("row_store", |b| {
        b.iter_batched(
            || rows.clone(),
            |rows| {
                let mut sum = 0.0;
                for r in &rows {
                    if r.get(0).unwrap().as_int().unwrap() % 3 == 0 {
                        sum += r.get(1).unwrap().as_double().unwrap();
                    }
                }
                std::hint::black_box(sum)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("column_index", |b| {
        let snap = Arc::clone(&snap);
        b.iter(|| {
            // Vectorized: filter on col0 % 3 is not a kernel; emulate the
            // same selectivity with a range dance: three interleaved
            // range filters ≈ comparable row subset.
            let sel = kernels::filter_cmp(
                &snap.columns[0],
                &snap.selection,
                CmpOp::Lt,
                &Value::Int(N / 3),
            )
            .unwrap();
            std::hint::black_box(kernels::sum(&snap.columns[1], &sel).unwrap())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hlc, bench_mvcc, bench_key_encoding, bench_columnar_vs_row
}
criterion_main!(benches);
