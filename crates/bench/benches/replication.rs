//! Criterion benches for the §III replication design choices:
//!
//! * `MLOG_PAXOS` batching: per-MTR frames vs 16 KB batches (wire bytes and
//!   framing CPU),
//! * asynchronous commit: synchronous per-transaction waits vs pipelined
//!   group completion through the commit-waiter registry.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{Key, Lsn, TableId, TrxId, Value};
use polardbx_consensus::{GroupConfig, PaxosGroup};
use polardbx_simnet::LatencyMatrix;
use polardbx_wal::{FrameBatcher, Mtr, PaxosFrame, RedoPayload};

fn mtr(i: i64, payload: usize) -> Mtr {
    Mtr::single(RedoPayload::Insert {
        trx: TrxId(i as u64),
        table: TableId(1),
        key: Key::encode(&[Value::Int(i)]),
        row: Bytes::from(vec![0u8; payload]),
    })
}

fn bench_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlog_paxos_batching");
    let mtrs: Vec<Mtr> = (0..256).map(|i| mtr(i, 200)).collect();
    g.bench_function("frame_per_mtr", |b| {
        b.iter(|| {
            let mut wire = 0usize;
            for (i, m) in mtrs.iter().enumerate() {
                let f =
                    PaxosFrame::from_mtrs(1, i as u64, Lsn(0), std::slice::from_ref(m));
                wire += f.encode().len();
            }
            std::hint::black_box(wire)
        })
    });
    g.bench_function("frame_batched_16k", |b| {
        b.iter(|| {
            let mut wire = 0usize;
            let mut batcher = FrameBatcher::new(1, 0, Lsn(0));
            for m in mtrs.iter().cloned() {
                if let Some(f) = batcher.push(m) {
                    wire += f.encode().len();
                }
            }
            if let Some(f) = batcher.flush() {
                wire += f.encode().len();
            }
            std::hint::black_box(wire)
        })
    });
    g.finish();
}

fn bench_async_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_commit");
    g.sample_size(10);
    let latency = LatencyMatrix::uniform(Duration::from_micros(300));
    // Synchronous: each transaction waits for its own majority round trip.
    g.bench_function("sync_commit_x16", |b| {
        let group = PaxosGroup::build(GroupConfig::three_dc(1).with_latency(latency.clone()));
        let leader = group.leader().unwrap();
        let mut i = 0i64;
        b.iter(|| {
            for _ in 0..16 {
                i += 1;
                leader
                    .replicate_and_wait(&[mtr(i, 64)], Duration::from_secs(2))
                    .unwrap();
            }
        })
    });
    // Asynchronous: all 16 are in flight together; the async_log_committer
    // completes them as DLSN sweeps forward (§III).
    g.bench_function("async_commit_x16", |b| {
        let group = PaxosGroup::build(GroupConfig::three_dc(1).with_latency(latency.clone()));
        let leader = group.leader().unwrap();
        let mut i = 0i64;
        b.iter(|| {
            let mut rxs = Vec::with_capacity(16);
            for _ in 0..16 {
                i += 1;
                let lsn = leader.replicate(&[mtr(i, 64)]).unwrap();
                rxs.push(leader.waiters.register(lsn));
            }
            for rx in rxs {
                rx.recv_timeout(Duration::from_secs(2)).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3));
    targets = bench_batching, bench_async_commit
}
criterion_main!(benches);
