//! Tier-1 guard for the allocation-free commit path (ISSUE 7): after
//! warmup, a steady-state epoch-mode commit must perform ZERO heap
//! allocations on the committing thread — on both the local-log and the
//! Paxos durability paths. Per-epoch work (frame encodes, Bytes copies)
//! happens on the flusher thread and is era-amortized; the committing
//! thread only encodes into pooled buffers and parks on pre-grown
//! structures.
//!
//! Warmup is sized to carry every lazily-grown structure past its next
//! resize threshold (txn table, unstable set, epoch buffer pool, condvar
//! parker TLS), so the measured window cannot hit an amortized growth
//! spike: hashbrown doubles capacity, and 100 measured commits after 1200
//! warmup commits sit far below the next doubling point.

use polardbx_bench::alloc_count;
use polardbx_common::{Key, Row, TableId, TenantId, TrxId, Value};
use polardbx_storage::{StorageEngine, SyncLocalDurability, WriteOp};
use polardbx_wal::{EpochConfig, LocalEpochSink, LogBuffer, VecSink};
use std::sync::Arc;
use std::time::Duration;

const WARMUP: u64 = 1200;
const MEASURE: u64 = 100;

/// Begin + write one distinct-key txn (unarmed); returns the commit ts.
fn stage(engine: &Arc<StorageEngine>, trx: u64) -> u64 {
    engine.begin(TrxId(trx), trx);
    engine
        .write(
            TrxId(trx),
            TableId(1),
            Key::encode(&[Value::Int(trx as i64)]),
            WriteOp::Insert(Row::new(vec![Value::Int(trx as i64)])),
        )
        .unwrap();
    trx + 1
}

/// Warm up, then measure allocations across MEASURE armed commits.
fn measure_commits(engine: &Arc<StorageEngine>) -> u64 {
    for trx in 1..=WARMUP {
        let ts = stage(engine, trx);
        engine.commit(TrxId(trx), ts).unwrap();
    }
    let mut allocs = 0u64;
    for trx in (WARMUP + 1)..=(WARMUP + MEASURE) {
        let ts = stage(engine, trx);
        alloc_count::arm();
        let res = engine.commit(TrxId(trx), ts);
        allocs += alloc_count::disarm();
        res.unwrap();
    }
    allocs
}

#[test]
fn steady_state_epoch_commit_is_allocation_free_on_the_local_path() {
    if !alloc_count::ENABLED {
        eprintln!("count-alloc feature off — skipping");
        return;
    }
    let log = LogBuffer::new(VecSink::new());
    let engine = StorageEngine::with_durability(SyncLocalDurability::new(Arc::clone(&log)));
    engine.enable_epoch(LocalEpochSink::new(log), EpochConfig::default());
    engine.create_table(TableId(1), TenantId(1));
    let allocs = measure_commits(&engine);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations across {MEASURE} steady-state local epoch commits — \
         the commit hot path must be allocation-free"
    );
}

#[test]
fn steady_state_epoch_commit_is_allocation_free_on_the_paxos_path() {
    if !alloc_count::ENABLED {
        eprintln!("count-alloc feature off — skipping");
        return;
    }
    let group = polardbx_consensus::PaxosGroup::build(polardbx_consensus::GroupConfig::three_dc(1));
    let leader = group.leader().unwrap();
    let engine = StorageEngine::with_durability(polardbx::durability::PaxosDurability::per_transaction(
        Arc::clone(&leader),
        Duration::from_secs(5),
    ));
    polardbx::durability::enable_paxos_epoch(
        &engine,
        leader,
        Duration::from_secs(5),
        EpochConfig::default(),
    );
    engine.create_table(TableId(1), TenantId(1));
    let allocs = measure_commits(&engine);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations across {MEASURE} steady-state Paxos epoch commits — \
         the commit hot path must be allocation-free (replication work belongs on the \
         flusher thread)"
    );
}
