//! Commit-throughput benchmark: per-transaction durability vs group commit.
//!
//! The TP write path used to pay one synchronous durability round per
//! transaction — one log flush under local durability, one full Paxos
//! replication + cross-DC wait under `PaxosDurability`. This harness
//! measures commits/s at 1, 8 and 32 concurrent committers for both
//! providers, before (per-transaction) and after (grouped):
//!
//! * **local** — `SyncLocalDurability` (seed: append + flush per commit)
//!   vs `LocalDurability` (GroupCommitter: leader/follower shared flush).
//!   The sink charges a modelled fsync wait per write ([`SlowSink`]);
//!   with a free sink there is nothing to coalesce and nothing to measure.
//! * **paxos** — `PaxosDurability::per_transaction` vs the batched default
//!   (drain leader merges pending commit batches into one `replicate` +
//!   one majority wait). Three DCs at ~1 ms RTT, every replica's log sink
//!   paying the same modelled fsync.
//!
//! Results go to `BENCH_commit.json`. The full-size run enforces the
//! acceptance bars: >= 2x at 32 committers under local durability, >= 3x
//! under Paxos, and < 0.5 mean Paxos rounds per committed transaction.
//!
//! Run: `cargo run --release -p polardbx-bench --bin commit_bench [--quick]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx::durability::PaxosDurability;
use polardbx_bench::{closed_loop, fmt_dur, header, quick, row, SlowSink};
use polardbx_common::{DcId, Key, NodeId, Row, TableId, TenantId, TrxId, Value};
use polardbx_consensus::Replica;
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use polardbx_storage::engine::{LocalDurability, SyncLocalDurability};
use polardbx_storage::{StorageEngine, WriteOp};
use polardbx_wal::{LogBuffer, LogSink};

const T: TableId = TableId(1);
const COMMITTERS: [usize; 3] = [1, 8, 32];

/// One committer iteration: a two-statement read-write transaction on
/// fresh keys (no conflicts — the bench measures the durability pipeline,
/// not contention).
fn commit_one(engine: &Arc<StorageEngine>, ids: &AtomicU64) -> bool {
    let id = ids.fetch_add(1, Ordering::Relaxed) + 1;
    let trx = TrxId(id);
    engine.begin(trx, id);
    for j in 0..2i64 {
        let k = (id as i64) * 4 + j;
        if engine
            .write(trx, T, Key::encode(&[Value::Int(k)]), WriteOp::Insert(Row::new(vec![Value::Int(k)])))
            .is_err()
        {
            engine.abort(trx);
            return false;
        }
    }
    engine.commit(trx, id).is_ok()
}

fn run(engine: &Arc<StorageEngine>, committers: usize, dur: Duration) -> f64 {
    let ids = AtomicU64::new(0);
    let result = closed_loop(committers, dur, |_| commit_one(engine, &ids));
    assert_eq!(result.errors, 0, "bench transactions must not fail");
    result.tps()
}

/// Build a three-DC Paxos group whose replicas all log through a
/// [`SlowSink`], and return the bootstrapped leader.
fn build_paxos_leader(fsync: Duration) -> Arc<Replica> {
    let net = SimNet::new(LatencyMatrix {
        intra_dc: Duration::from_micros(50),
        inter_dc: Duration::from_micros(500),
        jitter: 0.0,
    });
    let members = vec![NodeId(1), NodeId(2), NodeId(3)];
    let mut replicas = Vec::new();
    for (i, &node) in members.iter().enumerate() {
        let replica = Replica::new(
            node,
            DcId(i as u64 + 1),
            members.clone(),
            i == 2, // DC3 hosts the logger
            Arc::clone(&net),
            SlowSink::new(fsync) as Arc<dyn LogSink>,
        );
        net.register(
            node,
            DcId(i as u64 + 1),
            Arc::clone(&replica) as Arc<dyn Handler<polardbx_consensus::PaxosMsg>>,
        );
        replicas.push(replica);
    }
    replicas[0].bootstrap_leader(1);
    replicas.into_iter().next().unwrap()
}

struct Cell {
    committers: usize,
    before_tps: f64,
    after_tps: f64,
}

fn main() {
    let dur = if quick() { Duration::from_millis(300) } else { Duration::from_secs(2) };
    let fsync = Duration::from_micros(400);

    println!("# commit_bench — per-transaction durability vs group commit (fsync model {fsync:?})");
    println!();

    // ---- Local durability -------------------------------------------------
    println!("## local durability (log flush per commit vs grouped flush)");
    header(&["committers", "before (sync) tps", "after (grouped) tps", "speedup"]);
    let mut local_cells = Vec::new();
    let mut local_report = String::new();
    for &committers in &COMMITTERS {
        let before_engine = StorageEngine::with_durability(SyncLocalDurability::new(
            LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>),
        ));
        before_engine.create_table(T, TenantId(1));
        let before_tps = run(&before_engine, committers, dur);

        let after_engine = StorageEngine::with_durability(LocalDurability::new(
            LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>),
        ));
        after_engine.create_table(T, TenantId(1));
        let after_tps = run(&after_engine, committers, dur);
        if committers == *COMMITTERS.last().unwrap() {
            local_report = after_engine.wal_metrics().unwrap().report();
        }

        row(&[
            committers.to_string(),
            format!("{before_tps:.0}"),
            format!("{after_tps:.0}"),
            format!("{:.2}x", after_tps / before_tps),
        ]);
        local_cells.push(Cell { committers, before_tps, after_tps });
    }
    println!();
    println!("  group-commit metrics @32: {local_report}");
    println!();

    // ---- Paxos durability -------------------------------------------------
    println!("## paxos durability (replication round per commit vs batched rounds)");
    header(&["committers", "before (per-txn) tps", "after (batched) tps", "speedup", "rounds/txn"]);
    let mut paxos_cells = Vec::new();
    let mut rounds_per_txn_at_32 = f64::NAN;
    let mut paxos_report = String::new();
    for &committers in &COMMITTERS {
        let before_leader = build_paxos_leader(fsync);
        let before = PaxosDurability::per_transaction(before_leader, Duration::from_secs(10));
        let before_engine = StorageEngine::with_durability(before);
        before_engine.create_table(T, TenantId(1));
        let before_tps = run(&before_engine, committers, dur);

        let after_leader = build_paxos_leader(fsync);
        let after = PaxosDurability::new(after_leader);
        let metrics = Arc::clone(&after.metrics);
        let after_engine = StorageEngine::with_durability(after);
        after_engine.create_table(T, TenantId(1));
        let after_tps = run(&after_engine, committers, dur);
        let rpt = metrics.rounds_per_txn();
        if committers == *COMMITTERS.last().unwrap() {
            rounds_per_txn_at_32 = rpt;
            paxos_report = metrics.report();
        }

        row(&[
            committers.to_string(),
            format!("{before_tps:.0}"),
            format!("{after_tps:.0}"),
            format!("{:.2}x", after_tps / before_tps),
            format!("{rpt:.3}"),
        ]);
        paxos_cells.push(Cell { committers, before_tps, after_tps });
    }
    println!();
    println!("  batch metrics @32: {paxos_report}");
    println!();

    // ---- Report + bars ----------------------------------------------------
    let local32 = local_cells.last().unwrap();
    let paxos32 = paxos_cells.last().unwrap();
    let local_speedup = local32.after_tps / local32.before_tps;
    let paxos_speedup = paxos32.after_tps / paxos32.before_tps;

    let cell_json = |cells: &[Cell]| {
        cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"committers\": {}, \"before_tps\": {:.1}, \"after_tps\": {:.1}, \"speedup\": {:.3}}}",
                    c.committers,
                    c.before_tps,
                    c.after_tps,
                    c.after_tps / c.before_tps
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"commit_bench\",\n  \"fsync_model_us\": {},\n  \"local\": [{}],\n  \"paxos\": [{}],\n  \"local_speedup_at_32\": {:.3},\n  \"paxos_speedup_at_32\": {:.3},\n  \"paxos_rounds_per_txn_at_32\": {:.4}\n}}\n",
        fsync.as_micros(),
        cell_json(&local_cells),
        cell_json(&paxos_cells),
        local_speedup,
        paxos_speedup,
        rounds_per_txn_at_32,
    );
    std::fs::write("BENCH_commit.json", &json).unwrap();
    println!("  wrote BENCH_commit.json ({})", fmt_dur(dur));

    let mut failed = false;
    if local_speedup < 2.0 {
        println!("  WARNING: local speedup {local_speedup:.2}x below the 2x acceptance bar");
        failed = true;
    }
    if paxos_speedup < 3.0 {
        println!("  WARNING: paxos speedup {paxos_speedup:.2}x below the 3x acceptance bar");
        failed = true;
    }
    // NaN (cell never ran) must fail the bar too, hence no plain `<`.
    if rounds_per_txn_at_32.is_nan() || rounds_per_txn_at_32 >= 0.5 {
        println!("  WARNING: {rounds_per_txn_at_32:.3} paxos rounds/txn at 32 committers (bar: < 0.5)");
        failed = true;
    }
    // The full-size run enforces the bars; the downsized CI smoke run only
    // reports (shared runners are too noisy to gate on).
    if failed && !quick() {
        std::process::exit(1);
    }
}
