//! Commit-throughput benchmark: per-transaction durability vs group commit
//! vs the epoch-pipelined commit path.
//!
//! The TP write path used to pay one synchronous durability round per
//! transaction — one log flush under local durability, one full Paxos
//! replication + cross-DC wait under `PaxosDurability`. This harness
//! measures commits/s at 1, 8 and 32 concurrent committers for both
//! providers, across three commit paths:
//!
//! * **before** — per-transaction durability (the seed): one flush /
//!   replication round per commit.
//! * **grouped** — group commit (PR 6): concurrent committers share
//!   flush/replication rounds. Helps only when committers > 1.
//! * **epoch** — the epoch pipeline (ISSUE 7): commit decision decoupled
//!   from the durability ack. Single-stream commits pipeline through the
//!   ticket window (`commit_pipelined` + deferred `wait_ticket`), so even
//!   ONE committer amortizes flushes — the case group commit cannot help.
//!   Multi-committer rows use the synchronous `commit` (which rides the
//!   pipeline internally) so latency is comparable with grouped.
//!
//! * **local** — `SyncLocalDurability` vs `LocalDurability`
//!   (GroupCommitter) vs `LocalEpochSink`. The sink charges a modelled
//!   fsync wait per write ([`SlowSink`]); with a free sink there is
//!   nothing to coalesce and nothing to measure.
//! * **paxos** — `PaxosDurability::per_transaction` vs the batched default
//!   vs `PaxosEpochSink` (each sealed epoch = one `replicate_raw` + one
//!   majority wait). Three DCs at ~1 ms RTT, every replica's log sink
//!   paying the same modelled fsync.
//!
//! Results go to `BENCH_commit.json` (now with the epoch column). The
//! full-size run enforces the acceptance bars: >= 2x grouped at 32
//! committers under local durability, >= 3x under Paxos, < 0.5 mean Paxos
//! rounds per txn, >= 3x *single-stream* epoch speedup under Paxos, and
//! epoch p99 at 32 committers no worse than grouped (25% noise slack).
//! `--quick` (the CI smoke) enforces the >= 2x single-stream epoch bar.
//!
//! Run: `cargo run --release -p polardbx-bench --bin commit_bench [--quick]`

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polardbx::durability::{enable_paxos_epoch, PaxosDurability};
use polardbx_bench::{closed_loop, fmt_dur, header, quick, row, LoopResult, SlowSink};
use polardbx_common::{DcId, Key, NodeId, Row, TableId, TenantId, TrxId, Value};
use polardbx_consensus::Replica;
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use polardbx_storage::engine::{LocalDurability, SyncLocalDurability};
use polardbx_storage::{StorageEngine, WriteOp};
use polardbx_wal::{EpochConfig, EpochPipeline, EpochTicket, LocalEpochSink, LogBuffer, LogSink};

const T: TableId = TableId(1);
const COMMITTERS: [usize; 3] = [1, 8, 32];
/// Single-stream pipelining window: tickets in flight before the stream
/// harvests the oldest.
const WINDOW: usize = 32;

/// One committer iteration: a two-statement read-write transaction on
/// fresh keys (no conflicts — the bench measures the durability pipeline,
/// not contention).
fn commit_one(engine: &Arc<StorageEngine>, ids: &AtomicU64) -> bool {
    let id = ids.fetch_add(1, Ordering::Relaxed) + 1;
    let trx = TrxId(id);
    engine.begin(trx, id);
    for j in 0..2i64 {
        let k = (id as i64) * 4 + j;
        if engine
            .write(trx, T, Key::encode(&[Value::Int(k)]), WriteOp::Insert(Row::new(vec![Value::Int(k)])))
            .is_err()
        {
            engine.abort(trx);
            return false;
        }
    }
    engine.commit(trx, id).is_ok()
}

fn run(engine: &Arc<StorageEngine>, committers: usize, dur: Duration) -> LoopResult {
    let ids = AtomicU64::new(0);
    let result = closed_loop(committers, dur, |_| commit_one(engine, &ids));
    assert_eq!(result.errors, 0, "bench transactions must not fail");
    result
}

/// The epoch path's headline case: ONE logical commit stream, pipelined.
/// Commit decisions are published immediately (`commit_pipelined`); the
/// stream harvests durability tickets a window behind, so consecutive
/// commits share epoch flushes instead of serializing on them.
fn run_epoch_single_stream(
    engine: &Arc<StorageEngine>,
    pipe: &Arc<EpochPipeline>,
    dur: Duration,
) -> f64 {
    let mut inflight: VecDeque<EpochTicket> = VecDeque::with_capacity(WINDOW);
    let t0 = Instant::now();
    let mut id = 0u64;
    let mut ops = 0u64;
    while t0.elapsed() < dur {
        id += 1;
        let trx = TrxId(id);
        engine.begin(trx, id);
        for j in 0..2i64 {
            let k = (id as i64) * 4 + j;
            engine
                .write(trx, T, Key::encode(&[Value::Int(k)]), WriteOp::Insert(Row::new(vec![Value::Int(k)])))
                .unwrap();
        }
        inflight.push_back(engine.commit_pipelined(trx, id).unwrap());
        if inflight.len() >= WINDOW {
            pipe.wait_ticket(inflight.pop_front().unwrap(), Duration::from_secs(10)).unwrap();
            ops += 1;
        }
    }
    for t in inflight {
        pipe.wait_ticket(t, Duration::from_secs(10)).unwrap();
        ops += 1;
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

/// Build a three-DC Paxos group whose replicas all log through a
/// [`SlowSink`], and return the bootstrapped leader.
fn build_paxos_leader(fsync: Duration) -> Arc<Replica> {
    let net = SimNet::new(LatencyMatrix {
        intra_dc: Duration::from_micros(50),
        inter_dc: Duration::from_micros(500),
        jitter: 0.0,
    });
    let members = vec![NodeId(1), NodeId(2), NodeId(3)];
    let mut replicas = Vec::new();
    for (i, &node) in members.iter().enumerate() {
        let replica = Replica::new(
            node,
            DcId(i as u64 + 1),
            members.clone(),
            i == 2, // DC3 hosts the logger
            Arc::clone(&net),
            SlowSink::new(fsync) as Arc<dyn LogSink>,
        );
        net.register(
            node,
            DcId(i as u64 + 1),
            Arc::clone(&replica) as Arc<dyn Handler<polardbx_consensus::PaxosMsg>>,
        );
        replicas.push(replica);
    }
    replicas[0].bootstrap_leader(1);
    replicas.into_iter().next().unwrap()
}

/// A fresh epoch-mode engine over local durability (SlowSink-modelled
/// fsync per epoch flush).
fn build_local_epoch(fsync: Duration) -> (Arc<StorageEngine>, Arc<EpochPipeline>) {
    let log = LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>);
    let engine = StorageEngine::with_durability(SyncLocalDurability::new(Arc::clone(&log)));
    let pipe = engine.enable_epoch(LocalEpochSink::new(log), EpochConfig::default());
    engine.create_table(T, TenantId(1));
    (engine, pipe)
}

/// A fresh epoch-mode engine over Paxos durability (each sealed epoch is
/// one raw replication round).
fn build_paxos_epoch(fsync: Duration) -> (Arc<StorageEngine>, Arc<EpochPipeline>) {
    let leader = build_paxos_leader(fsync);
    let engine = StorageEngine::with_durability(PaxosDurability::per_transaction(
        Arc::clone(&leader),
        Duration::from_secs(10),
    ));
    let pipe = enable_paxos_epoch(&engine, leader, Duration::from_secs(10), EpochConfig::default());
    engine.create_table(T, TenantId(1));
    (engine, pipe)
}

struct Cell {
    committers: usize,
    before_tps: f64,
    after_tps: f64,
    epoch_tps: f64,
}

/// Per-provider @32 latency + diagnostics captured for the report.
#[derive(Default)]
struct At32 {
    grouped_p99: Duration,
    epoch_p99: Duration,
    grouped_report: String,
    epoch_report: String,
}

fn main() {
    let dur = if quick() { Duration::from_millis(300) } else { Duration::from_secs(2) };
    let fsync = Duration::from_micros(400);

    println!("# commit_bench — per-txn vs grouped vs epoch-pipelined commit (fsync model {fsync:?})");
    println!();

    let cols =
        ["committers", "before tps", "grouped tps", "epoch tps", "grouped speedup", "epoch speedup"];

    // ---- Local durability -------------------------------------------------
    println!("## local durability (flush per commit / grouped flush / epoch pipeline)");
    header(&cols);
    let mut local_cells = Vec::new();
    let mut local32 = At32::default();
    for &committers in &COMMITTERS {
        let before_engine = StorageEngine::with_durability(SyncLocalDurability::new(
            LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>),
        ));
        before_engine.create_table(T, TenantId(1));
        let before_tps = run(&before_engine, committers, dur).tps();

        let after_engine = StorageEngine::with_durability(LocalDurability::new(
            LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>),
        ));
        after_engine.create_table(T, TenantId(1));
        let after = run(&after_engine, committers, dur);

        let (epoch_engine, pipe) = build_local_epoch(fsync);
        let epoch_tps = if committers == 1 {
            run_epoch_single_stream(&epoch_engine, &pipe, dur)
        } else {
            let r = run(&epoch_engine, committers, dur);
            if committers == *COMMITTERS.last().unwrap() {
                local32.epoch_p99 = r.p99_latency;
            }
            r.tps()
        };
        if committers == *COMMITTERS.last().unwrap() {
            local32.grouped_p99 = after.p99_latency;
            local32.grouped_report = after_engine.wal_metrics().unwrap().report();
            local32.epoch_report = pipe.metrics.report();
        }

        row(&[
            committers.to_string(),
            format!("{before_tps:.0}"),
            format!("{:.0}", after.tps()),
            format!("{epoch_tps:.0}"),
            format!("{:.2}x", after.tps() / before_tps),
            format!("{:.2}x", epoch_tps / before_tps),
        ]);
        local_cells.push(Cell { committers, before_tps, after_tps: after.tps(), epoch_tps });
    }
    println!();
    println!("  group-commit metrics @32: {}", local32.grouped_report);
    println!("  epoch metrics @32: {}", local32.epoch_report);
    println!(
        "  p99 @32: grouped {} · epoch {}",
        fmt_dur(local32.grouped_p99),
        fmt_dur(local32.epoch_p99)
    );
    println!();

    // ---- Paxos durability -------------------------------------------------
    println!("## paxos durability (round per commit / batched rounds / epoch per round)");
    header(&cols);
    let mut paxos_cells = Vec::new();
    let mut paxos32 = At32::default();
    let mut rounds_per_txn_at_32 = f64::NAN;
    for &committers in &COMMITTERS {
        let before_leader = build_paxos_leader(fsync);
        let before = PaxosDurability::per_transaction(before_leader, Duration::from_secs(10));
        let before_engine = StorageEngine::with_durability(before);
        before_engine.create_table(T, TenantId(1));
        let before_tps = run(&before_engine, committers, dur).tps();

        let after_leader = build_paxos_leader(fsync);
        let after_dur = PaxosDurability::new(after_leader);
        let metrics = Arc::clone(&after_dur.metrics);
        let after_engine = StorageEngine::with_durability(after_dur);
        after_engine.create_table(T, TenantId(1));
        let after = run(&after_engine, committers, dur);

        let (epoch_engine, pipe) = build_paxos_epoch(fsync);
        let epoch_tps = if committers == 1 {
            run_epoch_single_stream(&epoch_engine, &pipe, dur)
        } else {
            let r = run(&epoch_engine, committers, dur);
            if committers == *COMMITTERS.last().unwrap() {
                paxos32.epoch_p99 = r.p99_latency;
            }
            r.tps()
        };
        if committers == *COMMITTERS.last().unwrap() {
            rounds_per_txn_at_32 = metrics.rounds_per_txn();
            paxos32.grouped_p99 = after.p99_latency;
            paxos32.grouped_report = metrics.report();
            paxos32.epoch_report = pipe.metrics.report();
        }

        row(&[
            committers.to_string(),
            format!("{before_tps:.0}"),
            format!("{:.0}", after.tps()),
            format!("{epoch_tps:.0}"),
            format!("{:.2}x", after.tps() / before_tps),
            format!("{:.2}x", epoch_tps / before_tps),
        ]);
        paxos_cells.push(Cell { committers, before_tps, after_tps: after.tps(), epoch_tps });
    }
    println!();
    println!("  batch metrics @32: {}", paxos32.grouped_report);
    println!("  epoch metrics @32: {}", paxos32.epoch_report);
    println!(
        "  p99 @32: grouped {} · epoch {}",
        fmt_dur(paxos32.grouped_p99),
        fmt_dur(paxos32.epoch_p99)
    );
    println!();

    // ---- Report + bars ----------------------------------------------------
    let l32 = local_cells.last().unwrap();
    let p32 = paxos_cells.last().unwrap();
    let local_speedup = l32.after_tps / l32.before_tps;
    let paxos_speedup = p32.after_tps / p32.before_tps;
    let local_epoch_single = local_cells[0].epoch_tps / local_cells[0].before_tps;
    let paxos_epoch_single = paxos_cells[0].epoch_tps / paxos_cells[0].before_tps;

    let cell_json = |cells: &[Cell]| {
        cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"committers\": {}, \"before_tps\": {:.1}, \"after_tps\": {:.1}, \"epoch_tps\": {:.1}, \"speedup\": {:.3}, \"epoch_speedup\": {:.3}}}",
                    c.committers,
                    c.before_tps,
                    c.after_tps,
                    c.epoch_tps,
                    c.after_tps / c.before_tps,
                    c.epoch_tps / c.before_tps,
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"commit_bench\",\n  \"fsync_model_us\": {},\n  \"local\": [{}],\n  \"paxos\": [{}],\n  \"local_speedup_at_32\": {:.3},\n  \"paxos_speedup_at_32\": {:.3},\n  \"paxos_rounds_per_txn_at_32\": {:.4},\n  \"local_epoch_single_stream_speedup\": {:.3},\n  \"paxos_epoch_single_stream_speedup\": {:.3},\n  \"local_p99_at_32_us\": {{\"grouped\": {}, \"epoch\": {}}},\n  \"paxos_p99_at_32_us\": {{\"grouped\": {}, \"epoch\": {}}}\n}}\n",
        fsync.as_micros(),
        cell_json(&local_cells),
        cell_json(&paxos_cells),
        local_speedup,
        paxos_speedup,
        rounds_per_txn_at_32,
        local_epoch_single,
        paxos_epoch_single,
        local32.grouped_p99.as_micros(),
        local32.epoch_p99.as_micros(),
        paxos32.grouped_p99.as_micros(),
        paxos32.epoch_p99.as_micros(),
    );
    std::fs::write("BENCH_commit.json", &json).unwrap();
    println!("  wrote BENCH_commit.json ({})", fmt_dur(dur));

    let mut failed = false;
    if local_speedup < 2.0 {
        println!("  WARNING: local speedup {local_speedup:.2}x below the 2x acceptance bar");
        failed = true;
    }
    if paxos_speedup < 3.0 {
        println!("  WARNING: paxos speedup {paxos_speedup:.2}x below the 3x acceptance bar");
        failed = true;
    }
    // NaN (cell never ran) must fail the bar too, hence no plain `<`.
    if rounds_per_txn_at_32.is_nan() || rounds_per_txn_at_32 >= 0.5 {
        println!("  WARNING: {rounds_per_txn_at_32:.3} paxos rounds/txn at 32 committers (bar: < 0.5)");
        failed = true;
    }
    // NaN must fail the bar too, matching the rounds gate above.
    if paxos_epoch_single.is_nan() || paxos_epoch_single < 3.0 {
        println!(
            "  WARNING: paxos single-stream epoch speedup {paxos_epoch_single:.2}x below the 3x bar"
        );
        failed = true;
    }
    // Epoch must not buy throughput with tail latency: p99 at 32 no worse
    // than grouped. The histogram's percentile is bucketed (adjacent
    // buckets are 1.33x apart) and runs land on either side of a bucket
    // edge, so the slack must cover one bucket step plus runner noise.
    if paxos32.epoch_p99 > paxos32.grouped_p99.mul_f64(1.5) {
        println!(
            "  WARNING: paxos epoch p99@32 {} worse than grouped {}",
            fmt_dur(paxos32.epoch_p99),
            fmt_dur(paxos32.grouped_p99)
        );
        failed = true;
    }
    // The full-size run enforces every bar. The downsized CI smoke run is
    // too noisy for latency gates but still enforces the headline epoch
    // win at reduced strength: >= 2x single-stream under Paxos.
    if quick() {
        if paxos_epoch_single.is_nan() || paxos_epoch_single < 2.0 {
            println!(
                "  FAIL (quick): paxos single-stream epoch speedup {paxos_epoch_single:.2}x below 2x"
            );
            std::process::exit(1);
        }
    } else if failed {
        std::process::exit(1);
    }
}
