//! Crashpoint torture bench: RTO/RPO across seeded crash-restart runs.
//!
//! Drives the `sitcheck` recovery harness over the (crashpoint × seed)
//! matrix — mid-group-flush power loss, a crash between 2PC prepare and
//! commit, and a consensus-follower crash during log drain — each followed
//! by an *amnesia* restart rebuilt from nothing but the victim's durable
//! log. Per run the harness reports:
//!
//! * **RPO** — acked commits lost (the bar is exactly zero),
//! * **RTO** — crash → the victim serving a clean audit again,
//! * replay idempotence (replaying the recovered log twice ≡ once),
//! * the bank conserved sum, and
//! * the Adya checker's verdict over the whole history, crash included.
//!
//! Results land in `BENCH_recovery.json`; per-run text reports (the same
//! block format as `sitcheck-report.txt`) go to `sitcheck-recovery.txt`.
//! Unlike the throughput benches, the bars here are *correctness* bars, so
//! a violation fails the run even under `--quick`.
//!
//! Run: `cargo run --release -p polardbx-bench --bin recovery_bench \
//!       [--quick] [--seeds N] [--base-seed HEX] [--no-torn-tail]`

use std::time::Duration;

use polardbx_bench::{header, quick, row};
use polardbx_common::testseed::seed_from_env;
use polardbx_sitcheck::recovery::{run_crashpoint, CrashPoint, RecoveryConfig, RecoveryRun};
use polardbx_sitcheck::report::render_recovery_report;

const DEFAULT_BASE_SEED: u64 = 0x5EC0_4E41;

struct Args {
    seeds: usize,
    base_seed: u64,
    torn_tail: bool,
}

fn parse_args() -> Args {
    let mut args = Args { seeds: if quick() { 2 } else { 5 }, base_seed: 0, torn_tail: true };
    let mut it = std::env::args().skip(1);
    let mut base = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--no-torn-tail" => args.torn_tail = false,
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number");
            }
            "--base-seed" => {
                let v = it.next().expect("--base-seed needs a hex value");
                base = Some(
                    u64::from_str_radix(v.trim_start_matches("0x"), 16)
                        .expect("--base-seed needs a hex value"),
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // POLARDBX_TEST_SEED pins the whole matrix for reproduction in CI.
    args.base_seed = base.unwrap_or_else(|| seed_from_env(DEFAULT_BASE_SEED));
    args
}

/// Per-crashpoint-class aggregate.
struct ClassAgg {
    label: &'static str,
    runs: usize,
    acked: usize,
    lost: usize,
    in_doubt: usize,
    rto_mean: Duration,
    rto_max: Duration,
    truncated: u64,
    all_idempotent: bool,
    all_clean: bool,
    all_passed: bool,
}

fn aggregate(label: &'static str, runs: &[&RecoveryRun]) -> ClassAgg {
    let total: Duration = runs.iter().map(|r| r.rto).sum();
    ClassAgg {
        label,
        runs: runs.len(),
        acked: runs.iter().map(|r| r.acked_commits).sum(),
        lost: runs.iter().map(|r| r.lost_acked).sum(),
        in_doubt: runs.iter().map(|r| r.in_doubt_recovered).sum(),
        rto_mean: total / runs.len().max(1) as u32,
        rto_max: runs.iter().map(|r| r.rto).max().unwrap_or_default(),
        truncated: runs.iter().map(|r| r.truncated_bytes).sum(),
        all_idempotent: runs.iter().all(|r| r.replay_idempotent),
        all_clean: runs.iter().all(|r| r.report.is_clean()),
        all_passed: runs.iter().all(|r| r.passed()),
    }
}

fn run_json(r: &RecoveryRun) -> String {
    format!(
        "{{\"crashpoint\": \"{}\", \"seed\": {}, \"acked_commits\": {}, \"lost_acked\": {}, \
         \"in_doubt_recovered\": {}, \"rto_ms\": {:.3}, \"truncated_bytes\": {}, \
         \"replay_idempotent\": {}, \"conserved_ok\": {}, \"anomalies\": {}, \"passed\": {}}}",
        r.crashpoint_label,
        r.seed,
        r.acked_commits,
        r.lost_acked,
        r.in_doubt_recovered,
        r.rto.as_secs_f64() * 1e3,
        r.truncated_bytes,
        r.replay_idempotent,
        r.conserved_ok,
        r.report.anomalies.len(),
        r.passed(),
    )
}

fn main() {
    let args = parse_args();
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.base_seed.wrapping_add(i)).collect();
    let crashpoints = CrashPoint::all();

    println!(
        "# recovery_bench — crashpoint torture, {} seed(s) from {:#x}, torn_tail={}",
        args.seeds, args.base_seed, args.torn_tail
    );
    println!();
    header(&[
        "crashpoint", "seed", "acked", "lost", "in-doubt", "rto", "truncated", "idempotent",
        "anomalies",
    ]);

    let mut runs: Vec<RecoveryRun> = Vec::new();
    let mut report_text = String::new();
    for &seed in &seeds {
        for &cp in &crashpoints {
            let mut cfg = RecoveryConfig::quick(seed, cp);
            cfg.torn_tail = args.torn_tail;
            let r = run_crashpoint(&cfg);
            row(&[
                r.crashpoint_label.to_string(),
                format!("{:#x}", r.seed),
                r.acked_commits.to_string(),
                r.lost_acked.to_string(),
                r.in_doubt_recovered.to_string(),
                format!("{:.2?}", r.rto),
                r.truncated_bytes.to_string(),
                r.replay_idempotent.to_string(),
                r.report.anomalies.len().to_string(),
            ]);
            report_text.push_str(&render_recovery_report(&r));
            runs.push(r);
        }
    }
    println!();

    // Per-class aggregates (the RTO-per-crashpoint-class table).
    let aggs: Vec<ClassAgg> = crashpoints
        .iter()
        .map(|cp| {
            let class: Vec<&RecoveryRun> =
                runs.iter().filter(|r| r.crashpoint_label == cp.label()).collect();
            aggregate(cp.label(), &class)
        })
        .collect();
    println!("## per crashpoint class");
    header(&["crashpoint", "runs", "acked", "lost", "rto mean", "rto max", "clean", "idempotent"]);
    for a in &aggs {
        row(&[
            a.label.to_string(),
            a.runs.to_string(),
            a.acked.to_string(),
            a.lost.to_string(),
            format!("{:.2?}", a.rto_mean),
            format!("{:.2?}", a.rto_max),
            a.all_clean.to_string(),
            a.all_idempotent.to_string(),
        ]);
    }
    println!();

    let agg_json = aggs
        .iter()
        .map(|a| {
            format!(
                "{{\"crashpoint\": \"{}\", \"runs\": {}, \"acked_commits\": {}, \"lost_acked\": {}, \
                 \"in_doubt_recovered\": {}, \"rto_mean_ms\": {:.3}, \"rto_max_ms\": {:.3}, \
                 \"truncated_bytes\": {}, \"replay_idempotent\": {}, \"clean\": {}, \"passed\": {}}}",
                a.label,
                a.runs,
                a.acked,
                a.lost,
                a.in_doubt,
                a.rto_mean.as_secs_f64() * 1e3,
                a.rto_max.as_secs_f64() * 1e3,
                a.truncated,
                a.all_idempotent,
                a.all_clean,
                a.all_passed,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let all_passed = runs.iter().all(|r| r.passed());
    let json = format!(
        "{{\n  \"benchmark\": \"recovery_bench\",\n  \"base_seed\": {},\n  \"seeds\": {},\n  \
         \"torn_tail\": {},\n  \"classes\": [\n    {}\n  ],\n  \"runs\": [\n    {}\n  ],\n  \
         \"total_lost_acked\": {},\n  \"all_passed\": {}\n}}\n",
        args.base_seed,
        args.seeds,
        args.torn_tail,
        agg_json,
        runs.iter().map(run_json).collect::<Vec<_>>().join(",\n    "),
        runs.iter().map(|r| r.lost_acked).sum::<usize>(),
        all_passed,
    );
    std::fs::write("BENCH_recovery.json", &json).unwrap();
    std::fs::write("sitcheck-recovery.txt", &report_text).unwrap();
    println!("  wrote BENCH_recovery.json and sitcheck-recovery.txt");

    if !all_passed {
        for r in runs.iter().filter(|r| !r.passed()) {
            println!(
                "  FAILURE: {} seed {:#x}: lost_acked={} idempotent={} conserved={} clean={} \
                 recovered={}",
                r.crashpoint_label,
                r.seed,
                r.lost_acked,
                r.replay_idempotent,
                r.conserved_ok,
                r.report.is_clean(),
                r.recovered_in_time,
            );
        }
        std::process::exit(1);
    }
    println!("  all crashpoints recovered: RPO = 0, replay idempotent, histories clean");
}
