//! front_bench: load harness for the SQL front door over the real wire.
//!
//! Three scenarios against one cluster + `FrontDoor`:
//!
//! 1. **Closed loop** — 32 wire clients (8 with `--quick`), each the sole
//!    writer of its own row, running a SELECT/UPDATE mix as fast as acks
//!    return. Reports sustained QPS and p50/p99/p999 from an HDR
//!    histogram.
//! 2. **Open loop** — paced workers sweep target arrival rates; latency
//!    is measured from each request's *scheduled* send time, so queueing
//!    delay when the server falls behind is charged to the result
//!    (no coordinated omission).
//! 3. **Hotspot tenant** — a quiet tenant's p99 is measured alone, then
//!    again while a rate-limited hot tenant floods the door and gets
//!    bounced. The bar: admission control keeps the quiet tenant's
//!    contended p99 within 3× of its isolated baseline (6× with
//!    `--quick`), the hot tenant sees >0 throttles, and nobody sees a
//!    non-retryable error.
//!
//! Results go to `BENCH_front.json`; bar failures exit nonzero.
//!
//! Run: `cargo run --release -p polardbx-bench --bin front_bench [--quick]`

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_bench::{fmt_dur, quick};
use polardbx_common::metrics::HdrHistogram;
use polardbx_common::{Error, TenantQuotas};
use polardbx_front::{FrontClient, FrontDoor};

/// Outcome of one load phase.
struct PhaseResult {
    name: String,
    ops: u64,
    throttles: u64,
    fatal: u64,
    elapsed: Duration,
    hist: HdrHistogram,
}

impl PhaseResult {
    fn qps(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    fn report(&self) {
        println!(
            "  {:<22} {:>8.0} qps · p50 {:>8} · p99 {:>8} · p999 {:>8} · \
             {} throttles · {} fatal",
            self.name,
            self.qps(),
            fmt_dur(self.hist.percentile(0.50)),
            fmt_dur(self.hist.percentile(0.99)),
            fmt_dur(self.hist.percentile(0.999)),
            self.throttles,
            self.fatal,
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"qps\": {:.1}, \"ops\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"p999_us\": {}, \"throttles\": {}, \"fatal_errors\": {}}}",
            self.name,
            self.qps(),
            self.ops,
            self.hist.percentile(0.50).as_micros(),
            self.hist.percentile(0.99).as_micros(),
            self.hist.percentile(0.999).as_micros(),
            self.throttles,
            self.fatal,
        )
    }
}

/// One client's closed-loop op: alternate point-SELECT and own-row UPDATE.
/// Returns latency on success, Err(true) for a throttle (back off), and
/// Err(false) for a fatal error.
fn mixed_op(c: &mut FrontClient, row: usize, k: u64) -> Result<(), bool> {
    let r = if k.is_multiple_of(2) {
        c.query(&format!("SELECT v FROM b WHERE id = {row}")).map(|_| ())
    } else {
        c.execute(&format!("UPDATE b SET v = v + 1 WHERE id = {row}")).map(|_| ())
    };
    match r {
        Ok(()) => Ok(()),
        Err(Error::Throttled { .. }) => Err(true),
        Err(ref e) if e.is_retryable() => Err(true),
        Err(_) => Err(false),
    }
}

/// Closed loop: `clients` wire connections hammering for `dur`.
fn run_closed_loop(
    name: &str,
    addr: SocketAddr,
    tenant: u64,
    clients: usize,
    rows_base: usize,
    dur: Duration,
) -> PhaseResult {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let throttles = AtomicU64::new(0);
    let fatal = AtomicU64::new(0);
    let hist = HdrHistogram::new();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..clients {
            let stop = &stop;
            let ops = &ops;
            let throttles = &throttles;
            let fatal = &fatal;
            let hist = &hist;
            s.spawn(move || {
                let mut c = match FrontClient::connect(addr, tenant) {
                    Ok(c) => c,
                    Err(_) => {
                        fatal.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    match mixed_op(&mut c, rows_base + w, k) {
                        Ok(()) => {
                            hist.record(t.elapsed());
                            ops.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(true) => {
                            throttles.fetch_add(1, Ordering::Relaxed);
                            // Back off so bounces don't melt into a spin.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(false) => {
                            fatal.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    k += 1;
                }
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    PhaseResult {
        name: name.to_string(),
        ops: ops.load(Ordering::Relaxed),
        throttles: throttles.load(Ordering::Relaxed),
        fatal: fatal.load(Ordering::Relaxed),
        elapsed: t0.elapsed(),
        hist,
    }
}

/// Open loop at `target_qps`: paced workers, latency charged from each
/// request's scheduled send time.
fn run_open_loop(
    addr: SocketAddr,
    tenant: u64,
    workers: usize,
    rows_base: usize,
    target_qps: f64,
    dur: Duration,
) -> PhaseResult {
    let ops = AtomicU64::new(0);
    let throttles = AtomicU64::new(0);
    let fatal = AtomicU64::new(0);
    let hist = HdrHistogram::new();
    let interval = Duration::from_secs_f64(workers as f64 / target_qps);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let ops = &ops;
            let throttles = &throttles;
            let fatal = &fatal;
            let hist = &hist;
            s.spawn(move || {
                let mut c = match FrontClient::connect(addr, tenant) {
                    Ok(c) => c,
                    Err(_) => {
                        fatal.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                // Stagger workers across one interval.
                let offset = interval.mul_f64(w as f64 / workers as f64);
                let mut k = 0u64;
                loop {
                    let scheduled = t0 + offset + interval * (k as u32);
                    if scheduled.duration_since(t0) >= dur {
                        return;
                    }
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    match mixed_op(&mut c, rows_base + w, k) {
                        Ok(()) => {
                            // From the *scheduled* time: a backlog shows
                            // up as latency, not as silence.
                            hist.record(scheduled.elapsed());
                            ops.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(true) => {
                            throttles.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(false) => {
                            fatal.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    k += 1;
                }
            });
        }
    });
    PhaseResult {
        name: format!("open-loop@{target_qps:.0}"),
        ops: ops.load(Ordering::Relaxed),
        throttles: throttles.load(Ordering::Relaxed),
        fatal: fatal.load(Ordering::Relaxed),
        elapsed: t0.elapsed(),
        hist,
    }
}

fn main() {
    let quick = quick();
    let closed_clients = if quick { 8 } else { 32 };
    let closed_dur = if quick { Duration::from_millis(700) } else { Duration::from_secs(5) };
    let sweep_dur = if quick { Duration::from_millis(600) } else { Duration::from_secs(3) };
    let sweep_targets: &[f64] = if quick { &[100.0, 300.0] } else { &[200.0, 500.0, 1000.0] };
    let hotspot_dur = if quick { Duration::from_millis(700) } else { Duration::from_secs(3) };

    println!("== front_bench: SQL front door over the wire ==");
    let db = PolarDbx::build(ClusterConfig { dns: 2, default_shards: 8, ..Default::default() })
        .unwrap();
    let app = db.register_tenant("app", TenantQuotas::unlimited());
    let quiet = db.register_tenant("quiet", TenantQuotas::unlimited());
    // The hot tenant is capped well below what its clients will attempt.
    let hot = db.register_tenant("hot", TenantQuotas::rate_limited(200.0, 50.0));
    let front = FrontDoor::start_default(db.clone()).unwrap();
    let addr = front.addr();

    // Schema + one private row per client slot (closed loop, sweep, and
    // hotspot phases use disjoint row ranges).
    let mut admin = FrontClient::connect(addr, app.0).unwrap();
    admin
        .execute(
            "CREATE TABLE b (id BIGINT NOT NULL, v INT, PRIMARY KEY (id)) \
             PARTITION BY HASH(id) PARTITIONS 8",
        )
        .unwrap();
    let total_rows = 128;
    for base in (0..total_rows).step_by(16) {
        let vals: Vec<String> = (base..base + 16).map(|i| format!("({i}, 0)")).collect();
        admin
            .execute(&format!("INSERT INTO b (id, v) VALUES {}", vals.join(",")))
            .unwrap();
    }

    // ---- 1. closed loop ------------------------------------------------
    println!("-- closed loop: {closed_clients} wire clients, {} --", fmt_dur(closed_dur));
    let closed = run_closed_loop("closed-loop", addr, app.0, closed_clients, 0, closed_dur);
    closed.report();

    // ---- 2. open-loop sweep -------------------------------------------
    println!("-- open-loop sweep: targets {sweep_targets:?} qps --");
    let mut sweep = Vec::new();
    for &target in sweep_targets {
        let r = run_open_loop(addr, app.0, 8, 48, target, sweep_dur);
        r.report();
        sweep.push((target, r));
    }

    // ---- 3. hotspot tenant --------------------------------------------
    println!("-- hotspot: quiet tenant alone, then next to a flooding hot tenant --");
    let quiet_clients = 4;
    let hot_clients = 8;
    let baseline =
        run_closed_loop("quiet-baseline", addr, quiet.0, quiet_clients, 64, hotspot_dur);
    baseline.report();
    // Contended: hot floods (and mostly bounces) while quiet re-runs the
    // identical workload.
    let (contended, hot_phase) = std::thread::scope(|s| {
        let hot_handle = s.spawn(|| {
            run_closed_loop("hot-flood", addr, hot.0, hot_clients, 80, hotspot_dur)
        });
        let contended =
            run_closed_loop("quiet-contended", addr, quiet.0, quiet_clients, 64, hotspot_dur);
        (contended, hot_handle.join().unwrap())
    });
    contended.report();
    hot_phase.report();

    // A sub-200µs baseline p99 on a single-core host is timer noise; the
    // isolation ratio is computed against a 200µs floor so the bar stays
    // meaningful (see EXPERIMENTS.md).
    let floor = Duration::from_micros(200);
    let base_p99 = baseline.hist.percentile(0.99).max(floor);
    let cont_p99 = contended.hist.percentile(0.99);
    let ratio = cont_p99.as_secs_f64() / base_p99.as_secs_f64();
    println!(
        "  quiet p99 isolated {} → contended {} ({ratio:.2}x) · hot throttles {}",
        fmt_dur(baseline.hist.percentile(0.99)),
        fmt_dur(cont_p99),
        hot_phase.throttles,
    );

    // ---- JSON ----------------------------------------------------------
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(target, r)| {
            format!(
                "{{\"target_qps\": {target:.0}, \"achieved_qps\": {:.1}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"p999_us\": {}, \"throttles\": {}, \"fatal_errors\": {}}}",
                r.qps(),
                r.hist.percentile(0.50).as_micros(),
                r.hist.percentile(0.99).as_micros(),
                r.hist.percentile(0.999).as_micros(),
                r.throttles,
                r.fatal,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"front_bench\",\n  \"quick\": {quick},\n  \
         \"closed_loop\": {},\n  \"open_loop_sweep\": [{}],\n  \
         \"hotspot\": {{\"baseline\": {}, \"contended\": {}, \"hot\": {},\n    \
         \"quiet_p99_ratio\": {ratio:.3}}}\n}}\n",
        closed.json(),
        sweep_json.join(", "),
        baseline.json(),
        contended.json(),
        hot_phase.json(),
    );
    std::fs::write("BENCH_front.json", &json).unwrap();
    println!("  wrote BENCH_front.json");

    drop(admin);
    drop(front);
    db.shutdown();

    // ---- bars ----------------------------------------------------------
    // Conservative floors: the host is a single shared core and every op
    // is a full TCP round trip.
    let (min_qps, max_ratio) = if quick { (100.0, 6.0) } else { (300.0, 3.0) };
    let mut failed = false;
    if closed.qps() < min_qps {
        println!("  FAIL: closed-loop {:.0} qps below the {min_qps} floor", closed.qps());
        failed = true;
    }
    let fatal_total = closed.fatal
        + baseline.fatal
        + contended.fatal
        + hot_phase.fatal
        + sweep.iter().map(|(_, r)| r.fatal).sum::<u64>();
    if fatal_total > 0 {
        println!("  FAIL: {fatal_total} non-retryable errors across phases");
        failed = true;
    }
    if hot_phase.throttles == 0 {
        println!("  FAIL: hot tenant was never throttled");
        failed = true;
    }
    // NaN fails closed: only a finite ratio at or under the bar passes.
    if !matches!(ratio.partial_cmp(&max_ratio), Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)) {
        println!(
            "  FAIL: quiet tenant contended p99 is {ratio:.2}x its isolated baseline \
             (bar {max_ratio}x)"
        );
        failed = true;
    }
    if !quick {
        // The lowest sweep target must actually be sustained.
        let (target, r) = &sweep[0];
        if r.qps() < target * 0.8 {
            println!(
                "  FAIL: open loop achieved {:.0} qps against the {target:.0} target",
                r.qps()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all bars passed");
}
