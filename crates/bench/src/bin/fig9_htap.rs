//! Fig 9 — HTAP resource isolation and scalable RO nodes.
//!
//! §VII-C: TPC-C runs continuously while TPC-H executes under six
//! configurations: (1) resource isolation off, AP on the RW path;
//! (2) isolation on, AP on the RW path; (3)–(6) isolation on with one to
//! four dedicated RO nodes serving the AP reads.
//!
//! Fig 9(a): the tpmC timeline — isolation off shows deep jitters;
//! isolation bounds them; dedicated ROs leave TP essentially untouched.
//! Fig 9(b): TPC-H latency per configuration — each extra RO adds AP
//! capacity until the CN/row-store bottleneck (~3 ROs) is reached.
//!
//! Single-core substitution (see EXPERIMENTS.md): with AP routed to
//! dedicated ROs, only a small constant coordination share stays on this
//! host (the replicas are "other machines"), so TP stability is measured
//! for real; the per-RO latency benefit is the measured busy time spread
//! across `k` replicas by Amdahl, saturating at 3 (the paper's CN/row-store
//! bottleneck). TP/AP pool separation, time-slicing and pacing are real.
//!
//! Run: `cargo run --release -p polardbx-bench --bin fig9_htap [--quick]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_bench::{fmt_dur, header, modeled_mpp_time, parallel_fraction, quick, row};
use polardbx_common::metrics::ThroughputSeries;
use polardbx_common::DcId;
use polardbx_workloads::tpcc::{TpccConfig, TpccDriver};
use polardbx_workloads::tpch;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct ConfigSpec {
    name: &'static str,
    isolation: bool,
    ap_on_ro: bool,
    ro_nodes: u32,
}

fn main() {
    let run = Duration::from_secs(if quick() { 2 } else { 6 });
    let window = Duration::from_millis(250);
    let sf = if quick() { 0.005 } else { 0.02 };
    let tp_threads = 3usize;

    println!("# Fig 9 — HTAP: resource isolation + scalable RO nodes");
    println!("  TPC-C-lite continuous ({tp_threads} terminals); TPC-H-lite bursts; {run:?} per config");
    println!();

    // One cluster with both workloads resident. In quick mode the AP
    // threshold is scaled down with the data so the classifier splits the
    // TPC-H mix exactly as the full-size run does (q3/q5/q12 → AP through
    // the vectorized MPP path, q1/q6 → TP); with the default threshold the
    // downsized estimates would put everything on the TP path.
    let db = PolarDbx::build(ClusterConfig {
        dns: 4,
        default_shards: 4,
        ap_threshold: if quick() {
            120_000.0
        } else {
            polardbx_optimizer::DEFAULT_AP_THRESHOLD
        },
        ..Default::default()
    })
    .unwrap();
    let driver = TpccDriver::setup(&db, TpccConfig::default()).unwrap();
    let s = db.connect(DcId(1));
    tpch::create_schema(&s, 4).unwrap();
    tpch::load(&db, tpch::ScaleFactor(sf), 7).unwrap();
    // Dedicated RO replicas (created up front; configs choose whether AP
    // reads route to them).
    db.add_ros(1);
    db.ship_now();

    let configs = [
        ConfigSpec { name: "iso off, AP on RW", isolation: false, ap_on_ro: false, ro_nodes: 0 },
        ConfigSpec { name: "iso on,  AP on RW", isolation: true, ap_on_ro: false, ro_nodes: 0 },
        ConfigSpec { name: "iso on,  1 RO", isolation: true, ap_on_ro: true, ro_nodes: 1 },
        ConfigSpec { name: "iso on,  2 RO", isolation: true, ap_on_ro: true, ro_nodes: 2 },
        ConfigSpec { name: "iso on,  3 RO", isolation: true, ap_on_ro: true, ro_nodes: 3 },
        ConfigSpec { name: "iso on,  4 RO", isolation: true, ap_on_ro: true, ro_nodes: 4 },
    ];
    // Mean parallel fraction of the AP query mix (drives the dedicated-RO
    // capacity model): computed from the optimizer's cost split of each
    // plan in the mix.
    let f = {
        let stats = db.gms().statistics();
        let mix = [1usize, 3, 5, 6, 12];
        let mut total = 0.0;
        for q in mix {
            let polardbx_sql::Statement::Select(sel) =
                polardbx_sql::parse(tpch::query_sql(q)).unwrap()
            else {
                unreachable!()
            };
            let plan = polardbx_optimizer::optimize(
                polardbx_sql::build_plan(&sel, db.gms().as_ref()).unwrap(),
            );
            total += parallel_fraction(&plan, &stats);
        }
        total / 5.0
    };
    println!("  AP mix parallel fraction (cost-model): f = {f:.2}");

    // Baseline tpmC without any AP load.
    let baseline = measure_config(&db, &driver, None, tp_threads, run, window);
    println!(
        "  baseline (no TPC-H): tpmC = {:.0}, min window = {:.0}",
        baseline.tpmc, baseline.min_window_tpmc
    );
    println!();
    // The AP stream executes through the cluster's vectorized MPP path;
    // collect its per-operator counters across all configurations.
    polardbx_executor::exec_metrics().reset();
    header(&[
        "config",
        "tpmC avg",
        "tpmC min window",
        "jitter windows (>40% drop)",
        "TPC-H queries",
        "TPC-H avg lat",
        "vs 'iso on, AP on RW'",
    ]);

    let mut shared_rw_lat: Option<Duration> = None;
    for cfg in &configs {
        db.workload().set_isolation(cfg.isolation);
        db.set_htap_ro(cfg.ap_on_ro);
        // Provision AP capacity: on the RW path AP competes inside the CN
        // (quota 0.5); on dedicated ROs each replica adds a capacity slice.
        // On the RW path, AP shares the CN host under its cgroup quota. On
        // dedicated ROs the queries execute on *other machines*: only a
        // small, constant coordination share remains on this host, so the
        // TP side stays flat no matter how many ROs serve AP (the paper's
        // "TPC-C is almost unaffected").
        let quota = if !cfg.isolation {
            1.0
        } else if cfg.ap_on_ro {
            0.25
        } else {
            0.35
        };
        db.workload().ap_governor.set_quota(quota);

        let m = measure_config_full(
            &db,
            &driver,
            Some(ApSpec { quota, ro_nodes: cfg.ro_nodes, isolation: cfg.isolation }),
            tp_threads,
            run,
            window,
        );
        // Fig 9(b) latency. Shared-RW configs report the measured wall
        // latency (real CN contention). Dedicated-RO configs report the
        // measured-component model: the query's busy time spread across the
        // replicas by Amdahl, saturating at 3 ("the bottleneck … lies in
        // the CN and backend row store", §VII-C).
        let lat = if cfg.ap_on_ro && m.ap_queries > 0 {
            modeled_mpp_time(
                m.ap_busy_mean,
                f,
                cfg.ro_nodes.min(3) as usize,
                Duration::from_micros(300),
            )
        } else {
            m.ap_mean
        };
        let ratio = match (cfg.ap_on_ro, shared_rw_lat) {
            (true, Some(base)) if lat > Duration::ZERO => {
                format!("{:.1}x faster", base.as_secs_f64() / lat.as_secs_f64())
            }
            _ => "—".to_string(),
        };
        if !cfg.ap_on_ro && cfg.isolation {
            shared_rw_lat = Some(m.ap_mean);
        }
        let jitters = m
            .windows
            .iter()
            .filter(|&&w| (w as f64) < baseline.tpmc / 240.0 * 0.6)
            .count();
        row(&[
            cfg.name.to_string(),
            format!("{:.0}", m.tpmc),
            format!("{:.0}", m.min_window_tpmc),
            jitters.to_string(),
            m.ap_queries.to_string(),
            fmt_dur(lat),
            ratio,
        ]);
    }
    println!();
    println!("  Paper: iso-off shows >40% jitters (min tpmC 57!); iso-on holds >120K;");
    println!("  dedicated ROs leave TPC-C unaffected; TPC-H latency improves 2.7x/5.0x/5.7x");
    println!("  with 1→3 extra ROs and saturates at 4 (CN + row-store bottleneck).");
    println!();
    print!("{}", polardbx_executor::exec_metrics().report());
    db.shutdown();
}

struct Measurement {
    tpmc: f64,
    min_window_tpmc: f64,
    windows: Vec<u64>,
    ap_queries: u64,
    ap_mean: Duration,
    /// Mean busy (execution) time per query, pacing gaps excluded — the
    /// input to the dedicated-RO capacity model.
    ap_busy_mean: Duration,
}

struct ApSpec {
    quota: f64,
    #[allow(dead_code)]
    ro_nodes: u32,
    isolation: bool,
}

fn measure_config(
    db: &PolarDbx,
    driver: &TpccDriver,
    ap: Option<&PolarDbx>,
    tp_threads: usize,
    run: Duration,
    window: Duration,
) -> Measurement {
    let spec = ap.map(|_| ApSpec { quota: 1.0, ro_nodes: 0, isolation: false });
    measure_config_full(db, driver, spec, tp_threads, run, window)
}

fn measure_config_full(
    db: &PolarDbx,
    driver: &TpccDriver,
    ap: Option<ApSpec>,
    tp_threads: usize,
    run: Duration,
    window: Duration,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let series = Arc::new(ThroughputSeries::new(window));
    let ap_queries = AtomicU64::new(0);
    let ap_lat_micros = AtomicU64::new(0);
    let ap_busy_micros = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // TP terminals.
        for t in 0..tp_threads {
            let stop = Arc::clone(&stop);
            let series = Arc::clone(&series);
            let session = db.connect(DcId(1));
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + t as u64);
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(true) = driver.transaction(&session, &mut rng) {
                        series.record(1);
                    }
                }
            });
        }
        // AP stream: TPC-H queries looping over a scan/join/agg-heavy mix.
        // With isolation on, the stream honours its CPU quota as a duty
        // cycle (the cgroups effect at query granularity — necessary here
        // because a single sub-millisecond query never accumulates enough
        // executor ticks for the fine-grained governor to engage).
        if let Some(spec) = ap {
            let stop = Arc::clone(&stop);
            let ap_queries = &ap_queries;
            let ap_lat = &ap_lat_micros;
            let ap_busy = &ap_busy_micros;
            let session = db.connect(DcId(1));
            scope.spawn(move || {
                let mix = [1usize, 3, 5, 6, 12];
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    let q = mix[i % mix.len()];
                    i += 1;
                    let t0 = Instant::now();
                    if session.query(tpch::query_sql(q)).is_ok() {
                        let busy = t0.elapsed();
                        ap_queries.fetch_add(1, Ordering::Relaxed);
                        ap_busy.fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
                        // Wall latency includes queueing the duty cycle
                        // imposes on a saturated AP stream.
                        let wall = if spec.isolation && spec.quota < 1.0 {
                            let idle = busy.mul_f64(1.0 / spec.quota - 1.0);
                            std::thread::sleep(idle);
                            busy + idle
                        } else {
                            busy
                        };
                        ap_lat.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(run);
        stop.store(true, Ordering::Relaxed);
    });

    let windows = series.windows();
    let per_minute = 60.0 / window.as_secs_f64();
    let interior: Vec<u64> =
        windows.iter().skip(1).take(windows.len().saturating_sub(2)).copied().collect();
    let total: u64 = windows.iter().sum();
    let q = ap_queries.load(Ordering::Relaxed);
    Measurement {
        tpmc: total as f64 / run.as_secs_f64() * 60.0,
        min_window_tpmc: interior.iter().min().copied().unwrap_or(0) as f64 * per_minute,
        windows: interior,
        ap_queries: q,
        ap_mean: Duration::from_micros(
            ap_lat_micros.load(Ordering::Relaxed).checked_div(q).unwrap_or(0),
        ),
        ap_busy_mean: Duration::from_micros(
            ap_busy_micros.load(Ordering::Relaxed).checked_div(q).unwrap_or(0),
        ),
    }
}
