//! Fig 8 — Elasticity: PolarDB-MT tenant migration vs data transfer.
//!
//! §VII-B: a cluster doubles three times while a sysbench oltp-read-write
//! load runs in the background. With PolarDB-MT, each scaling step only
//! re-binds tenants (flush dirty pages + metadata), completing in seconds;
//! with the shared-nothing data-transfer method the same step must copy
//! every row, taking 116–143× longer at the paper's 40 GB scale.
//!
//! This harness runs both methods at laptop scale and additionally prices
//! the copy baseline at the paper's production scale (40 GB per step,
//! 75 MB/s effective) through the bandwidth model.
//!
//! Run: `cargo run --release -p polardbx-bench --bin fig8_elasticity [--quick]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polardbx_bench::{fmt_dur, header, quick, row};
use polardbx_common::{Key, NodeId, Result, Row, TableId, TenantId, Value};
use polardbx_mt::{
    migrate_by_copy, migrate_tenant, BindingTable, DataDictionary, MtRwNode, Router,
};
use polardbx_polarfs::TransferModel;
use polardbx_storage::WriteOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct World {
    bindings: Arc<BindingTable>,
    dict: Arc<DataDictionary>,
    router: Arc<Router>,
    tenants: Vec<TenantId>,
    #[allow(dead_code)]
    rows_per_tenant: i64,
    next_node: u64,
}

fn key(n: i64) -> Key {
    Key::encode(&[Value::Int(n)])
}

fn payload(n: i64) -> Row {
    // ~250 bytes per row, matching the paper's data shape.
    Row::new(vec![Value::Int(n), Value::Str("x".repeat(230))])
}

fn build(initial_nodes: u64, tenants: u64, rows_per_tenant: i64) -> World {
    let bindings = Arc::new(BindingTable::new(Duration::from_secs(60)));
    let dict = DataDictionary::new(NodeId(1));
    let router = Router::new(Arc::clone(&bindings));
    for n in 1..=initial_nodes {
        router.add_node(MtRwNode::new(NodeId(n), Arc::clone(&bindings)));
        bindings.acquire_lease(NodeId(n));
    }
    let mut ids = Vec::new();
    for t in 0..tenants {
        let tenant = TenantId(100 + t);
        let node_id = NodeId(1 + t % initial_nodes);
        bindings.bind(tenant, node_id);
    }
    for n in 1..=initial_nodes {
        bindings.acquire_lease(NodeId(n));
    }
    for t in 0..tenants {
        let tenant = TenantId(100 + t);
        let node_id = NodeId(1 + t % initial_nodes);
        let node = router.node(node_id).unwrap();
        node.create_table(TableId(tenant.raw()), tenant).unwrap();
        for i in 0..rows_per_tenant {
            node.write_row(tenant, TableId(tenant.raw()), key(i), WriteOp::Insert(payload(i)))
                .unwrap();
        }
        ids.push(tenant);
    }
    World {
        bindings,
        dict,
        router,
        tenants: ids,
        rows_per_tenant,
        next_node: initial_nodes + 1,
    }
}

/// One background-load worker op (sysbench oltp-read-write flavoured).
fn bg_op(
    router: &Router,
    tenants: &[TenantId],
    rows_per_tenant: i64,
    rng: &mut StdRng,
) -> Result<()> {
    let tenant = tenants[rng.gen_range(0..tenants.len())];
    let table = TableId(tenant.raw());
    let id = rng.gen_range(0..rows_per_tenant);
    router.execute(tenant, |node| {
        node.read_row(tenant, table, &key(id))?;
        node.write_row(tenant, table, key(id), WriteOp::Update(payload(id)))
    })
}

/// Modeled post-scaling throughput on the paper's hardware: each RW node
/// contributes a fixed service rate until the client fleet saturates. The
/// benchmark host has a single CPU, so the *measured* tps columns verify
/// non-disruption (before ≈ after, sub-ms pauses) while this model carries
/// the capacity story the paper's Fig 8(a) throughput gains show.
fn modeled_tps(nodes: u64) -> f64 {
    // tps(N) = T / (a + b/N): per-op client-side cost `a` plus server work
    // `b` spread over N nodes. b/a ≈ 60 reproduces the paper's tapering
    // gains (+113 %/94 %/68 % in Fig 8a; this model yields +88/79/65).
    const T: f64 = 140_000.0;
    const R: f64 = 59.4;
    T / (1.0 + R / nodes as f64)
}

fn main() {
    let rows_per_tenant: i64 = if quick() { 100 } else { 1000 };
    let tenants: u64 = if quick() { 16 } else { 32 };
    let settle = Duration::from_millis(if quick() { 1000 } else { 2000 });

    println!("# Fig 8 — elasticity: PolarDB-MT vs data transfer");
    println!(
        "  {} tenants × {} rows (~250 B/row); background oltp-read-write load",
        tenants, rows_per_tenant
    );
    println!();

    let mut world = build(4, tenants, rows_per_tenant);
    let model = TransferModel::paper_default();
    // Production-scale pricing: each step moves half the 40 GB volume.
    let production_bytes_per_step: u64 = 20 * (1 << 30);

    header(&[
        "step",
        "nodes",
        "MT scale time",
        "max pause",
        "tps before",
        "tps after",
        "modeled gain (paper hw)",
        "copy (modeled, paper scale)",
        "ratio",
    ]);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let bg_router = Arc::clone(&world.router);
    let bg_tenants = world.tenants.clone();
    let bg_threads = if quick() { 8 } else { 16 };
    // Background load threads run across the whole experiment.
    std::thread::scope(|s| {
        for t in 0..bg_threads {
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            let router = Arc::clone(&bg_router);
            let tenants = bg_tenants.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                while !stop.load(Ordering::Relaxed) {
                    if bg_op(&router, &tenants, rows_per_tenant, &mut rng).is_ok() {
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // MVCC garbage collection (every real deployment runs this): purge
        // superseded versions so throughput reflects steady state, not an
        // ever-growing version chain.
        {
            let stop = Arc::clone(&stop);
            let router = Arc::clone(&bg_router);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for node in router.nodes() {
                        node.engine.purge(u64::MAX);
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            });
        }

        let tps = |window: Duration| -> f64 {
            let before = ops.load(Ordering::Relaxed);
            std::thread::sleep(window);
            (ops.load(Ordering::Relaxed) - before) as f64 / window.as_secs_f64()
        };

        let mut nodes = 4u64;
        for step in 1..=3 {
            let tps_before = tps(settle);
            let t0 = Instant::now();
            // Scale out: double the node count, migrate half of each old
            // node's tenants to the newcomers (GMS plans pairs; migrations
            // of distinct pairs can run in parallel, §V).
            let new_nodes: Vec<NodeId> =
                (0..nodes).map(|i| NodeId(world.next_node + i)).collect();
            for &n in &new_nodes {
                world.router.add_node(MtRwNode::new(n, Arc::clone(&world.bindings)));
                world.bindings.acquire_lease(n);
            }
            world.next_node += nodes;
            // Plan: move every tenant currently on node k to new node k'.
            let mut max_pause = Duration::ZERO;
            let mut moved = 0usize;
            for (i, &tenant) in world.tenants.iter().enumerate() {
                if i % 2 == 0 {
                    continue; // half the tenants move each step
                }
                let dest = new_nodes[(i / 2) % new_nodes.len()];
                match migrate_tenant(
                    &world.router,
                    &world.dict,
                    &world.bindings,
                    tenant,
                    dest,
                ) {
                    Ok(report) => {
                        max_pause = max_pause.max(report.pause);
                        moved += 1;
                    }
                    Err(e) => eprintln!("  migration of {tenant} failed: {e}"),
                }
            }
            let scale_time = t0.elapsed();
            nodes *= 2;
            let tps_after = tps(settle);

            let copy_time = model.transfer_time(production_bytes_per_step);
            row(&[
                format!("{step}"),
                format!("{}→{}", nodes / 2, nodes),
                fmt_dur(scale_time),
                fmt_dur(max_pause),
                format!("{tps_before:.0}"),
                format!("{tps_after:.0}"),
                format!(
                    "{:+.0}%",
                    (modeled_tps(nodes) / modeled_tps(nodes / 2) - 1.0) * 100.0
                ),
                fmt_dur(copy_time),
                format!("{:.0}x", copy_time.as_secs_f64() / scale_time.as_secs_f64()),
            ]);
            let _ = moved;
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!();
    println!("  Paper: MT steps 4.2/4.5/4.6 s; data transfer 489/527/660 s (116–143x).");
    println!("  Laptop-scale MT steps are sub-second; the copy baseline is priced at");
    println!("  the paper's 40 GB volume through the bandwidth model (75 MB/s).");

    // Also demonstrate a real (laptop-scale) row copy for one tenant.
    let t0 = Instant::now();
    let report = migrate_by_copy(
        &world.router,
        &world.bindings,
        world.tenants[0],
        NodeId(world.next_node - 1),
        &model,
    )
    .unwrap();
    println!();
    println!(
        "  Real row-copy of one tenant ({} rows, {} KiB): {} measured; {} modeled at paper scale",
        report.rows,
        report.bytes / 1024,
        fmt_dur(t0.elapsed()),
        fmt_dur(model.transfer_time(production_bytes_per_step)),
    );
}
