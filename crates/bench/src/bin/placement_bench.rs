//! Adaptive-placement benchmark: 2PC→1PC conversion on skewed TPC-C-lite.
//!
//! The cluster starts with the default round-robin shard placement, which
//! scatters each warehouse's partition group (`cc_district`, `cc_orders`,
//! `cc_stock`, …: same shard index, consecutive table ids) across DNs — so
//! even a perfectly warehouse-local transaction pays full 2PC. The
//! adaptive placer watches the commit-time co-access sketch, clusters the
//! hot groups, and re-homes them onto single DNs with a live-traffic
//! cutover; converted transactions ride the `CommitLocal` one-phase path.
//!
//! Three phases over the same skewed mix (`TpccConfig::skewed`: warehouse
//! partitioning + 0.9 home affinity, one worker per home warehouse):
//!
//! * **static**  — placer off: the baseline 2PC fraction and tpmC.
//! * **adapting** — placer on: re-homes execute under live traffic; this
//!   phase's p99 is the disruption measurement (Fig 8's non-disruption
//!   claim applied to placement moves).
//! * **adapted** — placer converged: the steady-state win.
//!
//! Results go to `BENCH_placement.json`. The full-size run enforces the
//! acceptance bars: 2PC fraction drops ≥5×, tpmC improves ≥1.5×, and
//! NewOrder p99 during re-homing stays bounded (< 50 ms — a cutover may
//! stall a commit for one drain, never for a multi-second outage).
//! `--quick` (the CI smoke) enforces reduced bars: ≥3× fraction drop,
//! ≥1.2× tpmC, and at least one re-home applied.
//!
//! Run: `cargo run --release -p polardbx-bench --bin placement_bench [--quick]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use polardbx::{ClusterConfig, PlacerConfig, PolarDbx, Session};
use polardbx_bench::{closed_loop, fmt_dur, header, quick, row};
use polardbx_common::DcId;
use polardbx_mt::RehomeConfig;
use polardbx_placement::PlannerConfig;
use polardbx_workloads::tpcc::{TpccConfig, TpccDriver};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Phase {
    name: &'static str,
    tpmc: f64,
    two_phase_fraction: f64,
    p99: Duration,
    aborts: u64,
    rehomes: u64,
}

/// Run the skewed mix for `dur` with one closed-loop worker per home
/// warehouse. `op` returns true only for committed NewOrders, so the
/// loop's tps/p99 are tpmC-rate and NewOrder latency.
fn run_phase(
    name: &'static str,
    db: &PolarDbx,
    driver: &TpccDriver,
    sessions: &[Session],
    rngs: &[Mutex<StdRng>],
    dur: Duration,
) -> Phase {
    let m = db.txn_metrics();
    m.reset();
    let aborts = AtomicU64::new(0);
    let r = closed_loop(sessions.len(), dur, |t| {
        let mut rng = rngs[t].lock();
        match driver.transaction_from(&sessions[t], &mut rng, t as i64) {
            Ok(counted) => counted,
            Err(e) if e.is_retryable() => {
                aborts.fetch_add(1, Ordering::Relaxed);
                if std::env::var_os("PLACEMENT_BENCH_DEBUG").is_some() {
                    eprintln!("abort: {e}");
                }
                false
            }
            Err(e) => panic!("bench transaction failed: {e}"),
        }
    });
    Phase {
        name,
        tpmc: r.tps() * 60.0,
        two_phase_fraction: m.two_phase_fraction(),
        p99: r.p99_latency,
        aborts: aborts.load(Ordering::Relaxed),
        rehomes: m.rehomes_applied.get(),
    }
}

fn main() {
    let quick = quick();
    let dur = if quick { Duration::from_millis(700) } else { Duration::from_secs(3) };
    // One DN per home warehouse: the converged placement gives every hot
    // clique its own DN, so the adapted phase measures the 1PC win rather
    // than two cliques serializing on a shared DN mailbox.
    let warehouses: i64 = if quick { 4 } else { 8 };
    let dns = warehouses as u32;

    let db = PolarDbx::build(ClusterConfig { dns, cns_per_dc: 2, ..Default::default() }).unwrap();
    let driver = TpccDriver::setup(&db, TpccConfig::skewed(warehouses)).unwrap();
    let sessions: Vec<Session> = (0..warehouses).map(|_| db.connect(DcId(1))).collect();
    let rngs: Vec<Mutex<StdRng>> =
        (0..warehouses).map(|i| Mutex::new(StdRng::seed_from_u64(0x9E37 + i as u64))).collect();

    println!(
        "# placement_bench — adaptive re-homing on skewed TPC-C-lite \
         ({warehouses} warehouses, {dns} DNs, {} per phase)",
        fmt_dur(dur)
    );
    println!();

    // MVCC garbage collection (as in fig8_elasticity — every real
    // deployment runs this): district and stock rows are rewritten every
    // transaction, and without GC their version chains grow for the whole
    // run, so later phases would measure chain-walk cost instead of the
    // placement win. Horizon lags 100ms of HLC physical time behind the DN
    // clocks — two orders of magnitude beyond this workload's txn lifetime,
    // so no in-flight snapshot can lose its visible version, while hot-row
    // chains stay short enough that all three phases measure steady state.
    let gc_stop = Arc::new(AtomicBool::new(false));
    let gc_handle = {
        let stop = Arc::clone(&gc_stop);
        let dns: Vec<_> = db.dns();
        std::thread::spawn(move || {
            const LAG: u64 = 100 << 16; // 100ms of physical time, HLC-packed
            while !stop.load(Ordering::Relaxed) {
                for dn in &dns {
                    let horizon = dn.service.clock.now().raw().saturating_sub(LAG);
                    dn.rw.engine.purge(horizon);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    // Phase 1: static round-robin placement. The co-access sketch observes
    // this traffic, so the placer starts phase 2 with a warm graph.
    let stat = run_phase("static", &db, &driver, &sessions, &rngs, dur);

    // Phase 2: placer on — re-homes run under live traffic.
    db.start_placer(PlacerConfig {
        interval: if quick { Duration::from_millis(40) } else { Duration::from_millis(100) },
        // Slack 1.5 lets a DN absorb one full warehouse clique (its fair
        // share) but not two — the planner spreads cliques 1:1 over DNs.
        planner: PlannerConfig { max_moves: 16, min_edge_weight: 4, balance_slack: 1.5 },
        // No spacing between moves: the adapting phase *is* the disruption
        // measurement, and its p99 bar polices what the default min-gap
        // throttle would otherwise smooth over.
        rehome: RehomeConfig { min_gap: Duration::ZERO, max_per_pass: 16 },
    });
    let adapting = run_phase("adapting", &db, &driver, &sessions, &rngs, dur);

    // Phase 3: converged steady state (the placer idles: nothing left to
    // colocate).
    let adapted = run_phase("adapted", &db, &driver, &sessions, &rngs, dur);

    header(&["phase", "tpmC", "2PC fraction", "NewOrder p99", "retryable aborts", "rehomes"]);
    for p in [&stat, &adapting, &adapted] {
        row(&[
            p.name.to_string(),
            format!("{:.0}", p.tpmc),
            format!("{:.4}", p.two_phase_fraction),
            fmt_dur(p.p99),
            p.aborts.to_string(),
            p.rehomes.to_string(),
        ]);
    }
    println!();
    println!("  txn metrics: {}", db.txn_metrics().report());

    let frac_drop = if adapted.two_phase_fraction > 0.0 {
        stat.two_phase_fraction / adapted.two_phase_fraction
    } else {
        f64::INFINITY
    };
    let tpmc_gain = adapted.tpmc / stat.tpmc;
    let total_rehomes = adapting.rehomes + adapted.rehomes;
    println!(
        "  2PC fraction {:.4} → {:.4} ({frac_drop:.1}x drop) · tpmC {:.0} → {:.0} \
         ({tpmc_gain:.2}x) · p99 during re-homing {} · {total_rehomes} rehomes",
        stat.two_phase_fraction,
        adapted.two_phase_fraction,
        stat.tpmc,
        adapted.tpmc,
        fmt_dur(adapting.p99),
    );

    let phase_json = |p: &Phase| {
        format!(
            "{{\"phase\": \"{}\", \"tpmc\": {:.1}, \"two_phase_fraction\": {:.5}, \
             \"new_order_p99_us\": {}, \"retryable_aborts\": {}, \"rehomes\": {}}}",
            p.name,
            p.tpmc,
            p.two_phase_fraction,
            p.p99.as_micros(),
            p.aborts,
            p.rehomes,
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"placement_bench\",\n  \"warehouses\": {warehouses},\n  \
         \"dns\": {dns},\n  \"phases\": [{}, {}, {}],\n  \
         \"two_phase_fraction_drop\": {},\n  \"tpmc_gain\": {tpmc_gain:.3},\n  \
         \"p99_during_rehoming_us\": {},\n  \"rehomes_applied\": {total_rehomes}\n}}\n",
        phase_json(&stat),
        phase_json(&adapting),
        phase_json(&adapted),
        if frac_drop.is_finite() { format!("{frac_drop:.2}") } else { "1e9".into() },
        adapting.p99.as_micros(),
    );
    std::fs::write("BENCH_placement.json", &json).unwrap();
    println!("  wrote BENCH_placement.json");

    gc_stop.store(true, Ordering::Relaxed);
    gc_handle.join().unwrap();
    db.shutdown();

    // Bars. The full run enforces the ISSUE acceptance numbers; the
    // downsized CI smoke is noisier, so it enforces reduced strength.
    let (min_drop, min_gain) = if quick { (3.0, 1.2) } else { (5.0, 1.5) };
    let mut failed = false;
    if total_rehomes == 0 {
        println!("  FAIL: placer applied no re-homes");
        failed = true;
    }
    // `is_nan` guards keep the bars fail-closed: a 0/0 ratio from a
    // degenerate run must not slip past a plain `<` comparison.
    if frac_drop < min_drop || frac_drop.is_nan() {
        println!("  FAIL: 2PC fraction drop {frac_drop:.2}x below the {min_drop}x bar");
        failed = true;
    }
    if tpmc_gain < min_gain || tpmc_gain.is_nan() {
        println!("  FAIL: tpmC gain {tpmc_gain:.2}x below the {min_gain}x bar");
        failed = true;
    }
    if !quick && adapting.p99 > Duration::from_millis(50) {
        println!(
            "  FAIL: NewOrder p99 during re-homing {} above the 50ms bound",
            fmt_dur(adapting.p99)
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
