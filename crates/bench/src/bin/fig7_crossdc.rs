//! Fig 7 — Cross-DC distributed transactions: HLC-SI vs TSO-SI vs Clock-SI.
//!
//! Deployment mirrors §VII-A: three datacenters, two CN servers and one DN
//! per DC, ~1 ms cross-DC RTT. For TSO-SI the oracle lives in DC1, so
//! coordinators in DC2/DC3 pay a full cross-DC round trip for every
//! timestamp (two per read-write transaction). Sysbench oltp-write-only
//! and oltp-read-only run in closed loop; the table reports peak
//! throughput and latency per scheme.
//!
//! Run: `cargo run --release -p polardbx-bench --bin fig7_crossdc [--quick]`

use std::sync::Arc;
use std::time::Duration;

use polardbx_bench::{closed_loop, fmt_dur, header, quick, row, SlowSink};
use polardbx_common::{DcId, IdGenerator, NodeId, TableId, TenantId};
use polardbx_hlc::{Clock, ClockSiClock, Hlc, RealClock, SkewedClock, TsoClient, TsoServer};
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use polardbx_storage::engine::{LocalDurability, SyncLocalDurability};
use polardbx_storage::StorageEngine;
use polardbx_txn::{Coordinator, DnService, TxnMetrics, TxnMsg};
use polardbx_wal::{LogBuffer, LogSink};
use polardbx_workloads::sysbench::{self, RouteFn, SysbenchConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Modelled PolarFS log-write cost per DN flush, charged in the DN
/// durability comparison section (§II): commit-time durability is not
/// free on the paper's testbed either, and group commit is what keeps it
/// off the critical path. The scheme-comparison table above it runs on
/// instant sinks — it isolates the timestamp schemes, not the log device.
const DN_FSYNC: Duration = Duration::from_micros(200);

/// Closed-loop clients for the DN durability comparison. Lower than the
/// scheme table's thread count on purpose: with a real per-flush cost,
/// 48 writers over 3 k rows tips into an abort storm (conflict → abort
/// record → flush → longer txns → more conflicts) in BOTH configurations,
/// which measures the spiral rather than the durability pipeline.
const DURABILITY_THREADS: usize = 24;

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

struct TsoStub;
impl Handler<polardbx_hlc::TsoMsg> for TsoStub {
    fn handle(&self, _f: NodeId, m: polardbx_hlc::TsoMsg) -> polardbx_hlc::TsoMsg {
        m
    }
}

// The paper's own names for the three snapshot-isolation schemes.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Copy, Debug, PartialEq)]
enum Scheme {
    HlcSi,
    TsoSi,
    ClockSi,
}

struct World {
    coordinators: Vec<Arc<Coordinator>>, // 2 per DC, 6 total
    dns: Vec<Arc<StorageEngine>>,        // 1 per DC
    route: Box<RouteFn>,
    cfg: SysbenchConfig,
    /// Shared across every coordinator, so one report covers the world.
    txn_metrics: Arc<TxnMetrics>,
}

fn build(scheme: Scheme, latency: LatencyMatrix) -> World {
    // The scheme table charges no flush cost: every DN group-commits over
    // an instant sink, so the cells isolate the SI schemes themselves.
    build_with_durability(scheme, latency, true, Duration::ZERO)
}

fn build_with_durability(
    scheme: Scheme,
    latency: LatencyMatrix,
    grouped: bool,
    fsync: Duration,
) -> World {
    let net = SimNet::new(latency.clone());
    let trx_ids = Arc::new(IdGenerator::new());
    let cfg = SysbenchConfig { rows: 3000, ..Default::default() };

    // TSO infrastructure (its own fabric, same latency model).
    let tso_net = SimNet::new(latency);
    let tso_node = NodeId(500);
    tso_net.register(tso_node, DcId(1), TsoServer::new());

    // Nodes have imperfect NTP sync: ±3 ms of skew, applied identically to
    // the decentralized schemes. HLC absorbs it through the logical clock;
    // Clock-SI must wait it out (§IV).
    let skew_counter = std::sync::atomic::AtomicI64::new(0);
    let clock_for = |node: NodeId, dc: DcId| -> Arc<dyn Clock> {
        let skew = (skew_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 7) - 3;
        match scheme {
            Scheme::HlcSi => Hlc::with_physical(SkewedClock::new(Arc::new(RealClock), skew)),
            Scheme::TsoSi => {
                tso_net.register(node, dc, Arc::new(TsoStub) as Arc<dyn Handler<polardbx_hlc::TsoMsg>>);
                TsoClient::new(Arc::clone(&tso_net), node, tso_node)
            }
            Scheme::ClockSi => {
                ClockSiClock::new(SkewedClock::new(Arc::new(RealClock), skew), 8)
            }
        }
    };

    // One DN per DC hosting one shard table.
    let base_table = cfg.table.raw() * 10;
    let mut dns = Vec::new();
    for dc in 1..=3u64 {
        let dn_id = NodeId(100 + dc);
        let log = LogBuffer::new(SlowSink::new(fsync) as Arc<dyn LogSink>);
        let engine = if grouped {
            StorageEngine::with_durability(LocalDurability::new(log))
        } else {
            StorageEngine::with_durability(SyncLocalDurability::new(log))
        };
        engine.create_table(TableId(base_table + dc), TenantId(1));
        dns.push(Arc::clone(&engine));
        let dn = DnService::new(dn_id, engine, clock_for(dn_id, DcId(dc)));
        net.register(dn_id, DcId(dc), dn as Arc<dyn Handler<TxnMsg>>);
    }
    // Two CNs per DC.
    let txn_metrics = Arc::new(TxnMetrics::new());
    let mut coordinators = Vec::new();
    for dc in 1..=3u64 {
        for c in 0..2u64 {
            let cn_id = NodeId(10 + dc * 2 + c);
            net.register(cn_id, DcId(dc), Arc::new(CnStub));
            coordinators.push(Arc::new(
                Coordinator::new(
                    cn_id,
                    Arc::clone(&net),
                    clock_for(cn_id, DcId(dc)),
                    Arc::clone(&trx_ids),
                )
                .with_metrics(Arc::clone(&txn_metrics)),
            ));
        }
    }
    let route: Box<RouteFn> = Box::new(move |id: i64| {
        let dc = 1 + (id as u64 % 3);
        (TableId(base_table + dc), NodeId(100 + dc))
    });
    World { coordinators, dns, route, cfg, txn_metrics }
}

fn main() {
    // The paper's testbed RTT is ~1 ms — `--quick` keeps it (shrinking the
    // latency would erase the very effect under test) and only shortens the
    // run.
    let latency = LatencyMatrix {
        intra_dc: Duration::from_micros(50),
        inter_dc: Duration::from_micros(500),
        jitter: 0.02,
    };
    let run_secs = if quick() { 1 } else { 3 };
    let threads = if quick() { 24 } else { 48 };

    println!("# Fig 7 — cross-DC transactions (3 DCs, RTT {:?})", latency.inter_dc * 2);
    println!();
    header(&["workload", "scheme", "threads", "tps", "mean lat", "p95 lat", "errors"]);

    for workload in ["oltp-write-only", "oltp-read-only"] {
        let mut peak: Vec<(Scheme, f64)> = Vec::new();
        for scheme in [Scheme::HlcSi, Scheme::TsoSi, Scheme::ClockSi] {
            let world = build(scheme, latency.clone());
            sysbench::seed(&world.cfg, &world.coordinators[0], &world.route, 1).unwrap();
            let cfg = &world.cfg;
            let route = &world.route;
            let coords = &world.coordinators;
            let result = closed_loop(threads, Duration::from_secs(run_secs), |t| {
                let coord = &coords[t % coords.len()];
                let mut rng = StdRng::seed_from_u64((t as u64) << 20 | rand::random::<u16>() as u64);
                let out = match workload {
                    "oltp-write-only" => sysbench::write_only(cfg, coord, route, &mut rng),
                    _ => sysbench::read_only(cfg, coord, route, &mut rng),
                };
                out.is_ok()
            });
            row(&[
                workload.to_string(),
                format!("{scheme:?}"),
                threads.to_string(),
                format!("{:.0}", result.tps()),
                fmt_dur(result.mean_latency),
                fmt_dur(result.p95_latency),
                result.errors.to_string(),
            ]);
            peak.push((scheme, result.tps()));
            // Commit-path shape: how many commits went one-phase vs full
            // 2PC (and any placement re-homes — none in this fixed world).
            if workload == "oltp-write-only" {
                println!("    {scheme:?} txn metrics: {}", world.txn_metrics.report());
            }
            // The DN write path group-commits: report how much flushing the
            // workload actually shared (writes only — reads never flush).
            if workload == "oltp-write-only" {
                let (mut commits, mut flushes) = (0u64, 0u64);
                for dn in &world.dns {
                    if let Some(m) = dn.wal_metrics() {
                        commits += m.commits.get();
                        flushes += m.flushes.get();
                    }
                }
                if commits > 0 {
                    println!(
                        "    {scheme:?} DN group commit: {commits} commits in {flushes} flushes ({:.3} flushes/commit, mean group {:.1})",
                        flushes as f64 / commits as f64,
                        commits as f64 / flushes.max(1) as f64,
                    );
                }
            }
        }
        let hlc = peak.iter().find(|(s, _)| *s == Scheme::HlcSi).unwrap().1;
        let tso = peak.iter().find(|(s, _)| *s == Scheme::TsoSi).unwrap().1;
        println!();
        println!(
            "  {workload}: HLC-SI vs TSO-SI throughput = {:.2}x (paper: ~1.19x peak write)",
            hlc / tso
        );
        println!();
    }

    // Multi-statement commit latency: the HLC-SI write-only cell with the
    // seed's per-transaction DN flush vs the group-commit pipeline, every
    // DN flush charged the modelled PolarFS write cost — the fig7-level
    // view of commit_bench's result.
    let cmp_threads = if quick() { DURABILITY_THREADS.min(threads) } else { DURABILITY_THREADS };
    println!(
        "## DN durability — per-transaction flush vs group commit \
         (HLC-SI write-only, {cmp_threads} threads, {DN_FSYNC:?} flush model)"
    );
    header(&["dn durability", "tps", "mean lat", "p95 lat", "errors", "flushes/commit"]);
    let mut compare = Vec::new();
    for grouped in [false, true] {
        let world = build_with_durability(Scheme::HlcSi, latency.clone(), grouped, DN_FSYNC);
        sysbench::seed(&world.cfg, &world.coordinators[0], &world.route, 1).unwrap();
        let cfg = &world.cfg;
        let route = &world.route;
        let coords = &world.coordinators;
        let result = closed_loop(cmp_threads, Duration::from_secs(run_secs), |t| {
            let coord = &coords[t % coords.len()];
            let mut rng = StdRng::seed_from_u64((t as u64) << 20 | rand::random::<u16>() as u64);
            sysbench::write_only(cfg, coord, route, &mut rng).is_ok()
        });
        let (mut commits, mut flushes) = (0u64, 0u64);
        for dn in &world.dns {
            if let Some(m) = dn.wal_metrics() {
                commits += m.commits.get();
                flushes += m.flushes.get();
            }
        }
        // The baseline provider pays one flush per record by construction
        // and exposes no group metrics — print the ratio only when the
        // group committer measured one.
        let fpc = if commits > 0 {
            format!("{:.3}", flushes as f64 / commits as f64)
        } else {
            "—".to_string()
        };
        row(&[
            if grouped { "grouped" } else { "per-txn flush" }.to_string(),
            format!("{:.0}", result.tps()),
            fmt_dur(result.mean_latency),
            fmt_dur(result.p95_latency),
            result.errors.to_string(),
            fpc,
        ]);
        compare.push(result);
    }
    println!();
    println!(
        "  group commit: {:.2}x write tps, mean commit-path latency {} -> {}",
        compare[1].tps() / compare[0].tps(),
        fmt_dur(compare[0].mean_latency),
        fmt_dur(compare[1].mean_latency),
    );
}
