//! Execution-engine benchmark: seed row engine vs morsel-driven
//! vectorized engine on a CPU-bound fig10-style aggregate.
//!
//! The workload is `SELECT g, COUNT(*), SUM(v*v) FROM t WHERE v >= k GROUP
//! BY g` over ≥1M rows in 8 partitions (one deliberately skewed), at 8
//! workers:
//!
//! * **row engine** — the seed executor's exact MPP strategy: one thread
//!   per partition (`thread::scope`), per-row `Expr::eval` filtering, and
//!   partial `AggTable`s keyed by per-row `Key::encode` allocations.
//! * **vectorized** — `MppExecutor` on a persistent pool: morsel-driven
//!   scheduling with work stealing, typed filter loops over columnar
//!   lanes, numeric vector evaluation of `v*v`, and hashed group slots
//!   with collision verification (no key allocation, no `Value` clones).
//!
//! Results (before/after and speedup) are written to `BENCH_exec.json`
//! and the per-operator metric counters are printed.
//!
//! Run: `cargo run --release -p polardbx-bench --bin exec_bench [--quick]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use polardbx_bench::{fmt_dur, quick};
use polardbx_common::{Result, Row, Value};
use polardbx_executor::operators::{apply_filter, AggTable, MemTables};
use polardbx_executor::{exec_metrics, ExecCtx, MppExecutor, TableProvider, WorkloadManager};
use polardbx_sql::expr::{AggFunc, BinOp, Expr};
use polardbx_sql::plan::{AggSpec, LogicalPlan};

const PARTITIONS: usize = 8;
const WORKERS: usize = 8;

fn build_provider(rows_per_part: usize) -> (Arc<dyn TableProvider>, usize) {
    // One skewed partition (3× the rows) so work stealing matters.
    let mut total = 0usize;
    let mut parts = Vec::with_capacity(PARTITIONS);
    for p in 0..PARTITIONS {
        let n = if p == 0 { rows_per_part * 3 } else { rows_per_part };
        let base = (p * rows_per_part * 3) as i64;
        parts.push(
            (0..n as i64)
                .map(|i| {
                    let id = base + i;
                    Row::new(vec![
                        Value::Int(id),
                        Value::Int(id % 16),
                        Value::Int((id * 37) % 1000),
                    ])
                })
                .collect::<Vec<Row>>(),
        );
        total += n;
    }
    let mut mem = MemTables::new();
    mem.add("t", parts);
    (Arc::new(mem), total)
}

fn plan() -> LogicalPlan {
    LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema: vec!["t.id".into(), "t.g".into(), "t.v".into()],
            }),
            predicate: Expr::binary(BinOp::Ge, Expr::ColumnIdx(2), Expr::int(100)),
        }),
        group_by: vec![Expr::ColumnIdx(1)],
        aggs: vec![
            AggSpec { func: AggFunc::Count, arg: None, distinct: false },
            AggSpec {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::ColumnIdx(2))),
                distinct: false,
            },
        ],
        names: vec!["g".into(), "c".into(), "s".into()],
    }
}

/// The seed executor's MPP aggregate, verbatim strategy: one scoped thread
/// per partition, row-at-a-time filter, partial `AggTable`s merged at the
/// coordinator.
fn seed_row_engine(
    provider: &Arc<dyn TableProvider>,
    plan: &LogicalPlan,
) -> Result<Vec<Row>> {
    let LogicalPlan::Aggregate { input, group_by, aggs, .. } = plan else { unreachable!() };
    let LogicalPlan::Filter { predicate, .. } = input.as_ref() else { unreachable!() };
    let nparts = provider.partitions("t");
    let queue =
        parking_lot::Mutex::new((0..nparts).collect::<Vec<usize>>());
    let partials = parking_lot::Mutex::new(Vec::<AggTable>::new());
    let err = parking_lot::Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..WORKERS.min(nparts) {
            s.spawn(|| loop {
                let Some(part) = queue.lock().pop() else { break };
                let work = || -> Result<AggTable> {
                    let ctx = ExecCtx::unrestricted();
                    let rows = provider.scan_partition("t", part)?;
                    let rows = apply_filter(rows, predicate, &ctx)?;
                    let mut t = AggTable::new(group_by.clone(), aggs.clone());
                    t.update_batch(&rows, &ctx)?;
                    Ok(t)
                };
                match work() {
                    Ok(t) => partials.lock().push(t),
                    Err(e) => {
                        *err.lock() = Some(e);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = err.into_inner() {
        return Err(e);
    }
    let mut merged = AggTable::new(group_by.clone(), aggs.clone());
    for p in partials.into_inner() {
        merged.merge(p);
    }
    merged.finish()
}


fn main() {
    let rows_per_part = if quick() { 20_000 } else { 105_000 };
    let reps = if quick() { 3 } else { 5 };
    let (provider, total) = build_provider(rows_per_part);
    let plan = plan();

    println!("# exec_bench — row engine vs vectorized, {total} rows, {WORKERS} workers");
    println!();

    let check = |rows: &[Row]| {
        let mut rows = rows.to_vec();
        rows.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()));
        rows.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>().join("\n")
    };

    // Before: the seed row engine at 8 workers. After: the morsel-driven
    // vectorized engine at 8 workers on a persistent pool. Reps are
    // interleaved (row, vectorized, row, …) so transient host noise lands
    // on both engines rather than skewing one measurement block; best-of
    // is taken per engine.
    let pool = WorkloadManager::new(WORKERS, WORKERS, 1.0, 1.0);
    let mpp = MppExecutor::with_pool(WORKERS, pool);
    let ctx = ExecCtx::unrestricted();
    // Warm-up both engines, then reset the counters so the report reflects
    // the measured reps only.
    let mut row_result = check(&seed_row_engine(&provider, &plan).unwrap());
    let mut vec_result = check(&mpp.execute(&plan, &provider, &ctx).unwrap());
    exec_metrics().reset();
    let mut t_row = Duration::MAX;
    let mut t_vec = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = seed_row_engine(&provider, &plan).unwrap();
        t_row = t_row.min(t0.elapsed());
        row_result = check(&out);

        let t0 = Instant::now();
        let out = mpp.execute(&plan, &provider, &ctx).unwrap();
        t_vec = t_vec.min(t0.elapsed());
        vec_result = check(&out);
    }

    assert_eq!(row_result, vec_result, "engines disagree");

    let speedup = t_row.as_secs_f64() / t_vec.as_secs_f64();
    println!("  row engine (seed, {WORKERS} workers):  {}", fmt_dur(t_row));
    println!("  vectorized (morsel, {WORKERS} workers): {}", fmt_dur(t_vec));
    println!("  speedup: {speedup:.2}x");
    println!();
    print!("{}", exec_metrics().report());

    let json = format!(
        "{{\n  \"benchmark\": \"exec_bench\",\n  \"rows\": {total},\n  \"workers\": {WORKERS},\n  \"partitions\": {PARTITIONS},\n  \"query\": \"SELECT g, COUNT(*), SUM(v*v) FROM t WHERE v >= 100 GROUP BY g\",\n  \"before_row_engine_ms\": {:.3},\n  \"after_vectorized_ms\": {:.3},\n  \"speedup\": {:.3}\n}}\n",
        t_row.as_secs_f64() * 1e3,
        t_vec.as_secs_f64() * 1e3,
        speedup,
    );
    std::fs::write("BENCH_exec.json", &json).unwrap();
    println!();
    println!("  wrote BENCH_exec.json");

    if speedup < 2.0 {
        println!("  WARNING: speedup below the 2x acceptance bar");
        // The full-size run enforces the bar; the downsized CI smoke run
        // only reports (shared runners are too noisy to gate on).
        if !quick() {
            std::process::exit(1);
        }
    }
}
