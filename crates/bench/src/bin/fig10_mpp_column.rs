//! Fig 10 — MPP execution and the in-memory column index on TPC-H.
//!
//! §VII-C: "after using MPP, almost all queries are greatly improved, and
//! 21 of them are improved by more than 100%. Q9 has the highest
//! improvement ratio … The ratios of Q11 and Q15 are relatively low";
//! "using column index, the latency of seven queries [Q1, Q6, Q8, Q12,
//! Q14, Q15, Q21] have been significantly reduced."
//!
//! Measurement strategy on this single-core host:
//!
//! * **Row-store serial** — measured directly.
//! * **MPP ×4** — measured-component model: `T·(f/4 + 1−f) + overhead`
//!   where `f` is each plan's parallelizable cost fraction from the
//!   optimizer (see `polardbx_bench::modeled_mpp_time`). On multi-core
//!   hosts `MppExecutor` realizes this directly.
//! * **Column index** — measured directly: the same plans execute through
//!   the vectorized kernels when their shapes are columnar-eligible
//!   (single-table pipelines and single-key joins, §VI-E), and fall back
//!   to the row path otherwise.
//! * **Vectorized MPP** — measured directly: `MppExecutor` pulls batches
//!   through the morsel-driven vectorized engine (typed filter loops,
//!   hashed group slots) on the persistent worker pool. Per-operator
//!   metric counters are printed at the end.
//!
//! Run: `cargo run --release -p polardbx-bench --bin fig10_mpp_column [--quick]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_bench::{fmt_dur, header, modeled_mpp_time, parallel_fraction, quick, row};
use polardbx_common::DcId;
use polardbx_executor::{exec_metrics, execute_plan, ExecCtx, MppExecutor, TableProvider};
use polardbx_workloads::tpch;

fn main() {
    let sf = if quick() { 0.02 } else { 0.08 };
    let reps = if quick() { 3 } else { 5 };

    println!("# Fig 10 — MPP ×4 and in-memory column index, TPC-H-lite SF {sf}");
    println!();

    let db = PolarDbx::build(ClusterConfig { dns: 4, default_shards: 8, ..Default::default() })
        .unwrap();
    let s = db.connect(DcId(1));
    tpch::create_schema(&s, 8).unwrap();
    let lineitems = tpch::load(&db, tpch::ScaleFactor(sf), 99).unwrap();
    println!("  loaded {} lineitem rows", lineitems);
    for t in ["lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region"]
    {
        db.enable_column_index(t).unwrap();
    }
    println!();

    let stats = db.gms().statistics();
    let row_provider: Arc<dyn TableProvider> = Arc::new(db.provider(false));
    let col_provider: Arc<dyn TableProvider> = Arc::new(db.provider(true));
    let ctx = ExecCtx::unrestricted();

    let mpp = MppExecutor::new(4);
    exec_metrics().reset();

    header(&[
        "query",
        "row serial",
        "MPP x4 (modeled)",
        "MPP gain",
        "column index",
        "column gain",
        "vectorized",
        "vec gain",
        "f",
    ]);

    let mut mpp_over_100 = 0;
    let mut col_wins: Vec<(usize, f64)> = Vec::new();
    for q in 1..=22usize {
        let sql = tpch::query_sql(q);
        let polardbx_sql::Statement::Select(sel) = polardbx_sql::parse(sql).unwrap() else {
            unreachable!()
        };
        let plan = polardbx_optimizer::optimize_with_stats(
            polardbx_sql::build_plan(&sel, db.gms().as_ref()).unwrap(),
            &stats,
        );

        let time_with = |provider: &Arc<dyn TableProvider>| -> Duration {
            // Warm-up, then best-of-reps (stable on a shared host).
            let _ = execute_plan(&plan, provider.as_ref(), &ctx).unwrap();
            (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = execute_plan(&plan, provider.as_ref(), &ctx).unwrap();
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };

        let t_row = time_with(&row_provider);
        let t_col = time_with(&col_provider);
        let t_vec = {
            let _ = mpp.execute(&plan, &row_provider, &ctx).unwrap();
            (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = mpp.execute(&plan, &row_provider, &ctx).unwrap();
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };
        let f = parallel_fraction(&plan, &stats);
        let t_mpp = modeled_mpp_time(t_row, f, 4, Duration::from_micros(150));

        let mpp_gain = (t_row.as_secs_f64() / t_mpp.as_secs_f64() - 1.0) * 100.0;
        let col_gain = (t_row.as_secs_f64() / t_col.as_secs_f64() - 1.0) * 100.0;
        let vec_gain = (t_row.as_secs_f64() / t_vec.as_secs_f64() - 1.0) * 100.0;
        if mpp_gain > 100.0 {
            mpp_over_100 += 1;
        }
        if col_gain > 50.0 {
            col_wins.push((q, col_gain));
        }
        row(&[
            format!("Q{q}"),
            fmt_dur(t_row),
            fmt_dur(t_mpp),
            format!("{mpp_gain:+.0}%"),
            fmt_dur(t_col),
            format!("{col_gain:+.0}%"),
            fmt_dur(t_vec),
            format!("{vec_gain:+.0}%"),
            format!("{f:.2}"),
        ]);
    }

    println!();
    println!("  MPP: {mpp_over_100}/22 queries improved >100% (paper: 21/22; Q9 highest,");
    println!("  Q11/Q15 lowest — small inputs leave the CN unsaturated).");
    println!(
        "  Column index: {} queries improved >50%: {:?}",
        col_wins.len(),
        col_wins.iter().map(|(q, g)| format!("Q{q} {g:+.0}%")).collect::<Vec<_>>()
    );
    println!("  (paper: Q1 +748%, Q6 +1828%, Q8 +243%, Q12 +556%, Q14 +547%, Q15 +463%, Q21 +348%)");
    println!();
    print!("{}", exec_metrics().report());
    db.shutdown();
}
