//! Feature-gated counting allocator for the zero-allocation commit-path
//! guard (`tests/alloc_free_commit.rs`).
//!
//! With the default `count-alloc` feature on, the whole bench crate (and
//! every test binary linking it) runs under a [`GlobalAlloc`] shim that
//! forwards to the system allocator and bumps a thread-local counter while
//! the calling thread is *armed*. Arming is per-thread and scoped tightly
//! around the call under test, so warmup, other threads (epoch flusher,
//! simnet delivery) and test bookkeeping never pollute the count.
//!
//! The counter state is `const`-initialized `Cell`s — no lazy TLS init,
//! no `Drop` registration — so the shim itself never allocates or
//! recurses. Deallocations are free: the invariant under test is "no
//! *new* heap memory per steady-state commit", and frees of pooled
//! buffers would double-count.
//!
//! Debugging a violation: run the failing test with `ALLOC_TRAP=1` to get
//! a backtrace for every armed allocation (the shim disarms around the
//! trap so the diagnostics don't count themselves).

#[cfg(feature = "count-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ARMED: Cell<bool> = const { Cell::new(false) };
        static COUNT: Cell<u64> = const { Cell::new(0) };
    }

    /// System allocator with a thread-local armed counter.
    pub struct CountingAlloc;

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    #[inline]
    fn note() {
        ARMED.with(|a| {
            if a.get() {
                a.set(false);
                COUNT.with(|c| c.set(c.get() + 1));
                if std::env::var_os("ALLOC_TRAP").is_some() {
                    eprintln!("=== armed allocation ===\n{}", std::backtrace::Backtrace::force_capture());
                }
                a.set(true);
            }
        });
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note();
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            note();
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Whether the counting shim is compiled in.
    pub const ENABLED: bool = true;

    /// Reset the calling thread's counter and start counting.
    pub fn arm() {
        COUNT.with(|c| c.set(0));
        ARMED.with(|a| a.set(true));
    }

    /// Stop counting and return the number of heap allocations (alloc,
    /// alloc_zeroed, realloc) the calling thread performed while armed.
    pub fn disarm() -> u64 {
        ARMED.with(|a| a.set(false));
        COUNT.with(|c| c.get())
    }
}

#[cfg(not(feature = "count-alloc"))]
mod imp {
    /// Whether the counting shim is compiled in.
    pub const ENABLED: bool = false;

    /// No-op without the `count-alloc` feature.
    pub fn arm() {}

    /// Always 0 without the `count-alloc` feature.
    pub fn disarm() -> u64 {
        0
    }
}

pub use imp::*;

#[cfg(all(test, feature = "count-alloc"))]
mod tests {
    use super::*;

    #[test]
    fn counter_sees_armed_allocations_only() {
        // Unarmed allocation: invisible.
        let _warm = Vec::<u8>::with_capacity(64);
        arm();
        let n0 = disarm();
        assert_eq!(n0, 0, "nothing allocated while armed");

        arm();
        let v: Vec<u8> = Vec::with_capacity(256);
        let n1 = disarm();
        assert!(n1 >= 1, "an armed allocation must be counted");
        drop(v);

        // Frees don't count; re-arming resets.
        arm();
        assert_eq!(disarm(), 0);
    }

    #[test]
    fn counter_is_per_thread() {
        arm();
        std::thread::spawn(|| {
            let _v = vec![0u8; 1024];
        })
        .join()
        .unwrap();
        // The spawned thread's allocations never touch our counter (the
        // join handle itself was allocated before... no: spawn allocates
        // on *this* thread. Scope the assertion to the child only.)
        let here = disarm();
        // `spawn` allocates the thread stack bookkeeping on this thread,
        // so `here` may be nonzero — the real assertion is the child's
        // count staying isolated, checked by construction (its ARMED
        // defaults to false). Just ensure disarm terminates counting.
        arm();
        assert_eq!(disarm(), 0, "post-join counter resets (prior count {here})");
    }
}
