//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one of the paper's evaluation
//! artifacts (Fig 7–10); `EXPERIMENTS.md` records paper-vs-measured rows.
//! This library holds the pieces they share: closed-loop driver threads,
//! result-table formatting, and the measured-component MPP schedule model
//! used on single-core hosts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub mod alloc_count;

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Committed operations.
    pub ops: u64,
    /// Errors (conflicts etc.).
    pub errors: u64,
    /// Wall time.
    pub elapsed: Duration,
    /// Mean latency over successful ops.
    pub mean_latency: Duration,
    /// 95th percentile latency.
    pub p95_latency: Duration,
    /// 99th percentile latency.
    pub p99_latency: Duration,
}

impl LoopResult {
    /// Throughput in ops/second.
    pub fn tps(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run `threads` closed-loop clients for `duration`, each repeatedly
/// invoking `op(thread_id)`. Returns aggregate throughput and latency.
pub fn closed_loop(
    threads: usize,
    duration: Duration,
    op: impl Fn(usize) -> bool + Send + Sync,
) -> LoopResult {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let hist = polardbx_common::metrics::Histogram::new();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let stop = &stop;
            let ops = &ops;
            let errors = &errors;
            let hist = &hist;
            let op = &op;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    if op(t) {
                        hist.record(start.elapsed());
                        ops.fetch_add(1, Ordering::Relaxed);
                    } else {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    LoopResult {
        ops: ops.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: t0.elapsed(),
        mean_latency: hist.mean(),
        p95_latency: hist.percentile(0.95),
        p99_latency: hist.percentile(0.99),
    }
}

/// Measured-component MPP model for single-core hosts.
///
/// The host this reproduction runs on has one CPU; real wall-clock MPP
/// speedup is physically impossible, so the fig10 harness measures the
/// serial execution and models the `w`-worker schedule as
///
/// `T(w) = T_serial × (f/w + (1 − f)) + overhead`
///
/// where `f` is the parallelizable fraction of the plan (share of the
/// optimizer-estimated cost spent in partitionable operators: scans,
/// filters, partial aggregation, probe-side join work) and `overhead` is
/// the per-query task-scheduling/exchange cost measured from the MPP
/// executor's bookkeeping. On a multi-core host, `MppExecutor` achieves
/// this directly (see `crates/executor/src/mpp.rs` tests).
pub fn modeled_mpp_time(
    serial: Duration,
    parallel_fraction: f64,
    workers: usize,
    overhead: Duration,
) -> Duration {
    let f = parallel_fraction.clamp(0.0, 1.0);
    let w = workers.max(1) as f64;
    serial.mul_f64(f / w + (1.0 - f)) + overhead
}

/// Parallelizable cost fraction of a plan: partitionable operators (scan,
/// filter, probe, partial agg) over total cost.
pub fn parallel_fraction(
    plan: &polardbx_sql::plan::LogicalPlan,
    stats: &polardbx_optimizer::Statistics,
) -> f64 {
    use polardbx_optimizer::estimate;
    use polardbx_sql::plan::LogicalPlan as P;

    fn serial_cost(plan: &P, stats: &polardbx_optimizer::Statistics) -> f64 {
        // Cost of the non-partitionable spine: build sides of joins, final
        // merges, sorts and limits.
        match plan {
            P::Scan { .. } => 0.0,
            P::Filter { input, .. } | P::Project { input, .. } => serial_cost(input, stats),
            P::Aggregate { input, .. } => {
                // Partial aggregation parallelizes; final merge is ~ the
                // group count.
                serial_cost(input, stats) + estimate(plan, stats).rows_out
            }
            P::Join { left, right, .. } => {
                // Build side is executed once at the coordinator.
                estimate(left, stats).cpu + serial_cost(right, stats)
            }
            P::Sort { input, .. } | P::Limit { input, .. } => {
                let inner = estimate(input, stats);
                serial_cost(input, stats) + inner.rows_out
            }
        }
    }

    let total = estimate(plan, stats).cpu.max(1.0);
    let serial = serial_cost(plan, stats).min(total);
    1.0 - serial / total
}

/// A log sink with a fixed wall-clock wait per write: the modelled fsync
/// or PolarFS segment write the TP harnesses charge the durability path.
/// The wait yields while it spins — an fsync is an IO wait, not CPU work,
/// so the core stays free for other committers to enqueue (a plain `sleep`
/// at ~100 µs overshoots on OS timer granularity; a plain spin starves
/// low-core runners and hides the group-commit window).
pub struct SlowSink {
    inner: std::sync::Arc<polardbx_wal::VecSink>,
    delay: Duration,
}

impl SlowSink {
    /// A fresh sink charging `delay` per write.
    pub fn new(delay: Duration) -> std::sync::Arc<SlowSink> {
        std::sync::Arc::new(SlowSink { inner: polardbx_wal::VecSink::new(), delay })
    }
}

impl polardbx_wal::LogSink for SlowSink {
    fn write(&self, at: polardbx_common::Lsn, bytes: bytes::Bytes) -> polardbx_common::Result<()> {
        let t0 = Instant::now();
        while t0.elapsed() < self.delay {
            std::thread::yield_now();
        }
        self.inner.write(at, bytes)
    }
}

/// Format a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}µs", d.as_secs_f64() * 1e6)
    }
}

/// Shared CLI flag: `--quick` shrinks durations for smoke runs.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Re-export for binaries.
pub use std::time::Duration as Dur;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_counts() {
        let r = closed_loop(2, Duration::from_millis(50), |_| true);
        assert!(r.ops > 0);
        assert_eq!(r.errors, 0);
        assert!(r.tps() > 0.0);
    }

    #[test]
    fn mpp_model_monotone_in_workers() {
        let t = Duration::from_millis(100);
        let w1 = modeled_mpp_time(t, 0.9, 1, Duration::from_millis(1));
        let w4 = modeled_mpp_time(t, 0.9, 4, Duration::from_millis(1));
        assert!(w4 < w1);
        // Amdahl: with f=0.9, speedup at w=4 is bounded by ~3.08×.
        let speedup = w1.as_secs_f64() / w4.as_secs_f64();
        assert!(speedup > 2.0 && speedup < 3.2, "speedup {speedup}");
        // Low parallel fraction → little gain.
        let lf = modeled_mpp_time(t, 0.1, 4, Duration::ZERO);
        assert!(lf > t.mul_f64(0.9));
    }

    #[test]
    fn fmt_dur_ranges() {
        assert!(fmt_dur(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
    }
}
