//! Asynchronous-commit waiter registry (§III "Asynchronous Commit").
//!
//! "After the foreground thread invokes Paxos to send redo log entries to
//! the followers, it stores the transaction's context in a map data
//! structure and then proceeds to process other transactions. A new
//! `async_log_committer` thread … iterates the map to find a list of
//! transactions whose last MTR's LSN exceeds DLSN … commits them and
//! returns the results to the client."
//!
//! Here the "context" is a channel the foreground thread blocks on (or
//! polls); `advance(dlsn)` plays the role of the committer thread's sweep.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

use polardbx_common::{Error, Lsn, Result};

/// Registry of transactions awaiting durability of their last MTR.
#[derive(Default)]
pub struct CommitWaiters {
    // BTreeMap so a DLSN advance drains exactly the ready prefix.
    map: Mutex<BTreeMap<Lsn, Vec<Sender<CommitOutcome>>>>,
    /// Completed-through mark: waits at or below complete immediately.
    durable: Mutex<Lsn>,
}

/// What the committer tells a waiting transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The LSN is durable on a majority; the transaction may commit.
    Durable,
    /// Leadership was lost; the log tail may be truncated — abort.
    LeadershipLost,
}

impl CommitWaiters {
    /// Empty registry.
    pub fn new() -> CommitWaiters {
        CommitWaiters::default()
    }

    /// Register interest in `lsn` becoming durable. Returns a receiver the
    /// foreground thread can block on. If `lsn` is already durable the
    /// receiver is immediately ready.
    pub fn register(&self, lsn: Lsn) -> Receiver<CommitOutcome> {
        let (tx, rx) = bounded(1);
        if *self.durable.lock() >= lsn {
            let _ = tx.send(CommitOutcome::Durable);
            return rx;
        }
        self.map.lock().entry(lsn).or_default().push(tx);
        // Double-check: DLSN may have advanced between the check and insert.
        // Copy the mark out first — `self.advance(*self.durable.lock())`
        // would hold the guard (argument temporaries live to the end of
        // the statement) across advance(), which re-locks `durable`:
        // a self-deadlock on the race path. polarlint's lockdep witness
        // catches exactly this shape at runtime.
        let durable_now = *self.durable.lock();
        if durable_now >= lsn {
            self.advance(durable_now);
        }
        rx
    }

    /// DLSN advanced to `dlsn`: complete every waiter at or below it.
    pub fn advance(&self, dlsn: Lsn) {
        {
            let mut d = self.durable.lock();
            if *d < dlsn {
                *d = dlsn;
            }
        }
        let ready: Vec<(Lsn, Vec<Sender<CommitOutcome>>)> = {
            let mut map = self.map.lock();
            let keep = map.split_off(&Lsn(dlsn.raw() + 1));
            std::mem::replace(&mut *map, keep).into_iter().collect()
        };
        for (_, senders) in ready {
            for tx in senders {
                let _ = tx.send(CommitOutcome::Durable);
            }
        }
    }

    /// Leadership lost: fail everything still waiting.
    pub fn fail_all(&self) {
        let all: Vec<_> = std::mem::take(&mut *self.map.lock()).into_iter().collect();
        for (_, senders) in all {
            for tx in senders {
                let _ = tx.send(CommitOutcome::LeadershipLost);
            }
        }
    }

    /// Convenience: block until `lsn` durable or `timeout`.
    pub fn wait(&self, lsn: Lsn, timeout: Duration) -> Result<()> {
        let rx = self.register(lsn);
        match rx.recv_timeout(timeout) {
            Ok(CommitOutcome::Durable) => Ok(()),
            Ok(CommitOutcome::LeadershipLost) => {
                Err(Error::LeaseLost { holder: 0 })
            }
            Err(_) => Err(Error::Timeout { what: format!("durability of {lsn}") }),
        }
    }

    /// Current durable mark.
    pub fn durable(&self) -> Lsn {
        *self.durable.lock()
    }

    /// Number of transactions parked (for tests / introspection).
    pub fn pending(&self) -> usize {
        self.map.lock().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn waiter_completes_on_advance() {
        let w = CommitWaiters::new();
        let rx = w.register(Lsn(100));
        assert!(rx.try_recv().is_err());
        w.advance(Lsn(99));
        assert!(rx.try_recv().is_err(), "99 < 100 must not complete");
        w.advance(Lsn(100));
        assert_eq!(rx.recv().unwrap(), CommitOutcome::Durable);
    }

    #[test]
    fn already_durable_completes_immediately() {
        let w = CommitWaiters::new();
        w.advance(Lsn(500));
        let rx = w.register(Lsn(200));
        assert_eq!(rx.try_recv().unwrap(), CommitOutcome::Durable);
    }

    #[test]
    fn advance_drains_prefix_only() {
        let w = CommitWaiters::new();
        let a = w.register(Lsn(10));
        let b = w.register(Lsn(20));
        let c = w.register(Lsn(30));
        w.advance(Lsn(20));
        assert_eq!(a.try_recv().unwrap(), CommitOutcome::Durable);
        assert_eq!(b.try_recv().unwrap(), CommitOutcome::Durable);
        assert!(c.try_recv().is_err());
        assert_eq!(w.pending(), 1);
    }

    #[test]
    fn fail_all_aborts_waiters() {
        let w = CommitWaiters::new();
        let rx = w.register(Lsn(10));
        w.fail_all();
        assert_eq!(rx.recv().unwrap(), CommitOutcome::LeadershipLost);
    }

    #[test]
    fn wait_timeout() {
        let w = CommitWaiters::new();
        let err = w.wait(Lsn(10), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }));
    }

    /// Regression: register()'s double-check path used to call
    /// `self.advance(*self.durable.lock())`, holding the `durable` guard
    /// across advance()'s own `durable.lock()` — a self-deadlock whenever
    /// the DLSN advanced between the fast-path check and the map insert.
    /// Hammering register/advance from both sides exercises that window;
    /// with the lockdep witness enabled the old code aborts on the
    /// recursive acquisition instead of hanging.
    #[test]
    fn register_races_advance_without_deadlock() {
        for round in 0..16u64 {
            let w = Arc::new(CommitWaiters::new());
            let adv = {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for lsn in 1..=400u64 {
                        w.advance(Lsn(lsn));
                    }
                })
            };
            let mut regs = vec![];
            for t in 0..2u64 {
                let w = Arc::clone(&w);
                regs.push(std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let lsn = Lsn((round * 13 + t * 7 + i) % 400 + 1);
                        let _rx = w.register(lsn);
                    }
                }));
            }
            adv.join().unwrap();
            for r in regs {
                r.join().unwrap();
            }
            // Everything at or below the final DLSN must have drained.
            w.advance(Lsn(400));
            assert_eq!(w.pending(), 0);
        }
    }

    #[test]
    fn many_threads_wait_one_committer() {
        let w = Arc::new(CommitWaiters::new());
        let mut handles = vec![];
        for i in 1..=32u64 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                w.wait(Lsn(i * 10), Duration::from_secs(5))
            }));
        }
        // Committer thread advances in steps, like DLSN does.
        let committer = {
            let w = Arc::clone(&w);
            std::thread::spawn(move || {
                for step in 1..=8u64 {
                    std::thread::sleep(Duration::from_millis(2));
                    w.advance(Lsn(step * 40));
                }
            })
        };
        for h in handles {
            h.join().unwrap().unwrap();
        }
        committer.join().unwrap();
        assert_eq!(w.pending(), 0);
    }
}
