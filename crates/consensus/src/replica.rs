//! The Paxos replica state machine.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::metrics::Counter;
use polardbx_common::time::mono_now;
use polardbx_common::{DcId, Error, Lsn, NodeId, Result};
use polardbx_simnet::{Handler, SimNet};
use polardbx_wal::{FrameBatcher, LogSink, Mtr, PaxosFrame, MAX_FRAME_PAYLOAD};

use crate::msg::PaxosMsg;
use crate::waiters::CommitWaiters;

/// Replica roles (§III). `Candidate` is the transient campaigning state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Executes transactions; the only writer of the log.
    Leader,
    /// Persists and replays the log; electable.
    Follower,
    /// Persists the log only — "has no data … can participate in leader
    /// election but cannot be selected as the leader."
    Logger,
    /// Campaigning for leadership.
    Candidate,
}

/// Callback invoked on followers when log becomes applicable (`<= DLSN`).
/// The DN storage engine hooks its redo replay here.
pub type ApplyFn = Box<dyn Fn(&PaxosFrame) + Send + Sync>;

/// Callback invoked when a deposed leader must clean conflicting state:
/// receives the `(dlsn, old_last_lsn]` range whose dirty pages must be
/// evicted and reloaded from PolarFS (§III "Leader Election").
pub type CleanupFn = Box<dyn Fn(Lsn, Lsn) + Send + Sync>;

struct State {
    epoch: u64,
    voted_in: u64,
    role: Role,
    is_logger: bool,
    leader: Option<NodeId>,
    /// In-memory copy of the frame log (persisted via `sink` as received).
    log: Vec<PaxosFrame>,
    last_lsn: Lsn,
    dlsn: Lsn,
    applied: Lsn,
    /// Leader only: highest LSN each peer has persisted.
    match_lsn: HashMap<NodeId, Lsn>,
    /// Candidate only: votes received this epoch.
    votes: HashSet<NodeId>,
    last_leader_contact: Duration,
}

/// Recovery-path counters: how often chaos (lost, duplicated, reordered
/// messages; dead leaders) forced the protocol off its happy path.
#[derive(Debug, Default)]
pub struct ConsensusMetrics {
    /// Gap-recovery retransmissions sent by the leader after a rejected ack.
    pub retransmits: Counter,
    /// Campaigns started on election timeout.
    pub elections_started: Counter,
    /// Campaigns that won leadership.
    pub elections_won: Counter,
    /// Duplicate frames skipped by followers (at-least-once delivery).
    pub duplicate_frames: Counter,
    /// Appends rejected for a log gap (triggers reject-resend recovery).
    pub gap_rejects: Counter,
    /// Frames encoded on the replicate path. Should equal frames produced:
    /// the leader encodes once and shares the bytes across its own sink
    /// write and every peer (retransmissions re-encode, which is fine —
    /// they are off the happy path and counted in `retransmits`).
    pub frames_encoded: Counter,
}

impl ConsensusMetrics {
    /// One-line summary for harness output.
    pub fn report(&self) -> String {
        format!(
            "retransmits={} · elections: started={} won={} · dup-frames={} · gap-rejects={} · frames-encoded={}",
            self.retransmits.get(),
            self.elections_started.get(),
            self.elections_won.get(),
            self.duplicate_frames.get(),
            self.gap_rejects.get(),
            self.frames_encoded.get(),
        )
    }
}

/// A snapshot of replica state for tests and monitoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Current role.
    pub role: Role,
    /// Current epoch.
    pub epoch: u64,
    /// End of the local log.
    pub last_lsn: Lsn,
    /// Durable LSN as known locally.
    pub dlsn: Lsn,
    /// LSN applied to the local state machine.
    pub applied: Lsn,
    /// Known leader.
    pub leader: Option<NodeId>,
}

/// One member of a Paxos group.
pub struct Replica {
    /// This replica's node id.
    pub me: NodeId,
    /// Datacenter.
    pub dc: DcId,
    members: Vec<NodeId>,
    net: Arc<SimNet<PaxosMsg>>,
    st: Mutex<State>,
    /// Commit waiters — the asynchronous-commit registry.
    pub waiters: CommitWaiters,
    /// Recovery-path counters (retransmits, elections, duplicates).
    pub metrics: ConsensusMetrics,
    sink: Arc<dyn LogSink>,
    apply: Mutex<Option<ApplyFn>>,
    cleanup: Mutex<Option<CleanupFn>>,
    ticker_stop: AtomicBool,
    /// Optional history tap: leadership changes are annotated into recorded
    /// histories so isolation witnesses carry their schedule context.
    recorder: Mutex<Option<Arc<polardbx_common::HistoryRecorder>>>,
}

impl Replica {
    /// Create a replica. `members` must include `me`.
    pub fn new(
        me: NodeId,
        dc: DcId,
        members: Vec<NodeId>,
        is_logger: bool,
        net: Arc<SimNet<PaxosMsg>>,
        sink: Arc<dyn LogSink>,
    ) -> Arc<Replica> {
        assert!(members.contains(&me), "members must include self");
        Arc::new(Replica {
            me,
            dc,
            members,
            net,
            st: Mutex::new(State {
                epoch: 0,
                voted_in: 0,
                role: if is_logger { Role::Logger } else { Role::Follower },
                is_logger,
                leader: None,
                log: Vec::new(),
                last_lsn: Lsn::ZERO,
                dlsn: Lsn::ZERO,
                applied: Lsn::ZERO,
                match_lsn: HashMap::new(),
                votes: HashSet::new(),
                last_leader_contact: mono_now(),
            }),
            waiters: CommitWaiters::new(),
            metrics: ConsensusMetrics::default(),
            sink,
            apply: Mutex::new(None),
            cleanup: Mutex::new(None),
            ticker_stop: AtomicBool::new(false),
            recorder: Mutex::new(None),
        })
    }

    /// Rebuild a replica from its durable log after an amnesia restart.
    ///
    /// `frames` is the checksum-valid prefix recovered by
    /// [`polardbx_wal::scan_frames`] over the node's durable sink (torn
    /// tail already truncated away); `sink` is that same sink, so new
    /// appends extend the surviving log. Volatile coordinates are
    /// re-derived conservatively: the epoch is the highest epoch recorded
    /// in the log (and `voted_in` matches it, so the replica cannot
    /// re-grant a vote it may have cast before the crash), while DLSN and
    /// the applied cursor restart at zero — the durable horizon is
    /// *learned* from the leader's next heartbeat, never remembered.
    /// Until that heartbeat arrives the replica acks `rejected` whenever
    /// its log ends below the group DLSN, which drives the leader's
    /// reject-resend path to backfill every slot it missed while down.
    pub fn recovered(
        me: NodeId,
        dc: DcId,
        members: Vec<NodeId>,
        is_logger: bool,
        net: Arc<SimNet<PaxosMsg>>,
        sink: Arc<dyn LogSink>,
        frames: Vec<PaxosFrame>,
    ) -> Arc<Replica> {
        assert!(members.contains(&me), "members must include self");
        let epoch = frames.iter().map(|f| f.epoch).max().unwrap_or(0);
        let last_lsn = frames.last().map(|f| f.lsn_end).unwrap_or(Lsn::ZERO);
        Arc::new(Replica {
            me,
            dc,
            members,
            net,
            st: Mutex::new(State {
                epoch,
                voted_in: epoch,
                role: if is_logger { Role::Logger } else { Role::Follower },
                is_logger,
                leader: None,
                log: frames,
                last_lsn,
                dlsn: Lsn::ZERO,
                applied: Lsn::ZERO,
                match_lsn: HashMap::new(),
                votes: HashSet::new(),
                last_leader_contact: mono_now(),
            }),
            waiters: CommitWaiters::new(),
            metrics: ConsensusMetrics::default(),
            sink,
            apply: Mutex::new(None),
            cleanup: Mutex::new(None),
            ticker_stop: AtomicBool::new(false),
            recorder: Mutex::new(None),
        })
    }

    /// Install a history tap: commit-decision context (leadership changes)
    /// is annotated into `rec` for isolation-checker reports.
    pub fn set_event_recorder(&self, rec: Arc<polardbx_common::HistoryRecorder>) {
        *self.recorder.lock() = Some(rec);
    }

    /// Annotate the history recorder, if installed. Called with no other
    /// locks held.
    fn note_event(&self, label: String) {
        let rec = self.recorder.lock().clone();
        if let Some(rec) = rec {
            rec.note(self.me, label);
        }
    }

    /// Install the apply callback (follower-side redo replay).
    pub fn set_apply(&self, f: ApplyFn) {
        *self.apply.lock() = Some(f);
    }

    /// Install the deposed-leader cleanup callback.
    pub fn set_cleanup(&self, f: CleanupFn) {
        *self.cleanup.lock() = Some(f);
    }

    /// Snapshot of current state.
    pub fn status(&self) -> ReplicaStatus {
        let st = self.st.lock();
        ReplicaStatus {
            role: st.role,
            epoch: st.epoch,
            last_lsn: st.last_lsn,
            dlsn: st.dlsn,
            applied: st.applied,
            leader: st.leader,
        }
    }

    /// Force-promote to leader at `epoch` (bootstrap: the initial topology
    /// is installed by GMS rather than elected).
    pub fn bootstrap_leader(&self, epoch: u64) {
        let mut st = self.st.lock();
        assert!(!st.is_logger, "logger cannot lead");
        st.epoch = epoch;
        st.role = Role::Leader;
        st.leader = Some(self.me);
        st.match_lsn.clear();
        drop(st);
        self.note_event(format!("paxos-bootstrap-leader epoch={epoch}"));
        self.broadcast_heartbeat();
    }

    fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Leader API: replicate a batch of MTRs. Persists locally, pipelines
    /// frames to followers, and returns the end LSN of the batch. The
    /// caller registers that LSN with [`Replica::waiters`] (async commit)
    /// or uses [`Replica::replicate_and_wait`].
    pub fn replicate(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        if mtrs.is_empty() {
            return Ok(self.st.lock().last_lsn);
        }
        let (encoded, end_lsn, epoch, dlsn) = {
            let mut st = self.st.lock();
            if st.role != Role::Leader {
                return Err(Error::NotLeader { leader_hint: st.leader.map(|n| n.raw()) });
            }
            let mut batcher =
                FrameBatcher::new(st.epoch, st.log.len() as u64, st.last_lsn);
            let mut frames = Vec::new();
            for m in mtrs {
                if let Some(f) = batcher.push(m.clone()) {
                    frames.push(f);
                }
            }
            // lint:allow(guard_blocking, "FrameBatcher::flush is an in-memory drain, not I/O")
            if let Some(f) = batcher.flush() {
                frames.push(f);
            }
            let mut encoded = Vec::with_capacity(frames.len());
            for f in frames {
                // Encode exactly once; `Bytes` clones share the buffer, so
                // the sink write and every peer's AppendEntries reuse the
                // same encoding (and its checksum computation).
                let enc = f.encode();
                self.metrics.frames_encoded.inc();
                // Leader durability: the frame goes to PolarFS before it is
                // offered to followers ("the redo log entries are flushed to
                // PolarFS, which will also be sent to followers").
                // lint:allow(guard_blocking, "sink write deliberately under st: last_lsn/log must not expose a hole ahead of the sink")
                self.sink.write(f.lsn_start, enc.clone())?;
                st.last_lsn = f.lsn_end;
                encoded.push(enc);
                st.log.push(f);
            }
            let me = self.me;
            let last = st.last_lsn;
            st.match_lsn.insert(me, last);
            (encoded, st.last_lsn, st.epoch, st.dlsn)
        };
        // Pipelining: post without waiting for acks of previous batches.
        for &peer in &self.members {
            if peer != self.me {
                let _ = self.net.post(
                    self.me,
                    peer,
                    PaxosMsg::AppendEntries {
                        epoch,
                        leader: self.me,
                        frames: encoded.clone(),
                        dlsn,
                    },
                );
            }
        }
        // Single-node group degenerates to local durability.
        self.recompute_dlsn();
        Ok(end_lsn)
    }

    /// Synchronous convenience: replicate and block until durable.
    pub fn replicate_and_wait(&self, mtrs: &[Mtr], timeout: Duration) -> Result<Lsn> {
        let lsn = self.replicate(mtrs)?;
        self.waiters.wait(lsn, timeout)?;
        Ok(lsn)
    }

    /// Leader API for the epoch pipeline: replicate one sealed epoch's
    /// pre-encoded record stream. `cuts` are record-aligned end offsets
    /// (ascending, last one equal to `payload.len()`); the stream is split
    /// into `MLOG_PAXOS` frames only at those offsets, because followers
    /// apply whole frames and must never see half a record. Each frame is
    /// still bounded by [`MAX_FRAME_PAYLOAD`].
    pub fn replicate_raw(&self, payload: &[u8], cuts: &[usize]) -> Result<Lsn> {
        if payload.is_empty() {
            return Ok(self.st.lock().last_lsn);
        }
        debug_assert_eq!(cuts.last().copied(), Some(payload.len()), "cuts must cover the payload");
        let (encoded, end_lsn, epoch, dlsn) = {
            let mut st = self.st.lock();
            if st.role != Role::Leader {
                return Err(Error::NotLeader { leader_hint: st.leader.map(|n| n.raw()) });
            }
            // Greedy chunking: extend the current frame to the furthest cut
            // that keeps it under the payload bound.
            let mut chunks: Vec<(usize, usize)> = Vec::new();
            let mut start = 0usize;
            let mut reach = 0usize;
            for &cut in cuts {
                if cut - start > MAX_FRAME_PAYLOAD {
                    if reach == start {
                        // One submission larger than a frame: the pipeline
                        // seals epochs well under the bound, so this is a
                        // single oversized record stream — reject it.
                        return Err(Error::storage(format!(
                            "epoch cut {cut} exceeds frame bound from {start}"
                        )));
                    }
                    chunks.push((start, reach));
                    start = reach;
                    if cut - start > MAX_FRAME_PAYLOAD {
                        return Err(Error::storage(format!(
                            "epoch cut {cut} exceeds frame bound from {start}"
                        )));
                    }
                }
                reach = cut;
            }
            if reach > start {
                chunks.push((start, reach));
            }
            let mut encoded = Vec::with_capacity(chunks.len());
            for (a, b) in chunks {
                let lsn_start = st.last_lsn;
                let f = PaxosFrame {
                    epoch: st.epoch,
                    index: st.log.len() as u64,
                    lsn_start,
                    lsn_end: lsn_start.advance((b - a) as u64),
                    payload: Bytes::copy_from_slice(&payload[a..b]),
                };
                let enc = f.encode();
                self.metrics.frames_encoded.inc();
                // Leader durability before followers, same as `replicate`.
                // lint:allow(guard_blocking, "sink write deliberately under st: last_lsn/log must not expose a hole ahead of the sink")
                self.sink.write(f.lsn_start, enc.clone())?;
                st.last_lsn = f.lsn_end;
                encoded.push(enc);
                st.log.push(f);
            }
            let me = self.me;
            let last = st.last_lsn;
            st.match_lsn.insert(me, last);
            (encoded, st.last_lsn, st.epoch, st.dlsn)
        };
        for &peer in &self.members {
            if peer != self.me {
                let _ = self.net.post(
                    self.me,
                    peer,
                    PaxosMsg::AppendEntries {
                        epoch,
                        leader: self.me,
                        frames: encoded.clone(),
                        dlsn,
                    },
                );
            }
        }
        self.recompute_dlsn();
        Ok(end_lsn)
    }

    /// [`Replica::replicate_raw`] + block until the quorum acks it.
    pub fn replicate_raw_and_wait(
        &self,
        payload: &[u8],
        cuts: &[usize],
        timeout: Duration,
    ) -> Result<Lsn> {
        let lsn = self.replicate_raw(payload, cuts)?;
        self.waiters.wait(lsn, timeout)?;
        Ok(lsn)
    }

    /// Start a campaign (called by the ticker on election timeout, or
    /// directly by tests/GMS failover).
    pub fn campaign(&self) {
        let (epoch, last_lsn) = {
            let mut st = self.st.lock();
            if st.is_logger || st.role == Role::Leader {
                return;
            }
            self.metrics.elections_started.inc();
            st.epoch += 1;
            st.voted_in = st.epoch;
            st.role = Role::Candidate;
            st.leader = None;
            st.votes.clear();
            let me = self.me;
            st.votes.insert(me);
            (st.epoch, st.last_lsn)
        };
        if self.members.len() == 1 {
            self.try_win(epoch);
            return;
        }
        for &peer in &self.members {
            if peer != self.me {
                let _ = self.net.post(
                    self.me,
                    peer,
                    PaxosMsg::RequestVote { epoch, candidate: self.me, last_lsn },
                );
            }
        }
    }

    fn try_win(&self, epoch: u64) {
        let won = {
            let mut st = self.st.lock();
            if st.role != Role::Candidate || st.epoch != epoch {
                return;
            }
            if st.votes.len() >= self.majority() {
                self.metrics.elections_won.inc();
                st.role = Role::Leader;
                st.leader = Some(self.me);
                st.match_lsn.clear();
                let me = self.me;
                let last = st.last_lsn;
                st.match_lsn.insert(me, last);
                true
            } else {
                false
            }
        };
        if won {
            self.note_event(format!("paxos-leader-elected epoch={epoch}"));
            self.broadcast_heartbeat();
        }
    }

    fn broadcast_heartbeat(&self) {
        // Heartbeats are empty AppendEntries (as in Raft): they disseminate
        // DLSN *and* solicit acks, so a newly elected leader learns the
        // majority-persisted point and can advance DLSN over entries
        // committed under the previous epoch without new writes.
        let (epoch, dlsn) = {
            let st = self.st.lock();
            if st.role != Role::Leader {
                return;
            }
            (st.epoch, st.dlsn)
        };
        for &peer in &self.members {
            if peer != self.me {
                let _ = self.net.post(
                    self.me,
                    peer,
                    PaxosMsg::AppendEntries {
                        epoch,
                        leader: self.me,
                        frames: Vec::new(),
                        dlsn,
                    },
                );
            }
        }
    }

    /// Leader: recompute DLSN as the majority-persisted LSN; on advance,
    /// wake async-commit waiters and disseminate.
    fn recompute_dlsn(&self) {
        let advanced = {
            let mut st = self.st.lock();
            if st.role != Role::Leader {
                return;
            }
            let mut persisted: Vec<Lsn> = st.match_lsn.values().copied().collect();
            // Peers we have no ack from count as ZERO.
            persisted.resize(self.members.len(), Lsn::ZERO);
            persisted.sort_unstable_by(|a, b| b.cmp(a));
            // Clamp to our own log end: after `abandon_unacked` fenced a
            // suffix, a straggler ack for the abandoned frames must not
            // drag the durability horizon past the log we actually hold.
            let candidate = persisted[self.majority() - 1].min(st.last_lsn);
            if candidate > st.dlsn {
                st.dlsn = candidate;
                Some(st.dlsn)
            } else {
                None
            }
        };
        if let Some(dlsn) = advanced {
            // This is the async_log_committer sweep: complete the waiting
            // transactions whose last MTR is now durable.
            self.waiters.advance(dlsn);
            self.apply_up_to(dlsn);
            self.broadcast_heartbeat();
        }
    }

    /// Apply frames with `lsn_end <= dlsn` through the apply callback.
    fn apply_up_to(&self, dlsn: Lsn) {
        let apply = self.apply.lock();
        let Some(apply_fn) = apply.as_ref() else { return };
        loop {
            let frame = {
                let mut st = self.st.lock();
                let next = st
                    .log
                    .iter()
                    .find(|f| f.lsn_start >= st.applied && f.lsn_end <= dlsn)
                    .cloned();
                match next {
                    Some(f) => {
                        st.applied = f.lsn_end;
                        f
                    }
                    None => break,
                }
            };
            apply_fn(&frame);
        }
    }

    /// A deposed leader (or conflicting follower) truncates its log tail
    /// beyond `keep` and runs the cleanup callback over the removed range.
    /// The durable sink is truncated in lockstep: an abandoned frame left
    /// on disk would be resurrected by crash recovery's scan even though
    /// the live node no longer acknowledges it.
    fn truncate_after(&self, st: &mut State, keep: Lsn) {
        let old_last = st.last_lsn;
        if old_last <= keep {
            return;
        }
        st.log.retain(|f| f.lsn_end <= keep);
        st.last_lsn = st.log.last().map(|f| f.lsn_end).unwrap_or(Lsn::ZERO).max(st.dlsn.min(keep));
        if st.last_lsn < keep {
            st.last_lsn = st.log.last().map(|f| f.lsn_end).unwrap_or(Lsn::ZERO);
        }
        // lint:allow(guard_blocking, "sink truncation deliberately under st: log/last_lsn must not run ahead of the durable artifact")
        self.sink.truncate(st.last_lsn);
        if let Some(cleanup) = self.cleanup.lock().as_ref() {
            cleanup(st.last_lsn, old_last);
        }
    }

    /// Leader-side fence after a failed replication round (quorum-wait
    /// timeout, or a mid-batch sink error): discard the log suffix the
    /// group never acknowledged — in memory *and* in the durable sink —
    /// so that heal-time retransmission and crash-recovery replay agree
    /// with the engine's presumed-abort of those transactions. This is
    /// §III's deposed-leader cleanup (`step_down` does the identical
    /// truncation at DLSN) applied to a leader that keeps serving.
    ///
    /// Follower acks for the abandoned range are clamped so a late or
    /// lost-then-rediscovered ack can never count the fenced frames
    /// toward a quorum; a follower that did persist them truncates its
    /// conflict tail on the next append, exactly as after a failover.
    ///
    /// Returns the fence point (the new log end). Errors on non-leaders:
    /// a deposed leader already fenced in [`Replica::step_down`].
    pub fn abandon_unacked(&self) -> Result<Lsn> {
        let fence = {
            let mut st = self.st.lock();
            if st.role != Role::Leader {
                return Err(Error::NotLeader { leader_hint: st.leader.map(|n| n.raw()) });
            }
            let dlsn = st.dlsn;
            self.truncate_after(&mut st, dlsn);
            let fence = st.last_lsn;
            for l in st.match_lsn.values_mut() {
                *l = (*l).min(fence);
            }
            fence
        };
        self.note_event(format!("paxos-abandon-unacked fence={fence}"));
        Ok(fence)
    }

    fn step_down(&self, st: &mut State, epoch: u64, leader: Option<NodeId>) {
        let was_leader = st.role == Role::Leader;
        st.epoch = epoch;
        st.role = if st.is_logger { Role::Logger } else { Role::Follower };
        st.leader = leader;
        st.votes.clear();
        if was_leader {
            // §III: "determine the range of redo log entries that are not
            // submitted, evict dirty pages related to them".
            let dlsn = st.dlsn;
            self.truncate_after(st, dlsn);
            self.waiters.fail_all();
        }
    }

    fn on_append(&self, from: NodeId, epoch: u64, leader: NodeId, frames: Vec<Bytes>, dlsn: Lsn) {
        let (ack, apply_to) = {
            let mut st = self.st.lock();
            if epoch < st.epoch {
                (
                    PaxosMsg::AppendAck {
                        epoch: st.epoch,
                        from: self.me,
                        persisted: st.last_lsn,
                        rejected: true,
                    },
                    None,
                )
            } else {
                if epoch > st.epoch || st.role == Role::Candidate || st.role == Role::Leader {
                    self.step_down(&mut st, epoch, Some(leader));
                }
                st.leader = Some(leader);
                st.last_leader_contact = mono_now();
                let mut rejected = false;
                for enc in frames {
                    let mut bytes = enc.clone();
                    let Ok(frame) = PaxosFrame::decode(&mut bytes) else {
                        rejected = true;
                        break;
                    };
                    if frame.lsn_end <= st.last_lsn {
                        self.metrics.duplicate_frames.inc();
                        continue; // duplicate
                    }
                    if frame.lsn_start > st.last_lsn {
                        self.metrics.gap_rejects.inc();
                        rejected = true; // gap: ask leader to resend
                        break;
                    }
                    if frame.lsn_start < st.last_lsn {
                        // Conflict tail from an old epoch: truncate, only
                        // ever beyond DLSN by construction.
                        debug_assert!(frame.lsn_start >= st.dlsn);
                        self.truncate_after(&mut st, frame.lsn_start);
                    }
                    // lint:allow(guard_blocking, "sink write deliberately under st: follower log/last_lsn stay in lockstep with the sink")
                    if self.sink.write(frame.lsn_start, enc).is_err() {
                        rejected = true;
                        break;
                    }
                    st.last_lsn = frame.lsn_end;
                    st.log.push(frame);
                }
                // A log that ends below the group's durable horizon is
                // missing slots the group already acked — a rejoining
                // (amnesia-restarted) replica is the canonical case. Ack
                // `rejected` so even an empty heartbeat solicits the
                // leader's reject-resend backfill.
                rejected = rejected || st.last_lsn < dlsn;
                // Adopt the leader's DLSN, capped by what we hold.
                let new_dlsn = dlsn.min(st.last_lsn);
                if new_dlsn > st.dlsn {
                    st.dlsn = new_dlsn;
                }
                let apply_to = st.dlsn;
                (
                    PaxosMsg::AppendAck {
                        epoch: st.epoch,
                        from: self.me,
                        persisted: st.last_lsn,
                        rejected,
                    },
                    Some(apply_to),
                )
            }
        };
        if let Some(dlsn) = apply_to {
            // Loggers have no state machine; skip apply.
            if !self.st.lock().is_logger {
                self.apply_up_to(dlsn);
            }
            self.waiters.advance(dlsn);
        }
        let _ = self.net.post(self.me, from, ack);
    }

    fn on_ack(&self, epoch: u64, from: NodeId, persisted: Lsn, rejected: bool) {
        let resend = {
            let mut st = self.st.lock();
            if st.role != Role::Leader || epoch != st.epoch {
                if epoch > st.epoch {
                    self.step_down(&mut st, epoch, None);
                }
                return;
            }
            st.match_lsn
                .entry(from)
                .and_modify(|l| *l = (*l).max(persisted))
                .or_insert(persisted);
            if rejected && persisted < st.last_lsn {
                // Retransmit everything the follower is missing.
                let frames: Vec<Bytes> = st
                    .log
                    .iter()
                    .filter(|f| f.lsn_start >= persisted)
                    .map(|f| f.encode())
                    .collect();
                Some((frames, st.epoch, st.dlsn))
            } else {
                None
            }
        };
        if let Some((frames, epoch, dlsn)) = resend {
            self.metrics.retransmits.inc();
            let _ = self.net.post(
                self.me,
                from,
                PaxosMsg::AppendEntries { epoch, leader: self.me, frames, dlsn },
            );
        }
        self.recompute_dlsn();
    }

    fn on_request_vote(&self, candidate: NodeId, epoch: u64, last_lsn: Lsn) {
        let granted = {
            let mut st = self.st.lock();
            if epoch <= st.voted_in || epoch < st.epoch {
                false
            } else if last_lsn < st.last_lsn {
                // Log-completeness: never elect someone missing entries we
                // persisted (majority intersection then guarantees the new
                // leader holds everything up to the global DLSN).
                false
            } else {
                st.voted_in = epoch;
                if epoch > st.epoch {
                    self.step_down(&mut st, epoch, None);
                }
                true
            }
        };
        let epoch_now = self.st.lock().epoch;
        let _ = self.net.post(
            self.me,
            candidate,
            PaxosMsg::Vote { epoch: epoch_now.max(epoch), from: self.me, granted },
        );
    }

    fn on_vote(&self, epoch: u64, from: NodeId, granted: bool) {
        {
            let mut st = self.st.lock();
            if epoch > st.epoch {
                self.step_down(&mut st, epoch, None);
                return;
            }
            if st.role != Role::Candidate || epoch != st.epoch || !granted {
                return;
            }
            st.votes.insert(from);
        }
        self.try_win(epoch);
    }

    fn on_heartbeat(&self, epoch: u64, leader: NodeId, dlsn: Lsn) {
        let apply_to = {
            let mut st = self.st.lock();
            if epoch < st.epoch {
                return;
            }
            if epoch > st.epoch || st.role == Role::Candidate || st.role == Role::Leader {
                self.step_down(&mut st, epoch, Some(leader));
            }
            st.leader = Some(leader);
            st.last_leader_contact = mono_now();
            let new_dlsn = dlsn.min(st.last_lsn);
            if new_dlsn > st.dlsn {
                st.dlsn = new_dlsn;
            }
            if st.is_logger { None } else { Some(st.dlsn) }
        };
        if let Some(dlsn) = apply_to {
            self.apply_up_to(dlsn);
            self.waiters.advance(dlsn);
        }
    }

    /// Drive periodic work: leaders emit heartbeats; followers campaign
    /// after `election_timeout` without leader contact. Returns a guard
    /// thread handle; stop via [`Replica::stop_ticker`].
    pub fn start_ticker(
        self: &Arc<Self>,
        interval: Duration,
        election_timeout: Duration,
    ) -> Result<std::thread::JoinHandle<()>> {
        let me = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("paxos-ticker-{}", self.me))
            .spawn(move || loop {
                if me.ticker_stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(interval);
                let (role, stale) = {
                    let st = me.st.lock();
                    (st.role, mono_now().saturating_sub(st.last_leader_contact) > election_timeout)
                };
                match role {
                    Role::Leader => me.broadcast_heartbeat(),
                    Role::Follower | Role::Candidate if stale => me.campaign(),
                    _ => {}
                }
            })
            .map_err(|e| Error::execution(format!("spawn paxos ticker: {e}")))
    }

    /// Leader API: trigger a catch-up round now. Broadcasts an empty
    /// AppendEntries (heartbeat); each follower's ack reports its
    /// persisted LSN — a rejoining replica whose log ends below DLSN
    /// acks `rejected`, which drives retransmission of every frame it is
    /// missing. No-op on non-leaders. Used by the recovery harness to
    /// resynchronise a replica right after an amnesia restart instead of
    /// waiting for the next ticker heartbeat.
    pub fn sync_followers(&self) {
        self.broadcast_heartbeat();
    }

    /// Signal the ticker thread to exit.
    pub fn stop_ticker(&self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
    }

    /// All decoded frames currently in the log (tests / catch-up).
    pub fn log_frames(&self) -> Vec<PaxosFrame> {
        self.st.lock().log.clone()
    }
}

impl Handler<PaxosMsg> for Replica {
    fn handle(&self, from: NodeId, msg: PaxosMsg) -> PaxosMsg {
        // All protocol traffic is one-way; sync RPC is used only by tests.
        self.handle_oneway(from, msg);
        PaxosMsg::Ok
    }

    fn handle_oneway(&self, from: NodeId, msg: PaxosMsg) {
        match msg {
            PaxosMsg::AppendEntries { epoch, leader, frames, dlsn } => {
                self.on_append(from, epoch, leader, frames, dlsn)
            }
            PaxosMsg::AppendAck { epoch, from: acker, persisted, rejected } => {
                self.on_ack(epoch, acker, persisted, rejected)
            }
            PaxosMsg::RequestVote { epoch, candidate, last_lsn } => {
                self.on_request_vote(candidate, epoch, last_lsn)
            }
            PaxosMsg::Vote { epoch, from: voter, granted } => {
                self.on_vote(epoch, voter, granted)
            }
            PaxosMsg::Heartbeat { epoch, leader, dlsn } => {
                self.on_heartbeat(epoch, leader, dlsn)
            }
            PaxosMsg::Ok => {}
        }
    }
}
