//! X-Paxos: consensus replication of the redo-log stream across
//! datacenters (§III of the paper).
//!
//! PolarDB-X replicates at the **DN layer**: the leader DN streams redo log
//! (framed as `MLOG_PAXOS` batches, see [`polardbx_wal::frame`]) to
//! followers in other datacenters. The pieces reproduced here:
//!
//! * **Roles** — Leader (executes transactions), Follower (persists +
//!   replays log, electable), Logger (persists log only, votes but can
//!   never lead) — [`Role`].
//! * **DLSN** — the durable LSN: once a majority has persisted a prefix of
//!   the log, the leader advances DLSN; entries before DLSN survive any
//!   single-DC disaster. Followers only *apply* entries `<= DLSN`, because
//!   later entries may be truncated by a new leader.
//! * **Asynchronous commit** — the foreground thread hands its transaction
//!   context to a waiter registry keyed by the last MTR's end LSN and moves
//!   on; the `async_log_committer` (the ack-processing path here) completes
//!   transactions when DLSN passes them — [`waiters::CommitWaiters`].
//! * **Pipelining & batching** — the leader posts frame batches without
//!   waiting for previous acks (one-way messages on the fabric), and MTRs
//!   are packed into ≤16 KB frames.
//! * **Leader election** — on leader failure a follower campaigns with a
//!   log-completeness check (candidates must hold everything up to the
//!   voter's DLSN); a deposed leader truncates its uncommitted tail and
//!   runs a state-cleanup callback (buffer-pool eviction in the DN).

pub mod group;
pub mod msg;
pub mod replica;
pub mod waiters;

pub use group::{GroupConfig, MemberSpec, PaxosGroup};
pub use msg::PaxosMsg;
pub use replica::{ApplyFn, ConsensusMetrics, Replica, ReplicaStatus, Role};
pub use waiters::CommitWaiters;
