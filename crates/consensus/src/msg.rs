//! Paxos wire messages.

use bytes::Bytes;
use polardbx_common::{Lsn, NodeId};

/// Messages exchanged within a Paxos group. Log payload travels as encoded
/// [`polardbx_wal::PaxosFrame`] bytes so the wire format round-trips through
//  the same codec the redo stream uses.
#[derive(Debug, Clone)]
pub enum PaxosMsg {
    /// Leader → follower: a pipelined batch of frames plus the current DLSN.
    AppendEntries {
        /// Leader's epoch.
        epoch: u64,
        /// Leader's id (so followers learn who leads this epoch).
        leader: NodeId,
        /// Encoded `PaxosFrame`s, contiguous in LSN.
        frames: Vec<Bytes>,
        /// Leader's durable LSN — followers may apply up to here.
        dlsn: Lsn,
    },
    /// Follower → leader: everything up to `persisted` is on stable storage.
    AppendAck {
        /// Follower's epoch.
        epoch: u64,
        /// Acknowledging node.
        from: NodeId,
        /// Log persisted through this LSN.
        persisted: Lsn,
        /// Set when the append was rejected (epoch/continuity mismatch).
        rejected: bool,
    },
    /// Candidate → all: request a vote.
    RequestVote {
        /// Candidate's new epoch.
        epoch: u64,
        /// Candidate id.
        candidate: NodeId,
        /// End of the candidate's log (completeness check).
        last_lsn: Lsn,
    },
    /// Voter → candidate.
    Vote {
        /// Voter's epoch.
        epoch: u64,
        /// Voting node.
        from: NodeId,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader → all: liveness + DLSN dissemination when idle.
    Heartbeat {
        /// Leader's epoch.
        epoch: u64,
        /// Leader id.
        leader: NodeId,
        /// Current durable LSN.
        dlsn: Lsn,
    },
    /// Generic acknowledgement for RPCs that need no payload.
    Ok,
}
