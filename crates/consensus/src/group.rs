//! Group assembly helper and whole-group integration tests.

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::{DcId, NodeId};
use polardbx_simnet::{LatencyMatrix, SimNet};
use polardbx_wal::{LogSink, VecSink};

use crate::msg::PaxosMsg;
use crate::replica::{Replica, Role};

/// One member in a group blueprint.
#[derive(Debug, Clone)]
pub struct MemberSpec {
    /// Node id.
    pub node: NodeId,
    /// Datacenter.
    pub dc: DcId,
    /// Logger members persist but cannot lead (§III).
    pub logger: bool,
}

/// Group-level configuration.
#[derive(Clone)]
pub struct GroupConfig {
    /// Members (first non-logger is bootstrapped as leader).
    pub members: Vec<MemberSpec>,
    /// Network latency model.
    pub latency: LatencyMatrix,
}

impl GroupConfig {
    /// The paper's deployment shape: leader in DC1, follower in DC2,
    /// logger in DC3 ("2.5 replicas": logger holds log only).
    pub fn three_dc(base_node: u64) -> GroupConfig {
        GroupConfig {
            members: vec![
                MemberSpec { node: NodeId(base_node), dc: DcId(1), logger: false },
                MemberSpec { node: NodeId(base_node + 1), dc: DcId(2), logger: false },
                MemberSpec { node: NodeId(base_node + 2), dc: DcId(3), logger: true },
            ],
            latency: LatencyMatrix::zero(),
        }
    }

    /// Use a specific latency model.
    pub fn with_latency(mut self, latency: LatencyMatrix) -> GroupConfig {
        self.latency = latency;
        self
    }
}

/// An assembled group: replicas registered on a shared fabric.
pub struct PaxosGroup {
    /// The network fabric.
    pub net: Arc<SimNet<PaxosMsg>>,
    /// Replicas, in `members` order.
    pub replicas: Vec<Arc<Replica>>,
    /// Each replica's durable log sink, in the same order.
    pub sinks: Vec<Arc<VecSink>>,
}

impl PaxosGroup {
    /// Build the group and bootstrap the first non-logger member as leader
    /// at epoch 1.
    pub fn build(config: GroupConfig) -> PaxosGroup {
        let net = SimNet::new(config.latency.clone());
        let ids: Vec<NodeId> = config.members.iter().map(|m| m.node).collect();
        let mut replicas = Vec::new();
        let mut sinks = Vec::new();
        for m in &config.members {
            let sink = VecSink::new();
            let replica = Replica::new(
                m.node,
                m.dc,
                ids.clone(),
                m.logger,
                Arc::clone(&net),
                sink.clone() as Arc<dyn LogSink>,
            );
            net.register(m.node, m.dc, replica.clone());
            replicas.push(replica);
            sinks.push(sink);
        }
        if let Some(first) = config
            .members
            .iter()
            .position(|m| !m.logger)
        {
            replicas[first].bootstrap_leader(1);
        }
        PaxosGroup { net, replicas, sinks }
    }

    /// The current leader, if any replica believes it is one.
    pub fn leader(&self) -> Option<Arc<Replica>> {
        self.replicas.iter().find(|r| r.status().role == Role::Leader).cloned()
    }

    /// Block until every live replica's DLSN reaches `lsn` (or timeout).
    pub fn await_dlsn(&self, lsn: polardbx_common::Lsn, timeout: Duration) -> bool {
        let deadline = polardbx_common::time::mono_now() + timeout;
        while polardbx_common::time::mono_now() < deadline {
            if self.replicas.iter().all(|r| r.status().dlsn >= lsn) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use polardbx_common::{Key, Lsn, TableId, TrxId, Value};
    use polardbx_wal::{Mtr, RedoPayload};
    use polardbx_simnet::Handler;
    use std::time::Instant;

    fn mtr(n: i64) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![b'x'; 32]),
        })
    }

    fn commit_mtr(n: u64) -> Mtr {
        Mtr::single(RedoPayload::TxnCommit { trx: TrxId(n), commit_ts: n })
    }

    #[test]
    fn replicate_advances_dlsn_on_majority() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        let lsn = leader.replicate_and_wait(&[mtr(1), mtr(2)], Duration::from_secs(2)).unwrap();
        assert!(lsn > Lsn::ZERO);
        assert!(g.await_dlsn(lsn, Duration::from_secs(2)), "DLSN must disseminate");
        // All three sinks (including the logger's) persisted the frames.
        for sink in &g.sinks {
            assert!(!sink.writes().is_empty());
        }
    }

    #[test]
    fn async_commit_overlaps_replication() {
        // Many transactions wait concurrently; one ack stream commits all.
        let g = PaxosGroup::build(
            GroupConfig::three_dc(1).with_latency(LatencyMatrix::uniform(Duration::from_millis(2))),
        );
        let leader = g.leader().unwrap();
        let t0 = Instant::now();
        let mut rxs = Vec::new();
        for i in 0..16u64 {
            let lsn = leader.replicate(&[commit_mtr(i)]).unwrap();
            rxs.push(leader.waiters.register(lsn));
        }
        for rx in rxs {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)).unwrap(),
                crate::waiters::CommitOutcome::Durable
            );
        }
        // 16 sequential round trips would cost >= 64 ms; pipelining keeps it
        // low. The margin assumes native-speed compute, so the sanitizer job
        // (which exports TSAN_OPTIONS) skips only this wall-clock assertion —
        // the pipelined commit path above still runs under TSan for race
        // coverage.
        if std::env::var_os("TSAN_OPTIONS").is_none() {
            assert!(t0.elapsed() < Duration::from_millis(60), "not pipelined: {:?}", t0.elapsed());
        }
    }

    #[test]
    fn follower_applies_only_up_to_dlsn() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let follower = g.replicas[1].clone();
        let applied = Arc::new(Mutex::new(Vec::new()));
        let applied2 = applied.clone();
        follower.set_apply(Box::new(move |f| {
            applied2.lock().push((f.lsn_start, f.lsn_end));
        }));
        let leader = g.leader().unwrap();
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        g.await_dlsn(lsn, Duration::from_secs(2));
        let frames = applied.lock().clone();
        assert!(!frames.is_empty(), "follower must apply durable frames");
        let st = follower.status();
        assert!(st.applied <= st.dlsn, "never apply beyond DLSN");
    }

    #[test]
    fn failover_elects_follower_and_old_leader_truncates() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        assert!(g.await_dlsn(lsn, Duration::from_secs(2)));

        // Partition the leader's DC; it can no longer reach a majority.
        g.net.partition(DcId(1), DcId(2));
        g.net.partition(DcId(1), DcId(3));
        // An uncommitted tail accumulates on the old leader.
        let _ = leader.replicate(&[mtr(99)]);
        let tail = leader.status().last_lsn;
        assert!(tail > lsn);

        // The DC2 follower campaigns and wins with the logger's vote.
        let cleanup_called = Arc::new(Mutex::new(None));
        let cc = cleanup_called.clone();
        leader.set_cleanup(Box::new(move |keep, old| {
            *cc.lock() = Some((keep, old));
        }));
        g.replicas[1].campaign();
        let deadline = Instant::now() + Duration::from_secs(2);
        while g.replicas[1].status().role != Role::Leader && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(g.replicas[1].status().role, Role::Leader, "follower must win");
        assert_eq!(g.replicas[2].status().role, Role::Logger, "logger stays logger");

        // Heal; old leader hears the higher epoch, steps down, truncates.
        g.net.heal(DcId(1), DcId(2));
        g.net.heal(DcId(1), DcId(3));
        let new_leader = g.replicas[1].clone();
        let lsn2 = new_leader.replicate_and_wait(&[mtr(2)], Duration::from_secs(2)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            let st = leader.status();
            if st.role == Role::Follower && st.last_lsn >= lsn2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let st = leader.status();
        assert_eq!(st.role, Role::Follower);
        assert_eq!(st.leader, Some(g.replicas[1].me));
        assert!(st.last_lsn >= lsn2, "old leader resyncs from new leader");
        let (keep, old) = cleanup_called.lock().expect("cleanup must run on deposed leader");
        assert!(old > keep, "cleanup range covers the truncated tail");
    }

    #[test]
    fn replicate_encodes_each_frame_once() {
        // The happy-path replicate must encode a frame exactly once: the
        // leader's sink write and all peer AppendEntries share the same
        // `Bytes`. The counter would read 2× frames with the old double
        // `f.encode()`.
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        for i in 0..10u64 {
            leader.replicate_and_wait(&[commit_mtr(i)], Duration::from_secs(2)).unwrap();
        }
        let frames = leader.log_frames().len() as u64;
        assert!(frames >= 10);
        assert_eq!(
            leader.metrics.frames_encoded.get(),
            frames,
            "each frame encoded exactly once on the replicate path"
        );
        // Followers received intact (checksummed) frames.
        let lsn = leader.status().last_lsn;
        assert!(g.await_dlsn(lsn, Duration::from_secs(2)));
        assert_eq!(g.replicas[1].log_frames().len() as u64, frames);
    }

    #[test]
    fn logger_never_campaigns() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        g.replicas[2].campaign();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(g.replicas[2].status().role, Role::Logger);
    }

    #[test]
    fn vote_rejected_for_incomplete_log() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        // Partition DC3 (logger) so it misses entries.
        g.net.partition(DcId(1), DcId(3));
        g.net.partition(DcId(2), DcId(3));
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        assert!(lsn > Lsn::ZERO);
        g.net.heal(DcId(1), DcId(3));
        g.net.heal(DcId(2), DcId(3));
        // DC2 follower holds the full log; it must refuse a vote for a
        // candidate with a shorter log. Simulate by having the up-to-date
        // follower receive a RequestVote from the (stale) logger's position:
        // we drive the message directly.
        let follower = g.replicas[1].clone();
        follower.handle_oneway(
            g.replicas[2].me,
            PaxosMsg::RequestVote { epoch: 99, candidate: g.replicas[2].me, last_lsn: Lsn::ZERO },
        );
        // Vote goes back to the logger; what matters is the follower did not
        // step down blindly into the stale candidate's epoch as leaderless
        // follower granting leadership.
        std::thread::sleep(Duration::from_millis(10));
        assert_ne!(follower.status().leader, Some(g.replicas[2].me));
    }

    #[test]
    fn single_node_group_commits_locally() {
        let config = GroupConfig {
            members: vec![MemberSpec { node: NodeId(7), dc: DcId(1), logger: false }],
            latency: LatencyMatrix::zero(),
        };
        let g = PaxosGroup::build(config);
        let leader = g.leader().unwrap();
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(1)).unwrap();
        assert_eq!(leader.status().dlsn, lsn);
    }

    #[test]
    fn non_leader_rejects_writes() {
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let err = g.replicas[1].replicate(&[mtr(1)]).unwrap_err();
        assert!(matches!(err, polardbx_common::Error::NotLeader { .. }));
    }

    #[test]
    fn ticker_elects_after_leader_silence() {
        let g = PaxosGroup::build(GroupConfig::three_dc(40));
        let leader = g.leader().unwrap();
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        g.await_dlsn(lsn, Duration::from_secs(2));
        // Start follower ticker with a short election timeout, then silence
        // the leader by partitioning it away.
        let h = g.replicas[1]
            .start_ticker(Duration::from_millis(10), Duration::from_millis(50))
            .unwrap();
        g.net.partition(DcId(1), DcId(2));
        g.net.partition(DcId(1), DcId(3));
        let deadline = Instant::now() + Duration::from_secs(3);
        while g.replicas[1].status().role != Role::Leader && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        g.replicas[1].stop_ticker();
        let _ = h.join();
        assert_eq!(g.replicas[1].status().role, Role::Leader);
    }

    #[test]
    fn amnesia_restarted_follower_rejoins_from_durable_log() {
        // Crash the DC2 follower, let the group commit past it, then
        // rebuild the follower purely from its durable sink — with a torn
        // tail, so the checksum scan must discard the last frame — and
        // verify the leader's catch-up path backfills everything.
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        // Two separate batches → two frames on disk, so a torn tail can
        // destroy the second while the first stays scannable.
        let lsn0 = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        let lsn1 = leader.replicate_and_wait(&[mtr(2)], Duration::from_secs(2)).unwrap();
        assert!(lsn1 > lsn0);
        assert!(g.await_dlsn(lsn1, Duration::from_secs(2)));

        let victim = g.replicas[1].me;
        g.net.crash(victim);
        // Majority still holds via leader + logger.
        let lsn2 = leader.replicate_and_wait(&[mtr(3)], Duration::from_secs(2)).unwrap();
        assert!(lsn2 > lsn1);

        // Amnesia restart: only the sink survives. Model an un-fsynced
        // tail by corrupting the final frame; the scan must stop there.
        let sink = g.sinks[1].clone();
        sink.corrupt_tail(4);
        let scan = polardbx_wal::scan_frames(&sink.frame_stream());
        assert!(scan.torn.is_some(), "corrupted tail frame must fail its checksum");
        let durable = scan.durable_lsn().expect("clean prefix survives");
        assert_eq!(durable, lsn0, "scan keeps exactly the frames before the tear");
        sink.truncate_frames_to(durable);

        let recovered = Replica::recovered(
            victim,
            DcId(2),
            g.replicas.iter().map(|r| r.me).collect(),
            false,
            Arc::clone(&g.net),
            sink.clone() as Arc<dyn LogSink>,
            scan.frames,
        );
        assert_eq!(recovered.status().last_lsn, durable);
        assert_eq!(recovered.status().dlsn, Lsn::ZERO, "durable horizon is learned, not remembered");
        g.net.register(victim, DcId(2), recovered.clone());
        g.net.restart_amnesia(victim);

        // One catch-up round: the heartbeat ack reports the short log and
        // the leader retransmits the missing slots (including the frame
        // the tear destroyed).
        leader.sync_followers();
        let deadline = Instant::now() + Duration::from_secs(2);
        while recovered.status().dlsn < lsn2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let st = recovered.status();
        assert!(st.last_lsn >= lsn2, "rejoined follower must backfill to the group tail");
        assert!(st.dlsn >= lsn2, "rejoined follower must re-learn the durable horizon");
        assert_eq!(
            recovered.log_frames().len(),
            leader.log_frames().len(),
            "recovered log converges with the leader's"
        );
        assert!(g.net.fault_stats.amnesia_restarts.get() >= 1);
    }

    #[test]
    fn replicate_raw_carries_the_exact_bytes_and_chunks_on_cuts() {
        // An epoch is a pre-encoded concatenation of records; raw replication
        // must deliver those exact bytes to every replica, chunked into
        // frames only at record-aligned cut points.
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();

        // Build a payload big enough to force several frames: each record is
        // ~1 KiB, 40 of them ≈ 40 KiB > MAX_FRAME_PAYLOAD.
        let mut payload = Vec::new();
        let mut cuts = Vec::new();
        for n in 0..40i64 {
            RedoPayload::Insert {
                trx: TrxId(7),
                table: TableId(1),
                key: Key::encode(&[Value::Int(n)]),
                row: Bytes::from(vec![b'y'; 1000]),
            }
            .encode(&mut payload);
            cuts.push(payload.len());
        }
        let lsn = leader
            .replicate_raw_and_wait(&payload, &cuts, Duration::from_secs(2))
            .unwrap();
        assert!(g.await_dlsn(lsn, Duration::from_secs(2)));

        // Reassembling every frame's payload recovers the epoch bytes, and
        // no frame exceeds the wire bound or splits a record.
        let frames = leader.log_frames();
        assert!(frames.len() >= 3, "40 KiB must span several frames, got {}", frames.len());
        let mut reassembled = Vec::new();
        for f in &frames {
            assert!(f.payload.len() <= polardbx_wal::MAX_FRAME_PAYLOAD);
            reassembled.extend_from_slice(&f.payload);
            assert!(
                cuts.contains(&reassembled.len()),
                "frame boundary at {} is not record-aligned",
                reassembled.len()
            );
        }
        assert_eq!(reassembled, payload, "raw replication must be byte-exact");
        // Followers hold the identical frame stream.
        for r in &g.replicas[1..] {
            let fr = r.log_frames();
            let follower_bytes: Vec<u8> =
                fr.iter().flat_map(|f| f.payload.iter().copied()).collect();
            assert_eq!(follower_bytes, payload);
        }
    }

    #[test]
    fn replicate_raw_rejects_an_unsplittable_record() {
        // A single record larger than a frame payload cannot be chunked at a
        // record boundary; that is a caller bug and must be a hard error.
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        let payload = vec![0u8; polardbx_wal::MAX_FRAME_PAYLOAD + 100];
        let cuts = vec![payload.len()];
        let err = leader.replicate_raw(&payload, &cuts).unwrap_err();
        assert!(matches!(err, polardbx_common::Error::Storage { .. }), "got {err}");
        // The failure leaves the log clean: a normal replicate still works.
        let lsn = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        assert!(g.await_dlsn(lsn, Duration::from_secs(2)));
    }

    #[test]
    fn gap_recovery_via_retransmission() {
        // A follower that was partitioned during some appends recovers the
        // missing range through the leader's reject-resend path.
        let g = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = g.leader().unwrap();
        g.net.partition(DcId(1), DcId(2));
        let lsn1 = leader.replicate_and_wait(&[mtr(1)], Duration::from_secs(2)).unwrap();
        g.net.heal(DcId(1), DcId(2));
        // Next append reaches DC2 with a gap; the rejection triggers resend.
        let lsn2 = leader.replicate_and_wait(&[mtr(2)], Duration::from_secs(2)).unwrap();
        assert!(lsn2 > lsn1);
        let deadline = Instant::now() + Duration::from_secs(2);
        while g.replicas[1].status().last_lsn < lsn2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(g.replicas[1].status().last_lsn >= lsn2, "follower must backfill the gap");
    }
}
