//! Redo replay into a fresh engine: the DN side of crash recovery.
//!
//! An amnesia-restarted DN owns nothing but its durable log sink. Recovery
//! proceeds in three steps (§II-B: replicated redo makes a DN restart
//! lossless):
//!
//! 1. **Scan-and-truncate** — [`polardbx_wal::recovery::scan_records`]
//!    finds the longest valid prefix of the sink's byte stream; any torn
//!    tail beyond it is physically truncated so future appends resume at a
//!    clean horizon.
//! 2. **Classify** — each transaction's *final* fate in the valid prefix
//!    decides what replay does: a commit record → apply its row ops with
//!    the recorded commit timestamp; an abort record → drop its ops; a
//!    prepare record with no decision → **in-doubt**; row ops with neither
//!    prepare nor decision → the transaction was still ACTIVE, it never
//!    voted, presumed abort applies and nothing is installed.
//! 3. **Replay** — committed transactions become visible versions stamped
//!    at their recorded commit-ts (and land COMMITTED in the transaction
//!    table, which is what makes a second replay a no-op); in-doubt ones
//!    get their intents reinstated via
//!    [`StorageEngine::recover_in_doubt`], so readers block on them again
//!    until the 2PC resolver re-settles their fate through the arbiter.
//!
//! Replay is **idempotent**: feeding the same prefix twice leaves the same
//! observable state, because each transaction's entry in the transaction
//! table guards its application.

use std::collections::HashMap;
use std::sync::Arc;

use polardbx_common::{Lsn, Result, TableId, TenantId, TrxId};
use polardbx_wal::recovery::scan_records;
use polardbx_wal::{LogBuffer, LogSink, RedoPayload, VecSink};

use crate::engine::{LocalDurability, StorageEngine};
use crate::mvcc::VersionOp;
use crate::rowcodec::decode_row;
use crate::txn::TxnState;

/// What a recovery pass found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The durable horizon: end of the valid record prefix. New appends on
    /// the recovered engine resume here.
    pub durable_lsn: Lsn,
    /// Bytes of torn tail discarded by scan-and-truncate.
    pub truncated_bytes: u64,
    /// Records in the valid prefix.
    pub records: usize,
    /// Transactions replayed to COMMITTED.
    pub committed: usize,
    /// Transactions replayed to ABORTED.
    pub aborted: usize,
    /// Transactions left PREPARED-but-undecided, with their prepare
    /// timestamps: the caller must re-adopt these with the participant's
    /// in-doubt resolver so presumed-abort can settle them.
    pub in_doubt: Vec<(TrxId, u64)>,
    /// Transactions that were still ACTIVE at the crash (row redo but no
    /// prepare/decision). Nothing is installed for them: they never voted,
    /// so presumed abort applies trivially.
    pub active_dropped: usize,
}

/// Replay a redo-record prefix into `engine`. The engine's tables must
/// already exist (schema lives in GMS/catalog metadata, which is durable
/// elsewhere; tests recreate tables before replaying).
///
/// Safe to call more than once with the same records — each transaction's
/// state in the engine's transaction table makes reapplication a no-op.
pub fn replay_records(engine: &Arc<StorageEngine>, records: &[RedoPayload]) -> Result<RecoveryReport> {
    // Row ops buffered until their transaction's fate is known.
    let mut buffered: HashMap<TrxId, Vec<RedoPayload>> = HashMap::new();
    // Prepares awaiting a decision, in log order (determinism matters for
    // reinstallation: later intents may stack on earlier commits).
    let mut prepared: Vec<(TrxId, u64)> = Vec::new();
    let mut committed = 0usize;
    let mut aborted = 0usize;

    for rec in records {
        match rec {
            RedoPayload::Insert { trx, .. }
            | RedoPayload::Update { trx, .. }
            | RedoPayload::Delete { trx, .. } => {
                buffered.entry(*trx).or_default().push(rec.clone());
            }
            RedoPayload::TxnPrepare { trx, prepare_ts } => {
                prepared.push((*trx, *prepare_ts));
            }
            RedoPayload::TxnCommit { trx, commit_ts } => {
                let ops = buffered.remove(trx).unwrap_or_default();
                prepared.retain(|(t, _)| t != trx);
                if matches!(engine.txns.state(*trx), Some(TxnState::Committed { .. })) {
                    continue; // already replayed (idempotence)
                }
                for op in &ops {
                    let (table, key, version_op) = match op {
                        RedoPayload::Insert { table, key, row, .. }
                        | RedoPayload::Update { table, key, row, .. } => {
                            (*table, key.clone(), VersionOp::Put(decode_row(row)))
                        }
                        RedoPayload::Delete { table, key, .. } => {
                            (*table, key.clone(), VersionOp::Delete)
                        }
                        _ => continue,
                    };
                    let store = engine.store(table)?;
                    store.apply_committed(*trx, *commit_ts, key.clone(), version_op);
                    let tenant = engine.tenant_of(table).unwrap_or_default();
                    engine.pool.touch_read(engine.pool.page_of(table, &key), tenant);
                }
                engine.txns.begin(*trx);
                engine.txns.commit(*trx, *commit_ts)?;
                committed += 1;
            }
            RedoPayload::TxnAbort { trx } => {
                buffered.remove(trx);
                prepared.retain(|(t, _)| t != trx);
                if engine.txns.state(*trx).is_none() {
                    engine.txns.abort(*trx);
                    aborted += 1;
                }
            }
            RedoPayload::Checkpoint { .. } | RedoPayload::TenantMark { .. } => {}
        }
    }

    let mut in_doubt = Vec::with_capacity(prepared.len());
    for (trx, prepare_ts) in prepared {
        let ops = buffered.remove(&trx).unwrap_or_default();
        engine.recover_in_doubt(trx, prepare_ts, &ops)?;
        in_doubt.push((trx, prepare_ts));
    }
    let active_dropped = buffered.len();

    Ok(RecoveryReport {
        durable_lsn: Lsn::ZERO, // filled in by the sink-level entry points
        truncated_bytes: 0,
        records: records.len(),
        committed,
        aborted,
        in_doubt,
        active_dropped,
    })
}

/// Scan `sink` (scan-and-truncate) and replay its valid prefix into
/// `engine`. Returns the full report including the durable horizon.
pub fn recover_from_sink(engine: &Arc<StorageEngine>, sink: &VecSink) -> Result<RecoveryReport> {
    let base = sink
        .writes()
        .iter()
        .map(|(at, _)| *at)
        .min()
        .unwrap_or(Lsn::ZERO);
    let content = sink.contiguous();
    let scan = scan_records(&content);
    let durable = scan.durable_lsn(base);
    let truncated = (content.len() - scan.valid_len) as u64;
    if truncated > 0 {
        sink.truncate_to(durable);
    }
    let mut report = replay_records(engine, &scan.records)?;
    report.durable_lsn = durable;
    report.truncated_bytes = truncated;
    Ok(report)
}

/// Build a fresh engine from nothing but a durable sink: scan-and-truncate,
/// recreate `tables`, replay, and wire the engine's new log buffer to
/// resume appending at the recovered horizon (so post-recovery commits
/// extend the same log).
pub fn recovered_engine(
    sink: Arc<VecSink>,
    tables: &[(TableId, TenantId)],
) -> Result<(Arc<StorageEngine>, RecoveryReport)> {
    // Scan before constructing the engine: the new LogBuffer must start at
    // the post-truncation horizon or fresh appends would overlap the tail.
    let base = sink
        .writes()
        .iter()
        .map(|(at, _)| *at)
        .min()
        .unwrap_or(Lsn::ZERO);
    let content = sink.contiguous();
    let scan = scan_records(&content);
    let durable = scan.durable_lsn(base);
    let truncated = (content.len() - scan.valid_len) as u64;
    if truncated > 0 {
        sink.truncate_to(durable);
    }

    let log = LogBuffer::starting_at(Arc::clone(&sink) as Arc<dyn LogSink>, durable);
    let engine = StorageEngine::with_durability(LocalDurability::new(log));
    for (table, tenant) in tables {
        engine.create_table(*table, *tenant);
    }
    let mut report = replay_records(&engine, &scan.records)?;
    report.durable_lsn = durable;
    report.truncated_bytes = truncated;
    Ok((engine, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WriteOp;
    use polardbx_common::{Key, Row, TrxId, Value};

    const T: TableId = TableId(1);
    const TEN: TenantId = TenantId(1);

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, v: &str) -> Row {
        Row::new(vec![Value::Int(n), Value::str(v)])
    }

    /// A source engine over a shared sink, with one committed, one aborted,
    /// one prepared-undecided, and one still-active transaction.
    fn crashed_sink() -> Arc<VecSink> {
        let sink = VecSink::new();
        let e = StorageEngine::with_sink(Arc::clone(&sink) as Arc<dyn LogSink>);
        e.create_table(T, TEN);
        // Committed.
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "committed"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        // Aborted.
        e.begin(TrxId(2), 10);
        e.write(TrxId(2), T, key(2), WriteOp::Insert(row(2, "aborted"))).unwrap();
        e.abort(TrxId(2));
        // Prepared, no decision: in-doubt at the crash.
        e.begin(TrxId(3), 10);
        e.write(TrxId(3), T, key(3), WriteOp::Insert(row(3, "indoubt"))).unwrap();
        e.prepare(TrxId(3), 20).unwrap();
        // Active, never prepared: its redo never hit the log (redo ships at
        // prepare/commit), so replay sees nothing of it.
        e.begin(TrxId(4), 10);
        e.write(TrxId(4), T, key(4), WriteOp::Insert(row(4, "active"))).unwrap();
        sink
    }

    #[test]
    fn replay_rebuilds_committed_and_in_doubt() {
        let sink = crashed_sink();
        let (e, report) = recovered_engine(sink, &[(T, TEN)]).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.aborted, 1);
        assert_eq!(report.in_doubt, vec![(TrxId(3), 20)]);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.records > 0);
        // Committed row visible at its recorded commit-ts.
        assert_eq!(e.read(T, &key(1), 10, None).unwrap(), Some(row(1, "committed")));
        assert_eq!(e.read(T, &key(1), 9, None).unwrap(), None);
        // Aborted row gone.
        assert_eq!(e.read(T, &key(2), 100, None).unwrap(), None);
        // In-doubt transaction is PREPARED again: readers meeting its
        // intent block until the resolver settles it (§IV case 2), exactly
        // as they did before the crash.
        assert!(matches!(e.txn_state(TrxId(3)), Some(TxnState::Prepared { prepare_ts: 20 })));
    }

    #[test]
    fn in_doubt_commit_after_recovery_becomes_visible() {
        let sink = crashed_sink();
        let (e, report) = recovered_engine(sink, &[(T, TEN)]).unwrap();
        assert_eq!(report.in_doubt.len(), 1);
        // The resolver learns COMMIT from the arbiter and finishes phase 2.
        e.commit(TrxId(3), 25).unwrap();
        assert_eq!(e.read(T, &key(3), 25, None).unwrap(), Some(row(3, "indoubt")));
        assert_eq!(e.read(T, &key(3), 19, None).unwrap(), None);
    }

    #[test]
    fn in_doubt_abort_after_recovery_rolls_back() {
        let sink = crashed_sink();
        let (e, _) = recovered_engine(sink, &[(T, TEN)]).unwrap();
        e.abort(TrxId(3));
        assert_eq!(e.read(T, &key(3), 100, None).unwrap(), None);
    }

    #[test]
    fn replay_twice_is_identical_to_once() {
        let sink = crashed_sink();
        let content = sink.contiguous();
        let scan = scan_records(&content);
        assert!(!scan.torn);

        let once = StorageEngine::in_memory();
        once.create_table(T, TEN);
        replay_records(&once, &scan.records).unwrap();

        let twice = StorageEngine::in_memory();
        twice.create_table(T, TEN);
        let r1 = replay_records(&twice, &scan.records).unwrap();
        let r2 = replay_records(&twice, &scan.records).unwrap();
        assert_eq!(r1.committed, 1);
        assert_eq!(r2.committed, 0, "second replay must re-commit nothing");
        assert_eq!(r2.in_doubt, r1.in_doubt, "in-doubt set is stable");

        // In-doubt state identical before resolution.
        assert_eq!(once.txn_state(TrxId(3)), twice.txn_state(TrxId(3)));
        // Resolve the in-doubt transaction the same way on both engines;
        // full-table scans (which would otherwise block on its intent) must
        // then agree everywhere.
        once.commit(TrxId(3), 25).unwrap();
        twice.commit(TrxId(3), 25).unwrap();
        assert_eq!(
            once.scan_table(T, u64::MAX).unwrap(),
            twice.scan_table(T, u64::MAX).unwrap()
        );
        assert_eq!(once.scan_table(T, u64::MAX).unwrap().len(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let sink = crashed_sink();
        let full = sink.end_lsn();
        // Tear 3 bytes off the final flush (mid-record).
        sink.truncate_to(Lsn(full.raw() - 3));
        let (e, report) = recovered_engine(Arc::clone(&sink), &[(T, TEN)]).unwrap();
        assert!(report.truncated_bytes > 0, "mid-record cut leaves a torn suffix");
        assert!(report.durable_lsn < full);
        // The sink now ends exactly at the durable horizon.
        assert_eq!(sink.end_lsn(), report.durable_lsn);
        // New commits extend the log from the horizon and the result is a
        // clean stream again.
        e.begin(TrxId(50), 30);
        e.write(TrxId(50), T, key(9), WriteOp::Insert(row(9, "post"))).unwrap();
        e.commit(TrxId(50), 40).unwrap();
        let rescan = scan_records(&sink.contiguous());
        assert!(!rescan.torn, "post-recovery log must be clean");
        assert!(sink.end_lsn() > report.durable_lsn);
        // And a second recovery over the extended log sees the new commit.
        let (e2, _) = recovered_engine(sink, &[(T, TEN)]).unwrap();
        assert_eq!(e2.read(T, &key(9), 40, None).unwrap(), Some(row(9, "post")));
    }

    #[test]
    fn empty_sink_recovers_to_empty_engine() {
        let sink = VecSink::new();
        let (e, report) = recovered_engine(sink, &[(T, TEN)]).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.durable_lsn, Lsn::ZERO);
        assert_eq!(e.count_rows(T, u64::MAX).unwrap(), 0);
    }
}
