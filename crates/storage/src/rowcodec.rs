//! Row payload codec for redo records.
//!
//! Rows cross the redo stream as bytes; we reuse the order-preserving key
//! encoding from `polardbx-common`, which round-trips every `Value` — order
//! preservation is free and the codec is already fuzz-tested there.

use bytes::Bytes;
use polardbx_common::{Key, Row};

/// Encode a row for a redo record.
pub fn encode_row(row: &Row) -> Bytes {
    Bytes::from(Key::encode(row.values()).0)
}

/// Decode a row from redo bytes.
pub fn decode_row(bytes: &[u8]) -> Row {
    Row::new(Key(bytes.to_vec()).decode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;

    #[test]
    fn roundtrip() {
        let row = Row::new(vec![
            Value::Int(-5),
            Value::str("name"),
            Value::Double(3.25),
            Value::Null,
            Value::Bytes(vec![0, 1, 2]),
        ]);
        assert_eq!(decode_row(&encode_row(&row)), row);
    }

    #[test]
    fn empty_row() {
        let row = Row::empty();
        assert_eq!(decode_row(&encode_row(&row)), row);
    }
}
