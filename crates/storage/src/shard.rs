//! Fixed-arity lock shards for hot engine maps.
//!
//! The group-commit pipeline turns commit durability from N sink writes
//! into ~1 per group, which moves the bottleneck onto whatever else every
//! committer serializes on. In the seed engine that was two global locks:
//! `StorageEngine::active` (one `Mutex<HashMap>` touched by every begin,
//! write, commit and abort) and each `VersionStore`'s single
//! `RwLock<BTreeMap>`. Sharding them by key hash lets independent
//! transactions proceed in parallel so flush groups can actually form.
//!
//! Shard count is fixed at construction (a power of two, default 32):
//! resizing under load would need a global lock, which is exactly what
//! the shards exist to avoid.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Default shard arity for engine-internal maps. 32 shards keep collision
/// probability low for the 32-committer bench point while staying cheap to
/// iterate for whole-map operations (`is_empty`, draining).
pub const DEFAULT_SHARDS: usize = 32;

/// Hash a key to a shard index in `[0, shards)`. `shards` must be a power
/// of two.
pub fn shard_index<K: Hash>(key: &K, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (shards - 1)
}

/// A `HashMap` split into fixed lock shards. Point operations take one
/// shard lock; whole-map operations visit shards one at a time (no global
/// lock, so they are racy snapshots — fine for the monitoring-style uses
/// here).
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> ShardedMap<K, V> {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A map with `n` shards (power of two).
    pub fn with_shards(n: usize) -> ShardedMap<K, V> {
        assert!(n.is_power_of_two(), "shard count must be a power of two");
        ShardedMap { shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Insert, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).lock().insert(key, value)
    }

    /// Remove, returning the value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).lock().remove(key)
    }

    /// Run `f` over the entry for `key` (`None` if absent) under the shard
    /// lock. This is the get/get_mut replacement: values never leave the
    /// lock, so non-`Clone` values work and updates are atomic per key.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(self.shard(key).lock().get_mut(key))
    }

    /// True when every shard is empty (racy snapshot across shards).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// True when any entry matches `f` (racy snapshot across shards, like
    /// [`ShardedMap::is_empty`] — for drain-style monitoring loops).
    pub fn any(&self, mut f: impl FnMut(&K, &V) -> bool) -> bool {
        self.shards.iter().any(|s| s.lock().iter().any(|(k, v)| f(k, v)))
    }

    /// Total entries (racy snapshot across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn point_ops_roundtrip() {
        let m: ShardedMap<u64, String> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        m.insert(2, "c".into());
        assert_eq!(m.len(), 2);
        assert_eq!(m.with(&1, |v| v.cloned()), Some("b".to_string()));
        assert_eq!(m.with(&9, |v| v.cloned()), None);
        m.with(&2, |v| v.unwrap().push('!'));
        assert_eq!(m.remove(&2), Some("c!".into()));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        let occupied = (0..1000u64)
            .map(|k| shard_index(&k, m.shard_count()))
            .collect::<std::collections::HashSet<_>>();
        assert!(occupied.len() > m.shard_count() / 2, "hashing degenerate: {occupied:?}");
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500 {
                        let k = t * 1000 + i;
                        m.insert(k, k);
                        m.with(&k, |v| *v.unwrap() += 1);
                        assert_eq!(m.remove(&k), Some(k + 1));
                    }
                });
            }
        });
        assert!(m.is_empty());
    }
}
