//! RW→RO replication within a PolarDB instance (§II-C).
//!
//! The RW node flushes redo to PolarFS, then *broadcasts* the new LSN to RO
//! nodes, which pull the log range, apply it to their buffer pools, and
//! piggyback their consumed offset `lsn_ROi` back. The RW purges log below
//! `min(lsn_ROi)` and evicts replicas lagging beyond a threshold. Session
//! consistency is implemented by CN tracking `LSN_RW` and the RO waiting
//! until its applied LSN catches up before serving the read.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::time::mono_now;
use polardbx_common::{Error, Key, Lsn, NodeId, Result, Row, TableId, TenantId, TrxId};
use polardbx_wal::{EpochConfig, EpochPipeline, LocalEpochSink, LogBuffer, LogSink, Mtr, VecSink};

use crate::engine::{Durability, LocalDurability, RedoApplier, StorageEngine, WriteOp};
use crate::mvcc as polardbx_storage_mvcc;

/// Session-consistency token: the RW LSN the client last observed. Reads
/// routed to an RO must wait until the replica has applied at least this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SessionToken(pub Lsn);

/// A read-only replica node.
pub struct RoNode {
    /// Node id.
    pub id: NodeId,
    /// The replica's engine (applied state).
    pub engine: Arc<StorageEngine>,
    applier: RedoApplier,
    applied: AtomicU64,
    /// Artificial per-batch apply delay for lag-injection tests.
    apply_delay: Mutex<Duration>,
    alive: std::sync::atomic::AtomicBool,
}

impl RoNode {
    fn new(id: NodeId) -> Arc<RoNode> {
        let engine = StorageEngine::in_memory();
        Arc::new(RoNode {
            id,
            applier: RedoApplier::new(Arc::clone(&engine)),
            engine,
            applied: AtomicU64::new(0),
            apply_delay: Mutex::new(Duration::ZERO),
            alive: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// LSN applied so far (`lsn_ROi`).
    pub fn applied_lsn(&self) -> Lsn {
        Lsn(self.applied.load(Ordering::Acquire))
    }

    /// Inject apply slowness (models CPU/network congestion on the RO).
    pub fn set_apply_delay(&self, d: Duration) {
        *self.apply_delay.lock() = d;
    }

    fn apply_batch(&self, end: Lsn, bytes: Bytes) {
        let d = *self.apply_delay.lock();
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        let _ = self.applier.apply_bytes(bytes);
        self.applied.fetch_max(end.raw(), Ordering::AcqRel);
    }

    /// Snapshot read at the replica's current applied snapshot, honouring a
    /// session token: waits until `token` is applied (§II-C session
    /// consistency), then reads at the replica's latest version.
    pub fn read(
        &self,
        table: TableId,
        key: &Key,
        token: SessionToken,
        timeout: Duration,
    ) -> Result<Option<Row>> {
        self.wait_for(token, timeout)?;
        self.engine.read(table, key, u64::MAX, None)
    }

    /// Block until the replica has applied `token`.
    pub fn wait_for(&self, token: SessionToken, timeout: Duration) -> Result<()> {
        let deadline = mono_now() + timeout;
        while self.applied_lsn() < token.0 {
            if mono_now() >= deadline {
                return Err(Error::Timeout { what: format!("RO catch-up to {}", token.0) });
            }
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Is the node in the cluster?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }
}

/// The read-write node: owns the authoritative engine and the redo feed.
pub struct RwNode {
    /// Node id.
    pub id: NodeId,
    /// The RW engine.
    pub engine: Arc<StorageEngine>,
    log: Arc<LogBuffer>,
    sink: Arc<VecSink>,
    ros: RwLock<Vec<Arc<RoNode>>>,
    /// Offset of log already shipped to ROs.
    shipped: Mutex<Lsn>,
    next_ro: AtomicU64,
    /// Mirror of created tables so new ROs can register them.
    tables: Mutex<Vec<(TableId, TenantId)>>,
}

/// Durability provider that also feeds the RO replication stream.
struct RwDurability {
    local: Arc<LocalDurability>,
}

impl Durability for RwDurability {
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        self.local.make_durable(mtrs)
    }
}

impl RwNode {
    /// A fresh RW node.
    pub fn new(id: NodeId) -> Arc<RwNode> {
        let sink = VecSink::new();
        let log = LogBuffer::new(sink.clone() as Arc<dyn LogSink>);
        let local = LocalDurability::new(Arc::clone(&log));
        let engine =
            StorageEngine::with_durability(Arc::new(RwDurability { local }) as Arc<dyn Durability>);
        Arc::new(RwNode {
            id,
            engine,
            log,
            sink,
            ros: RwLock::new(Vec::new()),
            shipped: Mutex::new(Lsn::ZERO),
            next_ro: AtomicU64::new(id.raw() * 100 + 1),
            tables: Mutex::new(Vec::new()),
        })
    }

    /// Switch this node's engine to the epoch commit pipeline (ISSUE 7),
    /// writing epochs through the same [`LogBuffer`] the RO stream ships
    /// from. Epochs are plain concatenations of the per-txn encodings the
    /// serial path writes, so replication and RO apply are unchanged.
    pub fn enable_epoch(&self) -> Arc<EpochPipeline> {
        self.engine.enable_epoch(LocalEpochSink::new(Arc::clone(&self.log)), EpochConfig::default())
    }

    /// Add an RO replica. The replica starts empty and catches up from the
    /// start of the log — "add RO nodes … in minutes" because no table data
    /// is copied, only log applied (here: instantaneous at test scale).
    pub fn add_ro(&self) -> Arc<RoNode> {
        let ro = RoNode::new(NodeId(self.next_ro.fetch_add(1, Ordering::Relaxed)));
        // Mirror table registrations.
        for (table, tenant) in self.table_map() {
            ro.engine.create_table(table, tenant);
        }
        // Catch the newcomer up to everything already shipped, holding the
        // ship lock so a concurrent ship cannot slip a batch past us.
        let shipped = self.shipped.lock();
        if *shipped > Lsn::ZERO {
            let batch = Bytes::from(self.sink.range(Lsn::ZERO, *shipped));
            ro.apply_batch(*shipped, batch);
        }
        self.ros.write().push(Arc::clone(&ro));
        drop(shipped);
        // And anything flushed but not yet shipped.
        self.ship();
        ro
    }

    fn table_map(&self) -> Vec<(TableId, TenantId)> {
        self.tables.lock().clone()
    }

    /// Raw contents of the node's redo log (tests/debugging).
    pub fn log_sink_bytes(&self) -> Vec<u8> {
        self.sink.contiguous()
    }

    /// Registered RO replicas.
    pub fn ros(&self) -> Vec<Arc<RoNode>> {
        self.ros.read().clone()
    }

    /// Current RW LSN (`LSN_RW`) — the session token new reads should carry.
    pub fn session_token(&self) -> SessionToken {
        SessionToken(self.log.flushed())
    }

    /// Broadcast new log to replicas (step ④/⑤ of Fig 3). Called after
    /// commits; returns the shipped-through LSN.
    pub fn ship(&self) -> Lsn {
        let mut shipped = self.shipped.lock();
        let head = self.log.flushed();
        if head > *shipped {
            // Ship only the unshipped tail: `range` copies just those
            // bytes, so the 1ms-cadence shipper stays O(new bytes) instead
            // of re-concatenating the whole log every tick.
            let batch = Bytes::from(self.sink.range(*shipped, head));
            for ro in self.ros.read().iter() {
                if ro.is_alive() {
                    ro.apply_batch(head, batch.clone());
                }
            }
            *shipped = head;
        }
        *shipped
    }

    /// The log purge horizon: `min(lsn_ROi)` (step ⑧ of Fig 3).
    pub fn purge_horizon(&self) -> Lsn {
        self.ros
            .read()
            .iter()
            .filter(|r| r.is_alive())
            .map(|r| r.applied_lsn())
            .min()
            .unwrap_or_else(|| self.log.flushed())
    }

    /// Evict replicas lagging more than `max_lag` bytes behind (§II-C:
    /// "such node RO_k will be detected and kicked out of the cluster").
    /// Returns evicted node ids.
    pub fn evict_laggards(&self, max_lag: u64) -> Vec<NodeId> {
        let head = self.log.flushed();
        let mut evicted = Vec::new();
        self.ros.write().retain(|ro| {
            let lag = head.raw().saturating_sub(ro.applied_lsn().raw());
            if lag > max_lag {
                ro.alive.store(false, Ordering::Relaxed);
                evicted.push(ro.id);
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Create a table on the RW and all replicas.
    pub fn create_table(&self, table: TableId, tenant: TenantId) {
        self.engine.create_table(table, tenant);
        self.tables.lock().push((table, tenant));
        for ro in self.ros.read().iter() {
            ro.engine.create_table(table, tenant);
        }
    }

    /// Attach an existing store (shard/tenant arriving from another node
    /// over shared storage). The replicas share the same store by
    /// reference: they only read, and MVCC versions carry their commit
    /// timestamps, so shared access is consistent.
    pub fn attach_table(
        &self,
        table: TableId,
        store: Arc<polardbx_storage_mvcc::VersionStore>,
        tenant: TenantId,
    ) {
        self.engine.attach_table(table, Arc::clone(&store), tenant);
        self.tables.lock().push((table, tenant));
        for ro in self.ros.read().iter() {
            ro.engine.attach_table(table, Arc::clone(&store), tenant);
        }
    }

    /// Detach a table from the RW and its replicas, returning the store.
    pub fn detach_table(
        &self,
        table: TableId,
    ) -> Option<Arc<polardbx_storage_mvcc::VersionStore>> {
        self.tables.lock().retain(|(t, _)| *t != table);
        for ro in self.ros.read().iter() {
            ro.engine.detach_table(table);
        }
        self.engine.detach_table(table)
    }

    /// Convenience write path: run a single-row transaction and ship.
    pub fn execute_write(
        &self,
        trx: TrxId,
        snapshot_ts: u64,
        commit_ts: u64,
        table: TableId,
        key: Key,
        op: WriteOp,
    ) -> Result<Lsn> {
        self.engine.begin(trx, snapshot_ts);
        if let Err(e) = self.engine.write(trx, table, key, op) {
            self.engine.abort(trx);
            return Err(e);
        }
        let lsn = self.engine.commit(trx, commit_ts)?;
        self.ship();
        Ok(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, v: &str) -> Row {
        Row::new(vec![Value::Int(n), Value::str(v)])
    }

    const T: TableId = TableId(1);

    #[test]
    fn ro_applies_rw_commits() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        let ro = rw.add_ro();
        rw.execute_write(TrxId(1), 0, 10, T, key(1), WriteOp::Insert(row(1, "x"))).unwrap();
        let token = rw.session_token();
        let got = ro.read(T, &key(1), token, Duration::from_secs(1)).unwrap();
        assert_eq!(got, Some(row(1, "x")));
    }

    #[test]
    fn late_ro_catches_up_on_join() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        rw.execute_write(TrxId(1), 0, 10, T, key(1), WriteOp::Insert(row(1, "pre"))).unwrap();
        let ro = rw.add_ro();
        let token = rw.session_token();
        assert_eq!(
            ro.read(T, &key(1), token, Duration::from_secs(1)).unwrap(),
            Some(row(1, "pre"))
        );
    }

    #[test]
    fn session_consistency_waits() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        let ro = rw.add_ro();
        ro.set_apply_delay(Duration::from_millis(30));
        // Write commits on RW; shipping happens on a helper thread so the
        // read below races the apply.
        let rw2 = Arc::clone(&rw);
        let writer = std::thread::spawn(move || {
            rw2.execute_write(TrxId(1), 0, 10, T, key(1), WriteOp::Insert(row(1, "sc")))
                .unwrap();
            rw2.session_token()
        });
        let token = writer.join().unwrap();
        // Session read must block until the delayed apply lands.
        let got = ro.read(T, &key(1), token, Duration::from_secs(2)).unwrap();
        assert_eq!(got, Some(row(1, "sc")));
    }

    #[test]
    fn stale_token_times_out() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        let ro = rw.add_ro();
        let future = SessionToken(Lsn(1_000_000));
        assert!(matches!(
            ro.wait_for(future, Duration::from_millis(20)),
            Err(Error::Timeout { .. })
        ));
    }

    #[test]
    fn laggard_eviction() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        let _ro_ok = rw.add_ro();
        // A slow replica: block its applies entirely by marking delay large
        // and never shipping to it — emulate by adding after writes and
        // manually zeroing its applied LSN.
        rw.execute_write(TrxId(1), 0, 10, T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        let slow = rw.add_ro();
        slow.applied.store(0, Ordering::Release);
        let evicted = rw.evict_laggards(0);
        assert_eq!(evicted, vec![slow.id]);
        assert_eq!(rw.ros().len(), 1);
        assert!(!slow.is_alive());
    }

    #[test]
    fn purge_horizon_is_min_applied() {
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        let r1 = rw.add_ro();
        let _r2 = rw.add_ro();
        rw.execute_write(TrxId(1), 0, 10, T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        assert_eq!(rw.purge_horizon(), rw.log.flushed());
        // Hold one replica back.
        r1.applied.store(1, Ordering::Release);
        assert_eq!(rw.purge_horizon(), Lsn(1));
    }

    #[test]
    fn scaling_read_throughput_with_ros() {
        // More replicas serve more reads without touching the RW engine:
        // all replicas return the same data independently.
        let rw = RwNode::new(NodeId(1));
        rw.create_table(T, TenantId(1));
        for i in 0..10i64 {
            rw.execute_write(
                TrxId(i as u64 + 1),
                0,
                10 + i as u64,
                T,
                key(i),
                WriteOp::Insert(row(i, "v")),
            )
            .unwrap();
        }
        let ros: Vec<_> = (0..4).map(|_| rw.add_ro()).collect();
        let token = rw.session_token();
        for ro in &ros {
            for i in 0..10i64 {
                assert!(ro
                    .read(T, &key(i), token, Duration::from_secs(1))
                    .unwrap()
                    .is_some());
            }
        }
    }
}
