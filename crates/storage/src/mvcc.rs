//! MVCC version store with snapshot-isolation visibility (§IV).
//!
//! Rows carry version chains. A snapshot read at `snapshot_ts` sees the
//! newest version whose writer committed with `commit_ts <= snapshot_ts`.
//! The three §IV cases are implemented literally:
//!
//! 1. writer COMMITTED → visibility decided by its `commit_ts`;
//! 2. writer PREPARED → the reader must wait for the decision
//!    ([`ReadResult::MustWait`], resolved through [`crate::txn::TxnTable`]);
//! 3. writer ACTIVE → invisible, skip to older versions.
//!
//! Writes are first-committer-wins: installing an intent over a pending
//! intent of another transaction, or over a committed version newer than
//! the writer's snapshot, raises a write conflict.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::time::Duration;

use polardbx_common::{Error, Key, Result, Row, TrxId, VersionRef};

use crate::shard::{shard_index, DEFAULT_SHARDS};
use crate::txn::{TxnState, TxnTable};

/// What a version does to the row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionOp {
    /// The row exists with this content.
    Put(Row),
    /// The row is deleted (tombstone).
    Delete,
}

#[derive(Debug, Clone)]
struct Version {
    trx: TrxId,
    /// Commit timestamp; `None` while the writer is undecided.
    decided_ts: Option<u64>,
    op: VersionOp,
}

/// Outcome of a low-level visibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// A visible row.
    Row(Row),
    /// No visible version (never existed, or deleted at this snapshot).
    NotFound,
    /// A PREPARED writer blocks the decision; wait for it, then retry.
    MustWait(TrxId),
}

/// Versioned key-value store for one table's primary data (or one hidden
/// index table).
///
/// The store does not own a transaction table; callers pass the node's
/// [`TxnTable`] to each operation. This keeps stores *relocatable*: during
/// tenant migration (§V) a store moves between RW nodes without copying —
/// only the owning engine (and hence the transaction table consulted)
/// changes, exactly like shared-storage data changing its writer.
///
/// Internally the key space is split into fixed lock shards (hash of the
/// encoded key) so concurrent committers stamping disjoint keys don't
/// serialize on one `RwLock` — a prerequisite for group commit to actually
/// form groups. Range scans visit every shard and merge-sort the results;
/// each shard keeps a `BTreeMap` so per-shard range filtering stays cheap.
pub struct VersionStore {
    shards: Vec<RwLock<BTreeMap<Key, Vec<Version>>>>,
}

impl Default for VersionStore {
    fn default() -> Self {
        VersionStore::new()
    }
}

impl VersionStore {
    /// An empty store with [`DEFAULT_SHARDS`] lock shards.
    pub fn new() -> VersionStore {
        VersionStore {
            shards: (0..DEFAULT_SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    fn shard(&self, key: &Key) -> &RwLock<BTreeMap<Key, Vec<Version>>> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Install a write intent for `trx` (snapshot taken at `snapshot_ts`).
    ///
    /// First-committer-wins validation happens here, at write time — the
    /// classic SI implementation InnoDB-style engines use.
    pub fn write(
        &self,
        txns: &TxnTable,
        trx: TrxId,
        snapshot_ts: u64,
        key: Key,
        op: VersionOp,
    ) -> Result<()> {
        let mut map = self.shard(&key).write();
        let chain = map.entry(key.clone()).or_default();
        // Drop aborted leftovers opportunistically.
        chain.retain(|v| {
            v.decided_ts.is_some()
                || !matches!(txns.state(v.trx), Some(TxnState::Aborted) | None)
        });
        if let Some(newest) = chain.last() {
            if newest.trx != trx {
                // An unstamped version may belong to a writer that already
                // decided in the transaction table (commit stamps the table
                // before the store) — use the table's verdict then.
                let decided = newest.decided_ts.or_else(|| match txns.state(newest.trx) {
                    Some(TxnState::Committed { commit_ts }) => Some(commit_ts),
                    _ => None,
                });
                match decided {
                    Some(ts) if ts > snapshot_ts => {
                        return Err(Error::WriteConflict { key: format!("{key}") });
                    }
                    Some(_) => {}
                    None => {
                        // Another pending writer holds the row.
                        return Err(Error::WriteConflict { key: format!("{key}") });
                    }
                }
            }
        }
        // Same transaction overwrites its own intent in place.
        if let Some(last) = chain.last_mut() {
            if last.trx == trx && last.decided_ts.is_none() {
                last.op = op;
                return Ok(());
            }
        }
        chain.push(Version { trx, decided_ts: None, op });
        Ok(())
    }

    /// Stamp `trx`'s intents on `keys` as committed at `commit_ts`.
    pub fn commit(&self, trx: TrxId, commit_ts: u64, keys: &[Key]) {
        for key in keys {
            let mut map = self.shard(key).write();
            if let Some(chain) = map.get_mut(key) {
                for v in chain.iter_mut() {
                    if v.trx == trx && v.decided_ts.is_none() {
                        v.decided_ts = Some(commit_ts);
                    }
                }
            }
        }
    }

    /// Remove `trx`'s intents on `keys` (rollback).
    pub fn abort(&self, trx: TrxId, keys: &[Key]) {
        for key in keys {
            let mut map = self.shard(key).write();
            if let Some(chain) = map.get_mut(key) {
                chain.retain(|v| !(v.trx == trx && v.decided_ts.is_none()));
                if chain.is_empty() {
                    map.remove(key);
                }
            }
        }
    }

    /// Torn-epoch rollback of a *decided* transaction: revert `trx`'s
    /// stamped versions to undecided intents (`decided_ts` back to `None`).
    /// The commit decision is durable at the arbiter, so the versions must
    /// survive — they return to the PREPARED visibility regime until the
    /// decision is re-driven.
    pub fn unstamp(&self, trx: TrxId, keys: &[Key]) {
        for key in keys {
            let mut map = self.shard(key).write();
            if let Some(chain) = map.get_mut(key) {
                for v in chain.iter_mut() {
                    if v.trx == trx {
                        v.decided_ts = None;
                    }
                }
            }
        }
    }

    /// Torn-epoch rollback of an *undecided* transaction: remove `trx`'s
    /// versions outright, stamped or not (presumed abort — the commit
    /// record never became durable). [`VersionStore::abort`] only removes
    /// unstamped intents; early lock release stamps before durability, so
    /// this stronger form is needed.
    pub fn rollback_stamped(&self, trx: TrxId, keys: &[Key]) {
        for key in keys {
            let mut map = self.shard(key).write();
            if let Some(chain) = map.get_mut(key) {
                chain.retain(|v| v.trx != trx);
                if chain.is_empty() {
                    map.remove(key);
                }
            }
        }
    }

    /// Apply an already-committed change directly (redo replay on RO nodes
    /// and Paxos followers — the writer's decision travelled with the log).
    pub fn apply_committed(&self, trx: TrxId, commit_ts: u64, key: Key, op: VersionOp) {
        let mut map = self.shard(&key).write();
        let chain = map.entry(key).or_default();
        chain.push(Version { trx, decided_ts: Some(commit_ts), op });
    }

    fn visibility(
        &self,
        txns: &TxnTable,
        chain: &[Version],
        snapshot_ts: u64,
        me: Option<TrxId>,
    ) -> ReadResult {
        self.visibility_observed(txns, chain, snapshot_ts, me, false).0
    }

    /// [`VersionStore::visibility`] that also reports *which* version the
    /// read resolved to (for history recording), and optionally ignores
    /// PREPARED writers instead of waiting — a deliberately broken mode
    /// (`ignore_prepared = true`) used only to validate the isolation
    /// checker: it reads below the snapshot watermark, exactly the §IV
    /// case-2 violation HLC-SI exists to prevent.
    fn visibility_observed(
        &self,
        txns: &TxnTable,
        chain: &[Version],
        snapshot_ts: u64,
        me: Option<TrxId>,
        ignore_prepared: bool,
    ) -> (ReadResult, Option<VersionRef>) {
        for v in chain.iter().rev() {
            if Some(v.trx) == me {
                let observed = Some(VersionRef { writer: v.trx, commit_ts: v.decided_ts });
                return match &v.op {
                    VersionOp::Put(row) => (ReadResult::Row(row.clone()), observed),
                    VersionOp::Delete => (ReadResult::NotFound, observed),
                };
            }
            match v.decided_ts {
                Some(ts) if ts <= snapshot_ts => {
                    // Early lock release: a stamped version whose writer's
                    // epoch is still in flight must not escape to another
                    // transaction — its commit could yet be rolled back by
                    // a torn epoch. Gate until the epoch resolves.
                    if txns.is_unstable(v.trx) {
                        return (ReadResult::MustWait(v.trx), None);
                    }
                    let observed = Some(VersionRef { writer: v.trx, commit_ts: Some(ts) });
                    return match &v.op {
                        VersionOp::Put(row) => (ReadResult::Row(row.clone()), observed),
                        VersionOp::Delete => (ReadResult::NotFound, observed),
                    };
                }
                Some(_) => continue, // committed in the future of this snapshot
                None => match txns.state(v.trx) {
                    Some(TxnState::Prepared { .. }) => {
                        if ignore_prepared {
                            continue;
                        }
                        return (ReadResult::MustWait(v.trx), None);
                    }
                    Some(TxnState::Committed { commit_ts }) => {
                        if commit_ts <= snapshot_ts {
                            if txns.is_unstable(v.trx) {
                                return (ReadResult::MustWait(v.trx), None);
                            }
                            let observed =
                                Some(VersionRef { writer: v.trx, commit_ts: Some(commit_ts) });
                            return match &v.op {
                                VersionOp::Put(row) => (ReadResult::Row(row.clone()), observed),
                                VersionOp::Delete => (ReadResult::NotFound, observed),
                            };
                        }
                        continue;
                    }
                    // ACTIVE → invisible; ABORTED/unknown → stale garbage.
                    _ => continue,
                },
            }
        }
        (ReadResult::NotFound, None)
    }

    /// Point read at `snapshot_ts`. `me` marks the reading transaction so
    /// it sees its own uncommitted writes.
    pub fn read(
        &self,
        txns: &TxnTable,
        key: &Key,
        snapshot_ts: u64,
        me: Option<TrxId>,
    ) -> ReadResult {
        let map = self.shard(key).read();
        match map.get(key) {
            Some(chain) => self.visibility(txns, chain, snapshot_ts, me),
            None => ReadResult::NotFound,
        }
    }

    /// Point read that transparently waits out PREPARED writers (§IV case 2).
    pub fn read_waiting(
        &self,
        txns: &TxnTable,
        key: &Key,
        snapshot_ts: u64,
        me: Option<TrxId>,
        timeout: Duration,
    ) -> Result<Option<Row>> {
        self.read_waiting_observed(txns, key, snapshot_ts, me, timeout, false)
            .map(|(row, _)| row)
    }

    /// [`VersionStore::read_waiting`] that also reports the observed
    /// version (for history recording). `ignore_prepared` skips PREPARED
    /// writers instead of waiting — checker-validation mode only.
    pub fn read_waiting_observed(
        &self,
        txns: &TxnTable,
        key: &Key,
        snapshot_ts: u64,
        me: Option<TrxId>,
        timeout: Duration,
        ignore_prepared: bool,
    ) -> Result<(Option<Row>, Option<VersionRef>)> {
        loop {
            let (result, observed) = {
                let map = self.shard(key).read();
                match map.get(key) {
                    Some(chain) => {
                        self.visibility_observed(txns, chain, snapshot_ts, me, ignore_prepared)
                    }
                    None => (ReadResult::NotFound, None),
                }
            };
            match result {
                ReadResult::Row(r) => return Ok((Some(r), observed)),
                ReadResult::NotFound => return Ok((None, observed)),
                ReadResult::MustWait(writer) => {
                    Self::wait_out(txns, writer, timeout)?;
                }
            }
        }
    }

    /// Resolve a `MustWait`: a PREPARED writer needs its decision, an
    /// unstable (epoch-in-flight) writer needs its durability horizon.
    /// Both waits return immediately when already satisfied, so calling
    /// them in sequence is race-free — the visibility retry re-checks.
    fn wait_out(txns: &TxnTable, writer: TrxId, timeout: Duration) -> Result<()> {
        txns.wait_decided(writer, timeout)?;
        txns.wait_stable(writer, timeout)
    }

    /// Range scan of visible rows at `snapshot_ts`, waiting out PREPARED
    /// writers. Bounds are on encoded keys.
    pub fn scan(
        &self,
        txns: &TxnTable,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        snapshot_ts: u64,
        me: Option<TrxId>,
        timeout: Duration,
    ) -> Result<Vec<(Key, Row)>> {
        self.scan_observed(txns, lower, upper, snapshot_ts, me, timeout, false)
            .map(|rows| rows.into_iter().map(|(k, r, _)| (k, r)).collect())
    }

    /// [`VersionStore::scan`] that also reports which version each row
    /// resolved to (for history recording). `ignore_prepared` skips
    /// PREPARED writers instead of waiting — checker-validation mode only.
    #[allow(clippy::too_many_arguments)]
    pub fn scan_observed(
        &self,
        txns: &TxnTable,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        snapshot_ts: u64,
        me: Option<TrxId>,
        timeout: Duration,
        ignore_prepared: bool,
    ) -> Result<Vec<(Key, Row, VersionRef)>> {
        loop {
            let mut pending_writer = None;
            let mut out = Vec::new();
            // Shards partition the key space by hash, not by range: every
            // shard may hold keys inside the bounds, so visit them all and
            // sort the merged result. A MustWait aborts the whole pass —
            // the retry re-reads every shard, so the result is still one
            // consistent snapshot.
            'shards: for shard in &self.shards {
                let map = shard.read();
                for (k, chain) in map.range::<Key, _>((lower, upper)) {
                    match self.visibility_observed(txns, chain, snapshot_ts, me, ignore_prepared)
                    {
                        (ReadResult::Row(r), observed) => {
                            let observed = observed
                                .unwrap_or(VersionRef { writer: TrxId(0), commit_ts: None });
                            out.push((k.clone(), r, observed));
                        }
                        (ReadResult::NotFound, _) => {}
                        (ReadResult::MustWait(w), _) => {
                            pending_writer = Some(w);
                            break 'shards;
                        }
                    }
                }
            }
            match pending_writer {
                None => {
                    out.sort_by(|a, b| a.0.cmp(&b.0));
                    return Ok(out);
                }
                Some(w) => {
                    Self::wait_out(txns, w, timeout)?;
                }
            }
        }
    }

    /// Full scan helper.
    pub fn scan_all(
        &self,
        txns: &TxnTable,
        snapshot_ts: u64,
        me: Option<TrxId>,
        timeout: Duration,
    ) -> Result<Vec<(Key, Row)>> {
        self.scan(txns, Bound::Unbounded, Bound::Unbounded, snapshot_ts, me, timeout)
    }

    /// Purge version garbage: keep, per key, only the newest version
    /// committed at or before `horizon` plus everything newer than it.
    pub fn purge(&self, horizon: u64) {
        for shard in &self.shards {
            let mut map = shard.write();
            map.retain(|_, chain| {
                if let Some(cut) = chain
                    .iter()
                    .rposition(|v| matches!(v.decided_ts, Some(ts) if ts <= horizon))
                {
                    chain.drain(0..cut);
                }
                // Remove a trailing tombstone that is the only version left.
                !(chain.len() == 1
                    && matches!(chain[0].op, VersionOp::Delete)
                    && matches!(chain[0].decided_ts, Some(ts) if ts <= horizon))
            });
        }
    }

    /// Number of keys with any version.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total number of versions (GC metric).
    pub fn version_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().values().map(Vec::len).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;
    use std::sync::Arc;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, s: &str) -> Row {
        Row::new(vec![Value::Int(n), Value::str(s)])
    }

    fn store() -> (Arc<VersionStore>, Arc<TxnTable>) {
        (Arc::new(VersionStore::new()), Arc::new(TxnTable::new()))
    }

    fn commit_one(s: &VersionStore, t: &TxnTable, trx: TrxId, ts: u64, keys: &[Key]) {
        t.commit(trx, ts).unwrap();
        s.commit(trx, ts, keys);
    }

    #[test]
    fn snapshot_sees_only_past_commits() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "v1"))).unwrap();
        commit_one(&s, &t, TrxId(1), 10, &[key(1)]);

        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 10, key(1), VersionOp::Put(row(1, "v2"))).unwrap();
        commit_one(&s, &t, TrxId(2), 20, &[key(1)]);

        assert_eq!(s.read(&t, &key(1), 5, None), ReadResult::NotFound);
        assert_eq!(s.read(&t, &key(1), 10, None), ReadResult::Row(row(1, "v1")));
        assert_eq!(s.read(&t, &key(1), 15, None), ReadResult::Row(row(1, "v1")));
        assert_eq!(s.read(&t, &key(1), 20, None), ReadResult::Row(row(1, "v2")));
    }

    #[test]
    fn own_writes_visible() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "mine"))).unwrap();
        assert_eq!(s.read(&t, &key(1), 0, Some(TrxId(1))), ReadResult::Row(row(1, "mine")));
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::NotFound, "others blind");
    }

    #[test]
    fn active_writer_invisible_prepared_blocks() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "x"))).unwrap();
        // ACTIVE: case 3 — plain invisible.
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::NotFound);
        // PREPARED: case 2 — reader must wait.
        t.prepare(TrxId(1), 50).unwrap();
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::MustWait(TrxId(1)));
    }

    #[test]
    fn read_waiting_resolves_after_commit() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "late"))).unwrap();
        t.prepare(TrxId(1), 50).unwrap();
        let (s2, t2) = (Arc::clone(&s), Arc::clone(&t));
        let reader = std::thread::spawn(move || {
            s2.read_waiting(&t2, &key(1), 100, None, Duration::from_secs(2)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.commit(TrxId(1), 60).unwrap();
        s.commit(TrxId(1), 60, &[key(1)]);
        assert_eq!(reader.join().unwrap(), Some(row(1, "late")));
    }

    #[test]
    fn write_write_conflict_pending() {
        let (s, t) = store();
        t.begin(TrxId(1));
        t.begin(TrxId(2));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "a"))).unwrap();
        let err = s.write(&t, TrxId(2), 0, key(1), VersionOp::Put(row(1, "b"))).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
    }

    #[test]
    fn first_committer_wins() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "a"))).unwrap();
        commit_one(&s, &t, TrxId(1), 10, &[key(1)]);
        // T2's snapshot (5) predates T1's commit (10): conflict.
        t.begin(TrxId(2));
        let err = s.write(&t, TrxId(2), 5, key(1), VersionOp::Put(row(1, "b"))).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
        // A later snapshot is fine.
        t.begin(TrxId(3));
        s.write(&t, TrxId(3), 10, key(1), VersionOp::Put(row(1, "c"))).unwrap();
    }

    #[test]
    fn abort_removes_intents() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "x"))).unwrap();
        t.abort(TrxId(1));
        s.abort(TrxId(1), &[key(1)]);
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::NotFound);
        assert_eq!(s.key_count(), 0);
        // The row is writable again.
        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 0, key(1), VersionOp::Put(row(1, "y"))).unwrap();
    }

    #[test]
    fn delete_produces_tombstone_semantics() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "x"))).unwrap();
        commit_one(&s, &t, TrxId(1), 10, &[key(1)]);
        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 10, key(1), VersionOp::Delete).unwrap();
        commit_one(&s, &t, TrxId(2), 20, &[key(1)]);
        assert_eq!(s.read(&t, &key(1), 15, None), ReadResult::Row(row(1, "x")));
        assert_eq!(s.read(&t, &key(1), 25, None), ReadResult::NotFound);
    }

    #[test]
    fn scan_respects_snapshot_and_bounds() {
        let (s, t) = store();
        for i in 0..10i64 {
            let trx = TrxId(100 + i as u64);
            t.begin(trx);
            s.write(&t, trx, 0, key(i), VersionOp::Put(row(i, "v"))).unwrap();
            commit_one(&s, &t, trx, (i as u64 + 1) * 10, &[key(i)]);
        }
        // Snapshot 50 sees keys committed at 10..=50 → i = 0..=4.
        let rows = s.scan_all(&t, 50, None, Duration::from_secs(1)).unwrap();
        assert_eq!(rows.len(), 5);
        // Bounded scan.
        let rows = s
            .scan(
                &t,
                Bound::Included(&key(2)),
                Bound::Excluded(&key(4)),
                u64::MAX,
                None,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, key(2));
    }

    #[test]
    fn scan_waits_for_prepared() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(5), VersionOp::Put(row(5, "p"))).unwrap();
        t.prepare(TrxId(1), 10).unwrap();
        let (s2, t2) = (Arc::clone(&s), Arc::clone(&t));
        let scanner = std::thread::spawn(move || {
            s2.scan_all(&t2, 100, None, Duration::from_secs(2)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.commit(TrxId(1), 20).unwrap();
        s.commit(TrxId(1), 20, &[key(5)]);
        let rows = scanner.join().unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn apply_committed_for_replicas() {
        let (s, t) = store();
        s.apply_committed(TrxId(1), 10, key(1), VersionOp::Put(row(1, "replicated")));
        assert_eq!(s.read(&t, &key(1), 10, None), ReadResult::Row(row(1, "replicated")));
        assert_eq!(s.read(&t, &key(1), 9, None), ReadResult::NotFound);
    }

    #[test]
    fn purge_compacts_chains() {
        let (s, t) = store();
        for v in 1..=5u64 {
            let trx = TrxId(v);
            t.begin(trx);
            s.write(&t, trx, v * 10, key(1), VersionOp::Put(row(1, &format!("v{v}")))).unwrap();
            commit_one(&s, &t, trx, v * 10 + 5, &[key(1)]);
        }
        assert_eq!(s.version_count(), 5);
        s.purge(40); // newest commit <= 40 is v3 (ts 35)
        assert!(s.version_count() <= 3);
        // Reads at/after the horizon still work.
        assert_eq!(s.read(&t, &key(1), 40, None), ReadResult::Row(row(1, "v3")));
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::Row(row(1, "v5")));
    }

    #[test]
    fn unstable_writer_gates_other_readers_not_self() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "elr"))).unwrap();
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        s.commit(TrxId(1), 10, &[key(1)]);
        // Another reader at a covering snapshot must wait for stability.
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::MustWait(TrxId(1)));
        // The writer itself sees its own version (it holds the ticket).
        assert_eq!(s.read(&t, &key(1), 100, Some(TrxId(1))), ReadResult::Row(row(1, "elr")));
        // Older snapshots never observe it, so they are not gated.
        assert_eq!(s.read(&t, &key(1), 5, None), ReadResult::NotFound);
        // Stability lifts the gate.
        t.mark_stable_batch(&[TrxId(1)]);
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::Row(row(1, "elr")));
    }

    #[test]
    fn read_waiting_resolves_after_stability() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "pending"))).unwrap();
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        s.commit(TrxId(1), 10, &[key(1)]);
        let (s2, t2) = (Arc::clone(&s), Arc::clone(&t));
        let reader = std::thread::spawn(move || {
            s2.read_waiting(&t2, &key(1), 100, None, Duration::from_secs(2)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.mark_stable_batch(&[TrxId(1)]);
        assert_eq!(reader.join().unwrap(), Some(row(1, "pending")));
    }

    #[test]
    fn gated_reader_never_sees_a_torn_epoch_rollback() {
        // Race regression: a reader parked on an unstable writer is woken
        // by the rollback's demotion notify. With the inverted order
        // (demote before rollback_stamped) the reader could re-run
        // visibility while the stamped version was still present but the
        // unstable flag already cleared — returning an aborted txn's row.
        // The correct order (versions first, demote last) must yield
        // NotFound on every schedule.
        for _ in 0..50 {
            let (s, t) = store();
            t.begin(TrxId(1));
            s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "dirty"))).unwrap();
            t.mark_unstable(TrxId(1));
            t.commit(TrxId(1), 10).unwrap();
            s.commit(TrxId(1), 10, &[key(1)]);
            let (s2, t2) = (Arc::clone(&s), Arc::clone(&t));
            let reader = std::thread::spawn(move || {
                s2.read_waiting(&t2, &key(1), 100, None, Duration::from_secs(2)).unwrap()
            });
            // Torn-epoch rollback, in the engine's order.
            s.rollback_stamped(TrxId(1), &[key(1)]);
            t.demote_unstable_to_aborted(TrxId(1));
            assert_eq!(reader.join().unwrap(), None, "dirty read of a rolled-back commit");
        }
    }

    #[test]
    fn elr_allows_write_over_unstable_commit() {
        // The early-lock-release win: a later writer with a covering
        // snapshot may overwrite a stamped-but-unstable version without
        // waiting for its epoch to persist.
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "a"))).unwrap();
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        s.commit(TrxId(1), 10, &[key(1)]);
        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 10, key(1), VersionOp::Put(row(1, "b"))).unwrap();
    }

    #[test]
    fn torn_epoch_rollback_paths() {
        let (s, t) = store();
        // Undecided: stamped version is removed wholesale.
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "gone"))).unwrap();
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        s.commit(TrxId(1), 10, &[key(1)]);
        // Versions before state, matching the engine's `fail_unstable`
        // order: the unstable flag must still gate readers while the
        // stamped versions are being removed.
        s.rollback_stamped(TrxId(1), &[key(1)]);
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::NotFound);
        t.demote_unstable_to_aborted(TrxId(1));
        assert_eq!(s.read(&t, &key(1), 100, None), ReadResult::NotFound);
        assert_eq!(s.key_count(), 0);
        // Decided (2PC): stamped version reverts to a prepared intent.
        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 0, key(2), VersionOp::Put(row(2, "kept"))).unwrap();
        t.prepare(TrxId(2), 5).unwrap();
        t.mark_unstable(TrxId(2));
        t.commit(TrxId(2), 12).unwrap();
        s.commit(TrxId(2), 12, &[key(2)]);
        s.unstamp(TrxId(2), &[key(2)]);
        // Mid-rollback (unstamped but not yet demoted): the version is an
        // undecided intent of a still-COMMITTED-but-unstable writer, so a
        // reader must keep waiting rather than observe either outcome.
        assert_eq!(s.read(&t, &key(2), 100, None), ReadResult::MustWait(TrxId(2)));
        t.demote_unstable_to_prepared(TrxId(2), 5);
        // Back in the PREPARED regime: readers wait for the re-decision.
        assert_eq!(s.read(&t, &key(2), 100, None), ReadResult::MustWait(TrxId(2)));
        t.commit(TrxId(2), 12).unwrap();
        s.commit(TrxId(2), 12, &[key(2)]);
        assert_eq!(s.read(&t, &key(2), 100, None), ReadResult::Row(row(2, "kept")));
    }

    #[test]
    fn purge_drops_old_tombstoned_keys() {
        let (s, t) = store();
        t.begin(TrxId(1));
        s.write(&t, TrxId(1), 0, key(1), VersionOp::Put(row(1, "x"))).unwrap();
        commit_one(&s, &t, TrxId(1), 10, &[key(1)]);
        t.begin(TrxId(2));
        s.write(&t, TrxId(2), 10, key(1), VersionOp::Delete).unwrap();
        commit_one(&s, &t, TrxId(2), 20, &[key(1)]);
        s.purge(30);
        assert_eq!(s.key_count(), 0, "fully-deleted old keys are reclaimed");
    }
}
