//! Buffer pool with dirty-page tracking and per-tenant attribution.
//!
//! The data path of this reproduction is the in-memory MVCC store; the
//! buffer pool models the *cost structure* the paper's mechanisms depend
//! on:
//!
//! * checkpointing — "the leader can safely flush dirty pages modified
//!   before DLSN" (§III);
//! * tenant migration — "the source RW will flush all dirty pages
//!   associated with the tenant" (§V), which is why migration takes seconds
//!   rather than the minutes a data copy takes;
//! * RO-node page warmth — a fresh replica faults pages until warm.
//!
//! Pages are synthetic: a row maps to page `hash(key) % pages_per_table`
//! within its table, grouping neighbouring rows the way a B+Tree leaf does.

use parking_lot::Mutex;
use std::collections::HashMap;

use polardbx_common::{Key, Lsn, Result, TableId, TenantId};
use polardbx_polarfs::PageStore;

/// A synthetic page identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning table.
    pub table: TableId,
    /// Page number within the table.
    pub page_no: u64,
}

#[derive(Debug, Clone)]
struct Frame {
    tenant: TenantId,
    dirty: bool,
    /// LSN of the oldest un-flushed change on this page.
    first_dirty_lsn: Lsn,
    /// LRU clock.
    last_used: u64,
}

/// Pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page accesses served from the pool.
    pub hits: u64,
    /// Page accesses that faulted the page in.
    pub misses: u64,
    /// Clean pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages flushed to the page store.
    pub flushes: u64,
}

struct PoolState {
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: BufferPoolStats,
}

/// The buffer pool. Thread-safe; all operations take the pool lock briefly.
pub struct BufferPool {
    state: Mutex<PoolState>,
    capacity: usize,
    pages_per_table: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages, with rows hashed into
    /// `pages_per_table` pages per table.
    pub fn new(capacity: usize, pages_per_table: u64) -> BufferPool {
        assert!(capacity > 0 && pages_per_table > 0);
        BufferPool {
            state: Mutex::new(PoolState {
                frames: HashMap::new(),
                clock: 0,
                stats: BufferPoolStats::default(),
            }),
            capacity,
            pages_per_table,
        }
    }

    /// The page a row's key lives on.
    pub fn page_of(&self, table: TableId, key: &Key) -> PageId {
        PageId { table, page_no: key.hash64() % self.pages_per_table }
    }

    fn touch_inner(&self, st: &mut PoolState, page: PageId, tenant: TenantId) -> bool {
        st.clock += 1;
        let clock = st.clock;
        if let Some(f) = st.frames.get_mut(&page) {
            f.last_used = clock;
            st.stats.hits += 1;
            return true;
        }
        st.stats.misses += 1;
        // Evict the least-recently-used *clean* page if at capacity. Dirty
        // pages are pinned until flushed (simplification of InnoDB's flush
        // list; a full pool of dirty pages grows past capacity rather than
        // stalling, and checkpoints shrink it back).
        if st.frames.len() >= self.capacity {
            if let Some((&victim, _)) = st
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
            {
                st.frames.remove(&victim);
                st.stats.evictions += 1;
            }
        }
        st.frames.insert(
            page,
            Frame { tenant, dirty: false, first_dirty_lsn: Lsn::MAX, last_used: clock },
        );
        false
    }

    /// Record a read access. Returns true on a pool hit.
    pub fn touch_read(&self, page: PageId, tenant: TenantId) -> bool {
        let mut st = self.state.lock();
        self.touch_inner(&mut st, page, tenant)
    }

    /// Record a write at `lsn`: the page becomes dirty.
    pub fn mark_dirty(&self, page: PageId, tenant: TenantId, lsn: Lsn) {
        let mut st = self.state.lock();
        self.touch_inner(&mut st, page, tenant);
        let f = st.frames.get_mut(&page).expect("frame just touched");
        if !f.dirty {
            f.dirty = true;
            f.first_dirty_lsn = lsn;
        }
        f.tenant = tenant;
    }

    /// Flush every dirty page first-dirtied before `upto` (checkpoint).
    /// Returns the number of pages flushed.
    pub fn flush_before(&self, upto: Lsn, store: Option<&PageStore>) -> Result<usize> {
        self.flush_where(store, |f| f.first_dirty_lsn < upto)
    }

    /// Flush every dirty page of `tenant` (tenant migration). Returns the
    /// number flushed.
    pub fn flush_tenant(&self, tenant: TenantId, store: Option<&PageStore>) -> Result<usize> {
        self.flush_where(store, |f| f.tenant == tenant)
    }

    /// Flush everything dirty.
    pub fn flush_all(&self, store: Option<&PageStore>) -> Result<usize> {
        self.flush_where(store, |_| true)
    }

    fn flush_where(
        &self,
        store: Option<&PageStore>,
        pred: impl Fn(&Frame) -> bool,
    ) -> Result<usize> {
        let victims: Vec<PageId> = {
            let st = self.state.lock();
            st.frames
                .iter()
                .filter(|(_, f)| f.dirty && pred(f))
                .map(|(&p, _)| p)
                .collect()
        };
        for &page in &victims {
            if let Some(store) = store {
                // Synthetic page image: the durable bytes stand in for the
                // real page contents (the MVCC store is the data authority).
                let image = page_image(page);
                store.write_page(page.table.raw() * 10_000 + page.page_no, image)?;
            }
            let mut st = self.state.lock();
            if let Some(f) = st.frames.get_mut(&page) {
                f.dirty = false;
                f.first_dirty_lsn = Lsn::MAX;
                st.stats.flushes += 1;
            }
        }
        Ok(victims.len())
    }

    /// Drop every frame belonging to `tenant` (post-migration cleanup on
    /// the source RW: "clean tables' cached metadata and close resources").
    pub fn evict_tenant(&self, tenant: TenantId) -> usize {
        let mut st = self.state.lock();
        let before = st.frames.len();
        st.frames.retain(|_, f| f.tenant != tenant);
        before - st.frames.len()
    }

    /// Evict pages dirtied at or after `from` without flushing — the
    /// deposed-leader cleanup of §III (their contents conflict with the new
    /// leader; reload from PolarFS on next touch).
    pub fn evict_dirty_after(&self, from: Lsn) -> usize {
        let mut st = self.state.lock();
        let before = st.frames.len();
        st.frames.retain(|_, f| !(f.dirty && f.first_dirty_lsn >= from));
        before - st.frames.len()
    }

    /// Number of dirty pages for `tenant`.
    pub fn dirty_count(&self, tenant: Option<TenantId>) -> usize {
        let st = self.state.lock();
        st.frames
            .values()
            .filter(|f| f.dirty && tenant.is_none_or(|t| f.tenant == t))
            .count()
    }

    /// Pool counters.
    pub fn stats(&self) -> BufferPoolStats {
        self.state.lock().stats
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Oldest first-dirty LSN across the pool (checkpoint horizon).
    pub fn oldest_dirty_lsn(&self) -> Lsn {
        self.state
            .lock()
            .frames
            .values()
            .filter(|f| f.dirty)
            .map(|f| f.first_dirty_lsn)
            .min()
            .unwrap_or(Lsn::MAX)
    }
}

fn page_image(page: PageId) -> bytes::Bytes {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&page.table.raw().to_le_bytes());
    v.extend_from_slice(&page.page_no.to_le_bytes());
    bytes::Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    #[test]
    fn hit_miss_accounting() {
        let pool = BufferPool::new(100, 10);
        let p = pool.page_of(TableId(1), &key(1));
        assert!(!pool.touch_read(p, TenantId(1)), "first touch is a miss");
        assert!(pool.touch_read(p, TenantId(1)), "second touch hits");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn dirty_tracking_and_checkpoint() {
        let pool = BufferPool::new(100, 100);
        let p1 = PageId { table: TableId(1), page_no: 1 };
        let p2 = PageId { table: TableId(1), page_no: 2 };
        pool.mark_dirty(p1, TenantId(1), Lsn(10));
        pool.mark_dirty(p2, TenantId(1), Lsn(100));
        assert_eq!(pool.dirty_count(None), 2);
        assert_eq!(pool.oldest_dirty_lsn(), Lsn(10));
        // Checkpoint up to 50 flushes only p1.
        let n = pool.flush_before(Lsn(50), None).unwrap();
        assert_eq!(n, 1);
        assert_eq!(pool.dirty_count(None), 1);
        assert_eq!(pool.oldest_dirty_lsn(), Lsn(100));
    }

    #[test]
    fn first_dirty_lsn_sticks() {
        let pool = BufferPool::new(10, 10);
        let p = PageId { table: TableId(1), page_no: 0 };
        pool.mark_dirty(p, TenantId(1), Lsn(5));
        pool.mark_dirty(p, TenantId(1), Lsn(50));
        assert_eq!(pool.oldest_dirty_lsn(), Lsn(5), "re-dirtying keeps the first LSN");
    }

    #[test]
    fn tenant_flush_and_eviction() {
        let pool = BufferPool::new(100, 100);
        for i in 0..5 {
            pool.mark_dirty(PageId { table: TableId(1), page_no: i }, TenantId(1), Lsn(i));
        }
        for i in 0..3 {
            pool.mark_dirty(PageId { table: TableId(2), page_no: i }, TenantId(2), Lsn(i));
        }
        assert_eq!(pool.dirty_count(Some(TenantId(1))), 5);
        assert_eq!(pool.flush_tenant(TenantId(1), None).unwrap(), 5);
        assert_eq!(pool.dirty_count(Some(TenantId(1))), 0);
        assert_eq!(pool.dirty_count(Some(TenantId(2))), 3);
        let evicted = pool.evict_tenant(TenantId(1));
        assert_eq!(evicted, 5);
        assert_eq!(pool.resident(), 3);
    }

    #[test]
    fn lru_evicts_clean_only() {
        let pool = BufferPool::new(2, 100);
        let pa = PageId { table: TableId(1), page_no: 0 };
        let pb = PageId { table: TableId(1), page_no: 1 };
        let pc = PageId { table: TableId(1), page_no: 2 };
        pool.mark_dirty(pa, TenantId(1), Lsn(1)); // dirty: pinned
        pool.touch_read(pb, TenantId(1));
        pool.touch_read(pc, TenantId(1)); // must evict pb, not dirty pa
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.dirty_count(None), 1, "dirty page survived eviction");
    }

    #[test]
    fn deposed_leader_eviction() {
        let pool = BufferPool::new(100, 100);
        pool.mark_dirty(PageId { table: TableId(1), page_no: 0 }, TenantId(1), Lsn(10));
        pool.mark_dirty(PageId { table: TableId(1), page_no: 1 }, TenantId(1), Lsn(90));
        // DLSN = 50: pages dirtied after it conflict with the new leader.
        let evicted = pool.evict_dirty_after(Lsn(50));
        assert_eq!(evicted, 1);
        assert_eq!(pool.dirty_count(None), 1);
    }

    #[test]
    fn flush_writes_to_page_store() {
        use polardbx_polarfs::{PolarFs, PolarFsConfig};
        let fs = PolarFs::new(PolarFsConfig { chunk_size: 1 << 16, ..Default::default() });
        let vol = fs.create_volume(polardbx_common::DcId(1)).unwrap();
        let store = PageStore::new(vol, 4096, 0);
        let pool = BufferPool::new(10, 10);
        let p = PageId { table: TableId(1), page_no: 3 };
        pool.mark_dirty(p, TenantId(1), Lsn(1));
        assert_eq!(pool.flush_all(Some(&store)).unwrap(), 1);
        assert_eq!(pool.stats().flushes, 1);
        let img = store.read_page(TableId(1).raw() * 10_000 + 3).unwrap();
        assert_eq!(&img[0..8], &1u64.to_le_bytes());
    }

    #[test]
    fn page_of_is_stable_and_bounded() {
        let pool = BufferPool::new(10, 7);
        for i in 0..100 {
            let p = pool.page_of(TableId(3), &key(i));
            assert_eq!(p, pool.page_of(TableId(3), &key(i)));
            assert!(p.page_no < 7);
        }
    }
}
