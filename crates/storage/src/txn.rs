//! Local transaction table: states and PREPARED-waits.
//!
//! §IV's visibility rule needs three facts about a writer transaction:
//! is it ACTIVE (invisible), PREPARED (undecided — the reader must wait),
//! or COMMITTED/ABORTED (decided by `commit_ts`). The table keeps those
//! states and lets readers block until a prepared transaction completes.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

use polardbx_common::{Error, Result, TrxId};

/// Lifecycle states of a local transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Executing; its writes are invisible to everyone else.
    Active,
    /// 2PC first phase done; commit timestamp still unknown.
    Prepared {
        /// The participant's `prepare_ts` (ClockAdvance result).
        prepare_ts: u64,
    },
    /// Decided: visible to snapshots at or after `commit_ts`.
    Committed {
        /// The transaction's global commit timestamp.
        commit_ts: u64,
    },
    /// Rolled back; its versions are garbage.
    Aborted,
}

impl TxnState {
    /// Is the outcome still undecided?
    pub fn is_pending(&self) -> bool {
        matches!(self, TxnState::Active | TxnState::Prepared { .. })
    }
}

#[derive(Default)]
struct Inner {
    states: HashMap<TrxId, TxnState>,
    /// Epoch pipeline (early lock release): transactions whose commit
    /// stamp has been published but whose epoch has not reached its
    /// durability horizon. Their versions exist and may be overwritten,
    /// but no external read may observe them and no client ack may be
    /// sent until they leave this set.
    unstable: HashSet<TrxId>,
}

/// The node-local transaction table.
#[derive(Default)]
pub struct TxnTable {
    inner: Mutex<Inner>,
    decided: Condvar,
}

impl TxnTable {
    /// Empty table.
    pub fn new() -> TxnTable {
        TxnTable::default()
    }

    /// Register a new ACTIVE transaction.
    pub fn begin(&self, trx: TrxId) {
        self.inner.lock().states.insert(trx, TxnState::Active);
    }

    /// Move `trx` to PREPARED (2PC phase one).
    pub fn prepare(&self, trx: TrxId, prepare_ts: u64) -> Result<()> {
        self.prepare_with(trx, || prepare_ts).map(|_| ())
    }

    /// Move `trx` to PREPARED with the timestamp allocated *inside* the
    /// state-table critical section. Readers decide whether to skip an
    /// undecided version by consulting this table under the same lock, and
    /// a reader that skips an ACTIVE writer is only correct if that
    /// writer's eventual timestamp exceeds the reader's snapshot. When the
    /// clock advance happens outside the lock, a reader can sync a higher
    /// snapshot into the node clock *between* the writer's allocation and
    /// its PREPARED transition, scan past the still-ACTIVE intents, and
    /// miss a transaction about to commit below its snapshot (G-SIb).
    /// Holding the lock across `alloc` makes the reader's state check land
    /// strictly before the allocation or strictly after the transition —
    /// both safe.
    pub fn prepare_with(&self, trx: TrxId, alloc: impl FnOnce() -> u64) -> Result<u64> {
        let mut inner = self.inner.lock();
        match inner.states.get_mut(&trx) {
            Some(s @ TxnState::Active) => {
                let prepare_ts = alloc();
                *s = TxnState::Prepared { prepare_ts };
                Ok(prepare_ts)
            }
            Some(other) => Err(Error::TxnAborted {
                reason: format!("prepare from illegal state {other:?}"),
            }),
            None => Err(Error::TxnAborted { reason: format!("unknown trx {trx}") }),
        }
    }

    /// Decide COMMITTED. Legal from ACTIVE (one-phase local commit) or
    /// PREPARED (2PC). Wakes waiting readers.
    pub fn commit(&self, trx: TrxId, commit_ts: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.states.get_mut(&trx) {
            Some(s) if s.is_pending() => {
                *s = TxnState::Committed { commit_ts };
                self.decided.notify_all();
                Ok(())
            }
            Some(other) => {
                Err(Error::TxnAborted { reason: format!("commit from {other:?}") })
            }
            None => Err(Error::TxnAborted { reason: format!("unknown trx {trx}") }),
        }
    }

    /// Decide ABORTED. Wakes waiting readers. A duplicate or late Abort for
    /// an already-committed transaction is a no-op: under message loss the
    /// fabric may redeliver an Abort after the commit decision landed, and a
    /// decision, once made, is final.
    pub fn abort(&self, trx: TrxId) {
        let mut inner = self.inner.lock();
        if let Some(TxnState::Committed { .. }) = inner.states.get(&trx) {
            return;
        }
        inner.states.insert(trx, TxnState::Aborted);
        self.decided.notify_all();
    }

    /// Atomically abort `trx` only if it is still ACTIVE. Returns whether
    /// the abort happened. Used by the in-doubt resolver to expire
    /// abandoned transactions without racing a concurrent Prepare: exactly
    /// one of {prepare, try_abort_active} wins the state transition, and
    /// the loser observes a decided state and backs off.
    pub fn try_abort_active(&self, trx: TrxId) -> bool {
        let mut inner = self.inner.lock();
        match inner.states.get_mut(&trx) {
            Some(s @ TxnState::Active) => {
                *s = TxnState::Aborted;
                self.decided.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Current state, if known.
    pub fn state(&self, trx: TrxId) -> Option<TxnState> {
        self.inner.lock().states.get(&trx).copied()
    }

    /// §IV case 2: the reader met a PREPARED version. Block until the
    /// writer decides, then return the final state. An ACTIVE writer is not
    /// waited on (case 3: simply invisible) — callers only invoke this for
    /// prepared writers, but a state change racing us is handled by waiting
    /// on anything pending.
    pub fn wait_decided(&self, trx: TrxId, timeout: Duration) -> Result<TxnState> {
        let mut inner = self.inner.lock();
        // lint:allow(determinism, "Condvar::wait_until needs an Instant deadline; bounded by the caller's timeout")
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match inner.states.get(&trx) {
                Some(s) if !s.is_pending() => return Ok(*s),
                None => {
                    // Unknown = purged after decision; treat as aborted
                    // (purge keeps committed states, see `forget`).
                    return Ok(TxnState::Aborted);
                }
                Some(_) => {
                    if self.decided.wait_until(&mut inner, deadline).timed_out() {
                        return Err(Error::Timeout { what: format!("decision of {trx}") });
                    }
                }
            }
        }
    }

    /// Flag `trx` as unstable *before* its commit stamp is published
    /// (epoch early lock release). Readers that meet its versions gate on
    /// [`TxnTable::wait_stable`]; there is no window in which a stamped
    /// version is observable with the flag unset.
    pub fn mark_unstable(&self, trx: TrxId) {
        self.inner.lock().unstable.insert(trx);
    }

    /// The epoch containing `txns` reached its durability horizon: clear
    /// their unstable flags and wake gated readers.
    pub fn mark_stable_batch(&self, txns: &[TrxId]) {
        let mut inner = self.inner.lock();
        for t in txns {
            inner.unstable.remove(t);
        }
        self.decided.notify_all();
    }

    /// Is `trx` committed-but-not-yet-durable (epoch in flight)?
    pub fn is_unstable(&self, trx: TrxId) -> bool {
        self.inner.lock().unstable.contains(&trx)
    }

    /// Gate for external reads under early lock release: block until
    /// `trx`'s epoch resolves (stable, or rolled back by a torn epoch).
    /// On return the caller re-reads the state table and acts on whatever
    /// the resolution left there.
    pub fn wait_stable(&self, trx: TrxId, timeout: Duration) -> Result<()> {
        let mut inner = self.inner.lock();
        // lint:allow(determinism, "Condvar::wait_until needs an Instant deadline; bounded by the caller's timeout")
        let deadline = std::time::Instant::now() + timeout;
        while inner.unstable.contains(&trx) {
            if self.decided.wait_until(&mut inner, deadline).timed_out() {
                return Err(Error::Timeout { what: format!("epoch stability of {trx}") });
            }
        }
        Ok(())
    }

    /// Torn-epoch rollback of an *undecided* (one-phase) transaction:
    /// demote its early-released COMMITTED state back to ABORTED
    /// (presumed abort — the commit record never became durable). Returns
    /// the stamped commit timestamp if the demotion happened.
    pub fn demote_unstable_to_aborted(&self, trx: TrxId) -> Option<u64> {
        let mut inner = self.inner.lock();
        if !inner.unstable.remove(&trx) {
            return None;
        }
        let ts = match inner.states.get(&trx) {
            Some(TxnState::Committed { commit_ts }) => Some(*commit_ts),
            _ => None,
        };
        inner.states.insert(trx, TxnState::Aborted);
        self.decided.notify_all();
        ts
    }

    /// Torn-epoch rollback of a *decided* (2PC phase-two) transaction: the
    /// commit decision is durable at the arbiter, so the transaction must
    /// never abort — it reverts to PREPARED and the decision will be
    /// re-driven (commit record re-logged) when durability returns.
    /// Returns the stamped commit timestamp if the demotion happened.
    pub fn demote_unstable_to_prepared(&self, trx: TrxId, prepare_ts: u64) -> Option<u64> {
        let mut inner = self.inner.lock();
        if !inner.unstable.remove(&trx) {
            return None;
        }
        let ts = match inner.states.get(&trx) {
            Some(TxnState::Committed { commit_ts }) => Some(*commit_ts),
            _ => None,
        };
        inner.states.insert(trx, TxnState::Prepared { prepare_ts });
        self.decided.notify_all();
        ts
    }

    /// Drop state for decided transactions older than needed (GC). Only
    /// aborted entries may be forgotten outright; committed entries are
    /// kept by the version store through their commit timestamps instead.
    pub fn forget_aborted(&self) {
        self.inner.lock().states.retain(|_, s| !matches!(s, TxnState::Aborted));
    }

    /// Number of tracked transactions.
    pub fn len(&self) -> usize {
        self.inner.lock().states.len()
    }

    /// True when no transactions are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all pending (active or prepared) transactions.
    pub fn pending(&self) -> Vec<TrxId> {
        self.inner
            .lock()
            .states
            .iter()
            .filter(|(_, s)| s.is_pending())
            .map(|(t, _)| *t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifecycle_active_prepared_committed() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Active));
        t.prepare(TrxId(1), 10).unwrap();
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Prepared { prepare_ts: 10 }));
        t.commit(TrxId(1), 12).unwrap();
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Committed { commit_ts: 12 }));
    }

    #[test]
    fn one_phase_commit_from_active() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        t.commit(TrxId(1), 5).unwrap();
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Committed { commit_ts: 5 }));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        t.commit(TrxId(1), 5).unwrap();
        assert!(t.prepare(TrxId(1), 6).is_err());
        assert!(t.commit(TrxId(1), 7).is_err());
        assert!(t.prepare(TrxId(99), 1).is_err(), "unknown trx");
    }

    #[test]
    fn wait_decided_blocks_until_commit() {
        let t = Arc::new(TxnTable::new());
        t.begin(TrxId(1));
        t.prepare(TrxId(1), 10).unwrap();
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.wait_decided(TrxId(1), Duration::from_secs(2)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.commit(TrxId(1), 15).unwrap();
        assert_eq!(waiter.join().unwrap(), TxnState::Committed { commit_ts: 15 });
    }

    #[test]
    fn wait_decided_observes_abort() {
        let t = Arc::new(TxnTable::new());
        t.begin(TrxId(2));
        t.prepare(TrxId(2), 3).unwrap();
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.wait_decided(TrxId(2), Duration::from_secs(2)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));
        t.abort(TrxId(2));
        assert_eq!(waiter.join().unwrap(), TxnState::Aborted);
    }

    #[test]
    fn wait_decided_times_out() {
        let t = TxnTable::new();
        t.begin(TrxId(3));
        t.prepare(TrxId(3), 1).unwrap();
        let err = t.wait_decided(TrxId(3), Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }));
    }

    #[test]
    fn try_abort_active_spares_prepared_and_decided() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        t.prepare(TrxId(1), 5).unwrap();
        assert!(!t.try_abort_active(TrxId(1)), "PREPARED must not be expired");
        t.begin(TrxId(2));
        assert!(t.try_abort_active(TrxId(2)));
        assert_eq!(t.state(TrxId(2)), Some(TxnState::Aborted));
        t.begin(TrxId(3));
        t.commit(TrxId(3), 9).unwrap();
        assert!(!t.try_abort_active(TrxId(3)));
        assert_eq!(t.state(TrxId(3)), Some(TxnState::Committed { commit_ts: 9 }));
    }

    #[test]
    fn unstable_flag_gates_until_batch_stability() {
        let t = Arc::new(TxnTable::new());
        t.begin(TrxId(1));
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        assert!(t.is_unstable(TrxId(1)));
        let t2 = Arc::clone(&t);
        let gated = std::thread::spawn(move || {
            t2.wait_stable(TrxId(1), Duration::from_secs(2)).unwrap();
            assert!(!t2.is_unstable(TrxId(1)));
        });
        std::thread::sleep(Duration::from_millis(10));
        t.mark_stable_batch(&[TrxId(1)]);
        gated.join().unwrap();
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Committed { commit_ts: 10 }));
    }

    #[test]
    fn wait_stable_times_out() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        let err = t.wait_stable(TrxId(1), Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }));
    }

    #[test]
    fn torn_epoch_demotions() {
        let t = TxnTable::new();
        // Undecided one-phase commit rolls back to ABORTED.
        t.begin(TrxId(1));
        t.mark_unstable(TrxId(1));
        t.commit(TrxId(1), 10).unwrap();
        assert_eq!(t.demote_unstable_to_aborted(TrxId(1)), Some(10));
        assert_eq!(t.state(TrxId(1)), Some(TxnState::Aborted));
        assert!(!t.is_unstable(TrxId(1)));
        // Decided 2PC commit reverts to PREPARED, never aborts.
        t.begin(TrxId(2));
        t.prepare(TrxId(2), 5).unwrap();
        t.mark_unstable(TrxId(2));
        t.commit(TrxId(2), 12).unwrap();
        assert_eq!(t.demote_unstable_to_prepared(TrxId(2), 5), Some(12));
        assert_eq!(t.state(TrxId(2)), Some(TxnState::Prepared { prepare_ts: 5 }));
        // Demoting a stable transaction is a no-op.
        t.begin(TrxId(3));
        t.commit(TrxId(3), 20).unwrap();
        assert_eq!(t.demote_unstable_to_aborted(TrxId(3)), None);
        assert_eq!(t.state(TrxId(3)), Some(TxnState::Committed { commit_ts: 20 }));
    }

    #[test]
    fn gc_keeps_committed_drops_aborted() {
        let t = TxnTable::new();
        t.begin(TrxId(1));
        t.commit(TrxId(1), 1).unwrap();
        t.begin(TrxId(2));
        t.abort(TrxId(2));
        t.forget_aborted();
        assert!(t.state(TrxId(1)).is_some());
        assert!(t.state(TrxId(2)).is_none());
        assert_eq!(t.pending(), vec![]);
    }
}
