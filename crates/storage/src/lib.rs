//! The DN storage engine (PolarDB's database-node kernel, §II-C).
//!
//! A Database Node in PolarDB-X is a PolarDB instance: a transactional
//! engine over shared storage. The paper's experiments depend on five of
//! its mechanisms, all reproduced here:
//!
//! * **MVCC row store** ([`mvcc`]) — versioned rows with snapshot-isolation
//!   visibility, first-committer-wins write conflicts, and the PREPARED-wait
//!   rule of HLC-SI (§IV): a reader that meets a prepared-but-undecided
//!   version blocks until the writer completes.
//! * **Transaction table** ([`txn`]) — local transaction states
//!   (ACTIVE → PREPARED → COMMITTED/ABORTED) with blocking waits.
//! * **Redo generation** ([`engine`]) — every statement produces an MTR into
//!   the node's log buffer; commit forces a flush (and, in the replicated
//!   setup, rides Paxos to other DCs).
//! * **Buffer pool** ([`bufferpool`]) — dirty-page tracking with per-tenant
//!   attribution; the cost of tenant migration in §V is exactly "flush all
//!   dirty pages associated with the tenant".
//! * **RW→RO replication** ([`replication`]) — read-only replicas tail the
//!   redo stream, apply up to `lsn_RO`, serve snapshot reads, and support
//!   session consistency by waiting for a required LSN; laggards are
//!   detected and evicted (§II-C).

pub mod bufferpool;
pub mod engine;
pub mod mvcc;
pub mod recovery;
pub mod replication;
pub mod rowcodec;
pub mod shard;
pub mod txn;

pub use bufferpool::{BufferPool, BufferPoolStats};
pub use engine::{Durability, LocalDurability, StorageEngine, SyncLocalDurability, WriteOp};
pub use recovery::{recover_from_sink, recovered_engine, replay_records, RecoveryReport};
pub use mvcc::{ReadResult, VersionStore};
pub use shard::ShardedMap;
pub use replication::{RoNode, RwNode, SessionToken};
pub use txn::{TxnState, TxnTable};
