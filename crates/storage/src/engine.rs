//! The storage engine: transactions + redo + buffer pool over the MVCC
//! store, with pluggable commit durability.
//!
//! The engine is the kernel of a DN node. Its durability path is abstracted
//! by [`Durability`] so the same engine runs in three configurations:
//!
//! * standalone (tests, quickstart): a local log buffer,
//! * PolarDB basic (§II-C): local log buffer on a PolarFS volume, RO nodes
//!   tailing the stream,
//! * PolarDB-X DN (§III): commit rides the Paxos group across datacenters.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{
    Error, HistoryRecorder, Key, Lsn, NodeId, Result, Row, TableId, TenantId, TrxId, TxnEvent,
};
use polardbx_wal::{
    EpochConfig, EpochListener, EpochPipeline, EpochSink, EpochTicket, GroupCommitter, LogBuffer,
    LogSink, Mtr, RedoPayload, VecSink, WalMetrics,
};

use crate::bufferpool::BufferPool;
use crate::mvcc::{VersionOp, VersionStore};
use crate::rowcodec::{decode_row, encode_row};
use crate::shard::ShardedMap;
use crate::txn::TxnTable;

/// How commit-time redo becomes durable.
pub trait Durability: Send + Sync {
    /// Make `mtrs` durable; blocks until safe, returns the end LSN.
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn>;

    /// Group-commit metrics, when the provider coalesces flushes.
    fn wal_metrics(&self) -> Option<Arc<WalMetrics>> {
        None
    }

    /// The provider's current durable horizon, when it can report one.
    /// Used by the commit path's redo-ahead assertion: a version must not
    /// become visible at an LSN the provider has not yet acknowledged.
    fn durable_lsn(&self) -> Option<Lsn> {
        None
    }
}

/// Local durability through the group committer: concurrent callers
/// (commits, aborts, prepares) coalesce into shared flushes.
pub struct LocalDurability {
    gc: Arc<GroupCommitter>,
}

impl LocalDurability {
    /// Wrap a log buffer in a group committer.
    pub fn new(log: Arc<LogBuffer>) -> Arc<LocalDurability> {
        Arc::new(LocalDurability { gc: GroupCommitter::new(log) })
    }

    /// The underlying group committer.
    pub fn group_committer(&self) -> &Arc<GroupCommitter> {
        &self.gc
    }
}

impl Durability for LocalDurability {
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        self.gc.commit(mtrs)
    }

    fn wal_metrics(&self) -> Option<Arc<WalMetrics>> {
        Some(Arc::clone(&self.gc.metrics))
    }

    fn durable_lsn(&self) -> Option<Lsn> {
        Some(self.gc.durable())
    }
}

/// The seed's per-transaction durability: every caller appends and flushes
/// alone. Kept as the baseline `commit_bench` compares group commit against.
pub struct SyncLocalDurability {
    log: Arc<LogBuffer>,
}

impl SyncLocalDurability {
    /// Wrap a log buffer.
    pub fn new(log: Arc<LogBuffer>) -> Arc<SyncLocalDurability> {
        Arc::new(SyncLocalDurability { log })
    }
}

impl Durability for SyncLocalDurability {
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        let (_, end) = self.log.append_batch(mtrs);
        self.log.flush()?;
        Ok(end)
    }

    fn durable_lsn(&self) -> Option<Lsn> {
        Some(self.log.flushed())
    }
}

/// A logical write operation on a row.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert a new row (duplicate key on existing visible row).
    Insert(Row),
    /// Overwrite the row (upsert semantics at the storage layer).
    Update(Row),
    /// Delete the row.
    Delete,
}

struct TrxCtx {
    snapshot_ts: u64,
    /// (table, key) pairs written, for commit/abort stamping.
    writes: Vec<(TableId, Key)>,
    /// Redo accumulated, shipped at prepare/commit.
    redo: Vec<Mtr>,
}

/// What a torn-epoch rollback needs about an early-released commit: which
/// versions to demote and whether the decision is externally durable.
struct UnstableCtx {
    snapshot_ts: u64,
    writes: Vec<(TableId, Key)>,
    /// 2PC phase two: the decision is durable at the arbiter, so a torn
    /// epoch reverts the transaction to PREPARED instead of aborting it.
    decided: bool,
    prepare_ts: u64,
}

/// Bridges epoch resolution back into the engine: stability lifts the
/// read gate, failure rolls early-released commits back. Holds a `Weak`
/// so a forgotten engine doesn't keep its flusher alive.
struct EngineEpochListener {
    engine: std::sync::Weak<StorageEngine>,
}

impl EpochListener for EngineEpochListener {
    fn epoch_stable(&self, txns: &[TrxId], _end: Lsn) {
        let Some(engine) = self.engine.upgrade() else { return };
        engine.txns.mark_stable_batch(txns);
        for t in txns {
            engine.unstable_ctx.remove(t);
        }
    }

    fn epoch_failed(&self, txns: &[TrxId], err: &Error) {
        let Some(engine) = self.engine.upgrade() else { return };
        for t in txns {
            engine.fail_unstable(*t, err);
        }
    }
}

/// A history tap installed on an engine: where events go, which node the
/// engine plays, and whether reads here are replica (apply-order) reads.
#[derive(Clone)]
struct RecorderTap {
    rec: Arc<HistoryRecorder>,
    node: NodeId,
    replica: bool,
}

/// The DN storage engine.
pub struct StorageEngine {
    /// Transaction table shared with readers.
    pub txns: Arc<TxnTable>,
    /// Buffer pool (dirty-page and warmth modelling).
    pub pool: BufferPool,
    tables: RwLock<HashMap<TableId, Arc<VersionStore>>>,
    tenants: RwLock<HashMap<TableId, TenantId>>,
    /// In-flight transaction contexts, lock-sharded: every begin, write,
    /// commit and abort touches this map, and a single global mutex would
    /// serialize committers before they ever reach the group committer.
    active: ShardedMap<TrxId, TrxCtx>,
    durability: Arc<dyn Durability>,
    wait_timeout: Duration,
    /// Fast-path flag for the history tap: the hot path pays one relaxed
    /// load when recording is off (the common case).
    recording: AtomicBool,
    recorder: Mutex<Option<RecorderTap>>,
    /// Checker-validation mutation: treat PREPARED writers as invisible
    /// instead of waiting (reads below the snapshot watermark).
    ignore_prepared_reads: AtomicBool,
    /// Epoch-pipelined commit path, when enabled (`epoch_on` is the
    /// hot-path fast check so the default path pays one relaxed load).
    epoch: RwLock<Option<Arc<EpochPipeline>>>,
    epoch_on: AtomicBool,
    /// Early-released commits awaiting their epoch's durability horizon;
    /// the torn-epoch rollback consumes these.
    unstable_ctx: ShardedMap<TrxId, UnstableCtx>,
    /// Shard tables frozen for a re-home cutover. New writes bounce
    /// retryably, and the write path installs intents under a read guard
    /// on this set, so once `freeze_writes` returns no intent can land
    /// unseen between the cutover's write-set drain and the store detach.
    write_frozen: RwLock<HashSet<TableId>>,
}

impl StorageEngine {
    /// An engine with local durability over an in-memory sink (tests and
    /// single-node uses).
    pub fn in_memory() -> Arc<StorageEngine> {
        let sink = VecSink::new();
        Self::with_sink(sink as Arc<dyn LogSink>)
    }

    /// An engine logging locally to `sink`.
    pub fn with_sink(sink: Arc<dyn LogSink>) -> Arc<StorageEngine> {
        Self::with_durability(LocalDurability::new(LogBuffer::new(sink)))
    }

    /// An engine with an arbitrary durability provider (e.g. Paxos).
    pub fn with_durability(durability: Arc<dyn Durability>) -> Arc<StorageEngine> {
        Arc::new(StorageEngine {
            txns: Arc::new(TxnTable::new()),
            pool: BufferPool::new(4096, 256),
            tables: RwLock::new(HashMap::new()),
            tenants: RwLock::new(HashMap::new()),
            active: ShardedMap::new(),
            durability,
            wait_timeout: Duration::from_secs(5),
            recording: AtomicBool::new(false),
            recorder: Mutex::new(None),
            ignore_prepared_reads: AtomicBool::new(false),
            epoch: RwLock::new(None),
            epoch_on: AtomicBool::new(false),
            unstable_ctx: ShardedMap::new(),
            write_frozen: RwLock::new(HashSet::new()),
        })
    }

    /// Switch this engine's commit path to the epoch pipeline: commits
    /// stamp versions immediately (early lock release) and `sink`
    /// persists whole sealed epochs; external reads and client acks gate
    /// on the epoch watermark. The pipeline persists the exact byte
    /// stream the serial path would have written, so recovery and
    /// replicas are unaffected.
    pub fn enable_epoch(
        self: &Arc<Self>,
        sink: Arc<dyn EpochSink>,
        cfg: EpochConfig,
    ) -> Arc<EpochPipeline> {
        let listener = Arc::new(EngineEpochListener { engine: Arc::downgrade(self) });
        let pipe = EpochPipeline::start(sink, listener, cfg);
        *self.epoch.write() = Some(Arc::clone(&pipe));
        self.epoch_on.store(true, Ordering::Release);
        pipe
    }

    /// The epoch pipeline, when [`StorageEngine::enable_epoch`] was called.
    // lint:hotpath
    pub fn epoch_pipeline(&self) -> Option<Arc<EpochPipeline>> {
        if !self.epoch_on.load(Ordering::Acquire) {
            return None;
        }
        // lint:allow(hotpath_alloc, "Option<Arc> clone is a refcount bump, not a heap copy")
        self.epoch.read().clone()
    }

    /// Install a history tap: MVCC reads, writes, commit stamps and aborts
    /// on this engine are recorded to `rec` attributed to `node`. `replica`
    /// marks apply-order (RO) engines so the checker treats their reads
    /// with read-atomicity rules only.
    pub fn set_recorder(&self, rec: Arc<HistoryRecorder>, node: NodeId, replica: bool) {
        *self.recorder.lock() = Some(RecorderTap { rec, node, replica });
        self.recording.store(true, Ordering::Release);
    }

    /// Remove the history tap.
    pub fn clear_recorder(&self) {
        self.recording.store(false, Ordering::Release);
        *self.recorder.lock() = None;
    }

    /// The installed tap, if recording is on. Clones the `Arc` out so the
    /// recorder mutex is never held across a `record` call.
    fn tap(&self) -> Option<RecorderTap> {
        if !self.recording.load(Ordering::Acquire) {
            return None;
        }
        self.recorder.lock().clone()
    }

    /// Enable/disable the checker-validation mutation that makes snapshot
    /// reads skip PREPARED writers instead of waiting for their decision
    /// (§IV case 2 deliberately broken). Never use outside `sitcheck`
    /// mutation runs.
    pub fn set_ignore_prepared_reads(&self, on: bool) {
        self.ignore_prepared_reads.store(on, Ordering::Release);
    }

    /// Group-commit metrics of the durability provider, if it batches.
    pub fn wal_metrics(&self) -> Option<Arc<WalMetrics>> {
        self.durability.wal_metrics()
    }

    /// Create an empty table owned by `tenant`.
    pub fn create_table(&self, table: TableId, tenant: TenantId) {
        self.tables.write().entry(table).or_insert_with(|| Arc::new(VersionStore::new()));
        self.tenants.write().insert(table, tenant);
    }

    /// Attach an existing store (tenant migration destination / RO share).
    pub fn attach_table(&self, table: TableId, store: Arc<VersionStore>, tenant: TenantId) {
        self.tables.write().insert(table, store);
        self.tenants.write().insert(table, tenant);
    }

    /// Detach a table, returning its store (tenant migration source). The
    /// data itself never moves — that is the shared-storage guarantee.
    pub fn detach_table(&self, table: TableId) -> Option<Arc<VersionStore>> {
        self.tenants.write().remove(&table);
        self.tables.write().remove(&table)
    }

    /// Freeze new writes on `table` for a re-home cutover: until
    /// [`StorageEngine::unfreeze_writes`], writes bounce with a retryable
    /// error instead of installing an intent that the detach would strand
    /// inside the moved store. Acquiring the freeze-set write lock also
    /// waits out any write currently mid-install (the write path holds the
    /// read side across the install), so after this returns every intent
    /// on `table` is visible to [`StorageEngine::has_active_writes_on`].
    pub fn freeze_writes(&self, table: TableId) {
        self.write_frozen.write().insert(table);
    }

    /// Reopen `table` for writes after a cutover attempt (successful or
    /// bailed — every exit must reopen or the shard livelocks).
    pub fn unfreeze_writes(&self, table: TableId) {
        self.write_frozen.write().remove(&table);
    }

    /// Tables currently owned by `tenant`.
    pub fn tenant_tables(&self, tenant: TenantId) -> Vec<TableId> {
        self.tenants
            .read()
            .iter()
            .filter(|(_, t)| **t == tenant)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The tenant owning `table`.
    pub fn tenant_of(&self, table: TableId) -> Option<TenantId> {
        self.tenants.read().get(&table).copied()
    }

    pub(crate) fn store(&self, table: TableId) -> Result<Arc<VersionStore>> {
        self.tables
            .read()
            .get(&table)
            .cloned()
            .ok_or_else(|| Error::UnknownTable { name: format!("{table}") })
    }

    /// Begin a transaction with the given snapshot timestamp.
    pub fn begin(&self, trx: TrxId, snapshot_ts: u64) {
        self.txns.begin(trx);
        self.active.insert(trx, TrxCtx { snapshot_ts, writes: Vec::new(), redo: Vec::new() });
    }

    /// Execute a write op inside `trx`. Validates conflicts, installs the
    /// intent, accumulates redo, dirties the page.
    pub fn write(&self, trx: TrxId, table: TableId, key: Key, op: WriteOp) -> Result<()> {
        let store = self.store(table)?;
        let tenant = self.tenant_of(table).unwrap_or_default();
        let snapshot_ts = self
            .active
            .with(&trx, |c| c.map(|c| c.snapshot_ts))
            .ok_or(Error::TxnAborted { reason: format!("unknown trx {trx}") })?;
        let (version_op, redo) = match op {
            WriteOp::Insert(row) => {
                if store
                    .read_waiting(&self.txns, &key, snapshot_ts, Some(trx), self.wait_timeout)?
                    .is_some()
                {
                    return Err(Error::DuplicateKey { key: format!("{key}") });
                }
                let payload = RedoPayload::Insert {
                    trx,
                    table,
                    key: key.clone(),
                    row: encode_row(&row),
                };
                (VersionOp::Put(row), payload)
            }
            WriteOp::Update(row) => {
                let payload = RedoPayload::Update {
                    trx,
                    table,
                    key: key.clone(),
                    row: encode_row(&row),
                };
                (VersionOp::Put(row), payload)
            }
            WriteOp::Delete => {
                (VersionOp::Delete, RedoPayload::Delete { trx, table, key: key.clone() })
            }
        };
        // Clone what the history event needs only when a tap is installed.
        let tap = self.tap();
        let recorded = tap.as_ref().map(|_| {
            let row = match &version_op {
                VersionOp::Put(r) => Some(r.clone()),
                VersionOp::Delete => None,
            };
            (row, key.clone())
        });
        {
            // Intent install and write-set registration happen under the
            // freeze-set read guard: `freeze_writes` (write side) cannot
            // return while either is mid-flight, so a re-home cutover never
            // misses an intent in its drain, and a frozen table bounces
            // retryably before any intent exists.
            let frozen = self.write_frozen.read();
            if frozen.contains(&table) {
                return Err(Error::Throttled { rule: format!("rehome-freeze:{table}") });
            }
            store.write(&self.txns, trx, snapshot_ts, key.clone(), version_op)?;
            let page = self.pool.page_of(table, &key);
            // The page is dirtied "at" the next LSN; exact value only matters
            // relative to checkpoints, so the current snapshot is adequate.
            self.pool.mark_dirty(page, tenant, Lsn(snapshot_ts));
            self.active.with(&trx, |ctx| {
                let ctx = ctx.ok_or(Error::TxnAborted { reason: format!("trx {trx} vanished") })?;
                ctx.writes.push((table, key));
                ctx.redo.push(Mtr::single(redo));
                Ok(())
            })?;
        }
        if let (Some(tap), Some((row, key))) = (tap, recorded) {
            tap.rec.record(TxnEvent::Write { trx, node: tap.node, table, key, row });
        }
        Ok(())
    }

    /// Snapshot point read (optionally inside a transaction).
    pub fn read(
        &self,
        table: TableId,
        key: &Key,
        snapshot_ts: u64,
        me: Option<TrxId>,
    ) -> Result<Option<Row>> {
        let store = self.store(table)?;
        let tenant = self.tenant_of(table).unwrap_or_default();
        self.pool.touch_read(self.pool.page_of(table, key), tenant);
        let ignore_prepared = self.ignore_prepared_reads.load(Ordering::Acquire);
        let (row, observed) = store.read_waiting_observed(
            &self.txns,
            key,
            snapshot_ts,
            me,
            self.wait_timeout,
            ignore_prepared,
        )?;
        if let (Some(tap), Some(trx)) = (self.tap(), me) {
            tap.rec.record(TxnEvent::Read {
                trx,
                node: tap.node,
                table,
                key: key.clone(),
                snapshot_ts,
                observed,
                replica: tap.replica,
            });
        }
        Ok(row)
    }

    /// Snapshot range scan.
    pub fn scan(
        &self,
        table: TableId,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        snapshot_ts: u64,
        me: Option<TrxId>,
    ) -> Result<Vec<(Key, Row)>> {
        let store = self.store(table)?;
        let ignore_prepared = self.ignore_prepared_reads.load(Ordering::Acquire);
        let rows = store.scan_observed(
            &self.txns,
            lower,
            upper,
            snapshot_ts,
            me,
            self.wait_timeout,
            ignore_prepared,
        )?;
        if let (Some(tap), Some(trx)) = (self.tap(), me) {
            for (key, _, observed) in &rows {
                tap.rec.record(TxnEvent::Read {
                    trx,
                    node: tap.node,
                    table,
                    key: key.clone(),
                    snapshot_ts,
                    observed: Some(observed.clone()),
                    replica: tap.replica,
                });
            }
        }
        Ok(rows.into_iter().map(|(k, r, _)| (k, r)).collect())
    }

    /// Full-table snapshot scan.
    pub fn scan_table(&self, table: TableId, snapshot_ts: u64) -> Result<Vec<(Key, Row)>> {
        self.scan(table, Bound::Unbounded, Bound::Unbounded, snapshot_ts, None)
    }

    /// 2PC phase one: validate (already done at write time), mark PREPARED,
    /// make the transaction's redo + prepare record durable.
    pub fn prepare(&self, trx: TrxId, prepare_ts: u64) -> Result<Lsn> {
        Ok(self.prepare_with(trx, || prepare_ts)?.1)
    }

    /// [`StorageEngine::prepare`] with the prepare timestamp allocated
    /// inside the transaction table's critical section (see
    /// [`TxnTable::prepare_with`][crate::txn::TxnTable::prepare_with] for
    /// why the allocation must be atomic with the state transition readers
    /// consult). Participants pass their HLC's `ClockAdvance` as `alloc`.
    pub fn prepare_with(&self, trx: TrxId, alloc: impl FnOnce() -> u64) -> Result<(u64, Lsn)> {
        let prepare_ts = self.txns.prepare_with(trx, alloc)?;
        let mut mtrs = self
            .active
            .with(&trx, |c| c.map(|c| std::mem::take(&mut c.redo)))
            .ok_or(Error::TxnAborted { reason: format!("unknown trx {trx}") })?;
        mtrs.push(Mtr::single(RedoPayload::TxnPrepare { trx, prepare_ts }));
        let lsn = self.durable_submit(&mtrs)?;
        Ok((prepare_ts, lsn))
    }

    /// Route a standalone durability request (prepare, abort, marker)
    /// through the epoch pipeline when enabled — every record funnels
    /// through one ordered stream, keeping the durable bytes identical to
    /// the serial path — or through the provider directly otherwise.
    /// These submissions carry no early-released transaction, so they
    /// block for durability exactly like the provider would.
    fn durable_submit(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        if let Some(pipe) = self.epoch_pipeline() {
            return pipe.submit_sync(None, self.wait_timeout, |buf| {
                for m in mtrs {
                    for r in m.records() {
                        r.encode(buf);
                    }
                }
            });
        }
        self.durability.make_durable(mtrs)
    }

    /// In-memory ACTIVE → PREPARED transition with in-lock timestamp
    /// allocation, *without* a durable prepare record. The one-phase local
    /// commit path uses this right before [`StorageEngine::commit`]: it
    /// needs the same reader-visible atomicity as a 2PC prepare (readers
    /// must wait, not skip, once the commit timestamp exists) but keeps a
    /// single durability flush — a crash before the commit record lands
    /// simply aborts the unacked transaction on replay.
    pub fn mark_prepared_with(&self, trx: TrxId, alloc: impl FnOnce() -> u64) -> Result<u64> {
        self.txns.prepare_with(trx, alloc)
    }

    /// Commit (one-phase from ACTIVE, or phase two from PREPARED). Stamps
    /// versions, makes the commit record durable, releases the context.
    ///
    /// On a durability failure the transaction is rolled back — correct
    /// only while nothing has been acked to the client. Phase two of a 2PC
    /// commit whose decision is already durable elsewhere must use
    /// [`StorageEngine::commit_decided`] instead.
    pub fn commit(&self, trx: TrxId, commit_ts: u64) -> Result<Lsn> {
        if let Some(pipe) = self.epoch_pipeline() {
            let ticket = self.commit_pipelined_impl(trx, commit_ts, false)?;
            return pipe.wait_ticket(ticket, self.wait_timeout);
        }
        self.commit_impl(trx, commit_ts, false)
    }

    /// Epoch-mode commit that does *not* block for durability: the commit
    /// stamp is published immediately (early lock release — later
    /// transactions may read and overwrite it, gated readers wait on the
    /// epoch watermark) and the returned ticket resolves through
    /// [`EpochPipeline::wait_ticket`]. No client may be acked before the
    /// ticket resolves. Pipelined submitters overlap many commits per
    /// durability round — the single-stream speedup `commit_bench`
    /// measures.
    // lint:hotpath
    pub fn commit_pipelined(&self, trx: TrxId, commit_ts: u64) -> Result<EpochTicket> {
        self.commit_pipelined_impl(trx, commit_ts, false)
    }

    // lint:hotpath
    fn commit_pipelined_impl(
        &self,
        trx: TrxId,
        commit_ts: u64,
        decided: bool,
    ) -> Result<EpochTicket> {
        let pipe = self
            .epoch_pipeline()
            .ok_or_else(|| Error::Storage { message: "epoch pipeline not enabled".into() })?;
        let ctx = self
            .active
            .remove(&trx)
            .ok_or_else(|| Error::TxnAborted { reason: format!("unknown trx {trx}") })?;
        let prepare_ts = match self.txns.state(trx) {
            Some(crate::txn::TxnState::Prepared { prepare_ts }) => prepare_ts,
            _ => ctx.snapshot_ts,
        };
        // A write whose store was detached (a re-home cutover moved the
        // shard mid-transaction) must fail the commit up front: the stamp
        // loop below would silently skip it and report success for a
        // stranded write. The guard is short-lived — holding it across the
        // stamps would mean acquiring txn/store locks with a lock held,
        // which the lock-order witness pays an allocation to track, and
        // this path must stay allocation-free. The residual race (a detach
        // landing after this check) is caught by the re-check further down,
        // before the commit is acked.
        {
            let tables = self.tables.read();
            if let Some((missing, _)) = ctx.writes.iter().find(|(t, _)| !tables.contains_key(t))
            {
                let rule = format!("store-detached:{missing}");
                drop(tables);
                self.active.insert(trx, ctx);
                return Err(Error::Throttled { rule });
            }
        }
        // Unstable strictly before the commit stamp: there is no window in
        // which another transaction can observe the stamp unflagged.
        self.txns.mark_unstable(trx);
        if let Err(e) = self.txns.commit(trx, commit_ts) {
            self.txns.mark_stable_batch(std::slice::from_ref(&trx));
            self.active.insert(trx, ctx);
            return Err(e);
        }
        // Early lock release: stamp every written version now. Later
        // writers proceed against the stamp; readers gate on stability.
        // A lookup miss means a detach landed after the check above and a
        // stamp was skipped — remembered and reverted below, never acked.
        // (A detach *after* a stamp is benign: the stamp travels with the
        // moved store by reference.)
        let mut stamp_skipped = false;
        for (t, k) in &ctx.writes {
            if let Ok(store) = self.store(*t) {
                store.commit(trx, commit_ts, std::slice::from_ref(k));
            } else {
                stamp_skipped = true;
            }
        }
        if let Some(tap) = self.tap() {
            tap.rec.record(TxnEvent::Commit { trx, node: tap.node, commit_ts });
        }
        let TrxCtx { snapshot_ts, writes, redo } = ctx;
        self.unstable_ctx.insert(trx, UnstableCtx { snapshot_ts, writes, decided, prepare_ts });
        if stamp_skipped {
            // Revert the early release exactly as a torn epoch would:
            // undecided aborts wholesale, a decided phase-two reverts to
            // PREPARED for the resolver to re-drive.
            let e = Error::Throttled { rule: format!("store-detached-mid-commit:{trx}") };
            self.fail_unstable(trx, &e);
            return Err(e);
        }
        let ticket = pipe.submit(Some(trx), |buf| {
            for mtr in &redo {
                for r in mtr.records() {
                    r.encode(buf);
                }
            }
            RedoPayload::TxnCommit { trx, commit_ts }.encode(buf);
        });
        match ticket {
            Ok(t) => Ok(t),
            Err(e) => {
                // The pipeline refused (stopping): undo the early release.
                self.fail_unstable(trx, &e);
                Err(e)
            }
        }
    }

    /// Torn-epoch (or refused-submission) rollback of one early-released
    /// commit. Undecided transactions presumed-abort wholesale; decided
    /// (2PC phase-two) transactions revert to PREPARED with their context
    /// restored for a re-driven commit — a globally durable decision must
    /// never abort.
    fn fail_unstable(&self, trx: TrxId, _err: &Error) {
        let Some(ctx) = self.unstable_ctx.remove(&trx) else { return };
        // Versions strictly before state: demotion clears the unstable
        // flag and wakes readers gated in `wait_stable`, so the stamped
        // versions must already be gone (or unstamped) by then — a reader
        // re-running visibility between a demote and a late rollback would
        // see a stamped, no-longer-unstable version of a rolled-back
        // commit: a dirty read.
        if ctx.decided {
            for (t, k) in &ctx.writes {
                if let Ok(store) = self.store(*t) {
                    store.unstamp(trx, std::slice::from_ref(k));
                }
            }
            self.txns.demote_unstable_to_prepared(trx, ctx.prepare_ts);
            // Row redo is durable from the prepare; the retried commit
            // only re-submits the commit record.
            self.active.insert(
                trx,
                TrxCtx { snapshot_ts: ctx.snapshot_ts, writes: ctx.writes, redo: Vec::new() },
            );
        } else {
            for (t, k) in &ctx.writes {
                if let Ok(store) = self.store(*t) {
                    store.rollback_stamped(trx, std::slice::from_ref(k));
                }
            }
            self.txns.demote_unstable_to_aborted(trx);
            if let Some(tap) = self.tap() {
                tap.rec.record(TxnEvent::Abort { trx, node: tap.node });
            }
        }
    }

    /// Phase-two commit of an externally decided transaction: the COMMIT
    /// decision is durable at the arbiter/coordinator log and may already
    /// be acked to the client. A local durability failure therefore must
    /// *not* roll back the prepared intent — doing so would let a
    /// concurrent reader skip a globally committed write (a G-SIb missed
    /// effect, caught by the crashpoint torture harness). Instead the
    /// transaction stays PREPARED with its context intact, readers keep
    /// waiting on it, and a retried Commit, the in-doubt resolver, or
    /// crash recovery finishes the job.
    pub fn commit_decided(&self, trx: TrxId, commit_ts: u64) -> Result<Lsn> {
        if let Some(pipe) = self.epoch_pipeline() {
            let ticket = self.commit_pipelined_impl(trx, commit_ts, true)?;
            return pipe.wait_ticket(ticket, self.wait_timeout);
        }
        self.commit_impl(trx, commit_ts, true)
    }

    fn commit_impl(&self, trx: TrxId, commit_ts: u64, decided: bool) -> Result<Lsn> {
        let ctx = self
            .active
            .remove(&trx)
            .ok_or(Error::TxnAborted { reason: format!("unknown trx {trx}") })?;
        // The table-map read guard spans this detach check through the
        // commit stamps below: a store present here stays present for the
        // stamping loop (detach takes the write side). A write whose store
        // is already gone — a re-home cutover detached it mid-transaction —
        // must fail the commit, never skip the stamp and report success.
        let tables = self.tables.read();
        if let Some((missing, _)) = ctx.writes.iter().find(|(t, _)| !tables.contains_key(t)) {
            let missing = *missing;
            if decided {
                // The decision is durable elsewhere: keep the transaction
                // in-doubt (PREPARED, context intact) for the resolver —
                // mirroring the durability-failure path below.
                drop(tables);
                self.active.insert(trx, ctx);
            } else {
                // One-phase, nothing acked: roll back what is reachable.
                drop(tables);
                self.rollback_writes(trx, &ctx.writes);
                self.txns.abort(trx);
            }
            return Err(Error::Throttled { rule: format!("store-detached:{missing}") });
        }
        let mut mtrs = ctx.redo;
        mtrs.push(Mtr::single(RedoPayload::TxnCommit { trx, commit_ts }));
        // Durability first (redo-ahead), then visibility.
        let lsn = match self.durability.make_durable(&mtrs) {
            Ok(lsn) => lsn,
            Err(e) => {
                drop(tables);
                if decided {
                    // Keep the intent in-doubt: restore the context (minus
                    // the commit record we appended) for a later retry.
                    mtrs.pop();
                    self.active.insert(
                        trx,
                        TrxCtx { snapshot_ts: ctx.snapshot_ts, writes: ctx.writes, redo: mtrs },
                    );
                } else {
                    // Nothing acked anywhere (one-phase commit, or
                    // leadership lost before a decision existed): roll the
                    // transaction back.
                    self.rollback_writes(trx, &ctx.writes);
                    self.txns.abort(trx);
                }
                return Err(e);
            }
        };
        // Redo-ahead invariant that crash recovery depends on: by the time
        // any version of `trx` becomes visible (the `txns.commit` and store
        // stamps below), the durability provider must have acknowledged the
        // commit record's LSN. If a version could become visible first, a
        // crash in the gap would ack a commit to the client that replay can
        // never reconstruct — a silent RPO violation.
        if let Some(durable) = self.durability.durable_lsn() {
            debug_assert!(
                durable >= lsn,
                "commit {trx} would become visible before its durability ack: \
                 durable horizon {durable:?} < commit record end {lsn:?}"
            );
        }
        self.txns.commit(trx, commit_ts)?;
        let mut by_table: HashMap<TableId, Vec<Key>> = HashMap::new();
        for (t, k) in ctx.writes {
            by_table.entry(t).or_default().push(k);
        }
        for (t, keys) in by_table {
            if let Some(store) = tables.get(&t) {
                store.commit(trx, commit_ts, &keys);
            }
        }
        drop(tables);
        if let Some(tap) = self.tap() {
            tap.rec.record(TxnEvent::Commit { trx, node: tap.node, commit_ts });
        }
        Ok(lsn)
    }

    /// State of a transaction in the local table (None = never seen here,
    /// or GC'd after abort). Participants use this for idempotent 2PC
    /// handling: a duplicate Prepare/Commit consults the recorded decision
    /// instead of re-executing.
    pub fn txn_state(&self, trx: TrxId) -> Option<crate::txn::TxnState> {
        self.txns.state(trx)
    }

    /// Abort and roll back. Idempotent, and a no-op for a transaction that
    /// already committed: a late or duplicated Abort (lossy network,
    /// crashed coordinator's Drop racing phase two) must not clobber a
    /// final commit decision.
    pub fn abort(&self, trx: TrxId) {
        if let Some(crate::txn::TxnState::Committed { .. }) = self.txns.state(trx) {
            return;
        }
        let ctx = self.active.remove(&trx);
        let discarded_writes = ctx.as_ref().is_some_and(|c| !c.writes.is_empty());
        if let Some(ctx) = ctx {
            self.rollback_writes(trx, &ctx.writes);
        }
        self.txns.abort(trx);
        // The abort record rides the same group committer (or epoch
        // pipeline) as commits: a storm of rollbacks shares flushes
        // instead of paying one each.
        let _ = self.durable_submit(&[Mtr::single(RedoPayload::TxnAbort { trx })]);
        // History event only when the abort discarded actual writes: a
        // coordinator releasing a read-only participant after commit is not
        // an abort of the (committed) transaction, and recording one would
        // read as a lost write to the checker.
        if discarded_writes {
            if let Some(tap) = self.tap() {
                tap.rec.record(TxnEvent::Abort { trx, node: tap.node });
            }
        }
    }

    /// Abort `trx` only if it is still ACTIVE; returns whether it aborted.
    /// The state transition is decided atomically by the transaction table,
    /// so a concurrent `prepare` racing this call leaves exactly one winner:
    /// either the prepare fails (the transaction is gone) or this returns
    /// false (the transaction made it to PREPARED and must be resolved via
    /// the 2PC decision, never expired locally).
    pub fn abort_if_active(&self, trx: TrxId) -> bool {
        if !self.txns.try_abort_active(trx) {
            return false;
        }
        let ctx = self.active.remove(&trx);
        let discarded_writes = ctx.as_ref().is_some_and(|c| !c.writes.is_empty());
        if let Some(ctx) = ctx {
            self.rollback_writes(trx, &ctx.writes);
        }
        let _ = self.durable_submit(&[Mtr::single(RedoPayload::TxnAbort { trx })]);
        if discarded_writes {
            if let Some(tap) = self.tap() {
                tap.rec.record(TxnEvent::Abort { trx, node: tap.node });
            }
        }
        true
    }

    fn rollback_writes(&self, trx: TrxId, writes: &[(TableId, Key)]) {
        let mut by_table: HashMap<TableId, Vec<Key>> = HashMap::new();
        for (t, k) in writes {
            by_table.entry(*t).or_default().push(k.clone());
        }
        for (t, keys) in by_table {
            if let Ok(store) = self.store(t) {
                store.abort(trx, &keys);
            }
        }
    }

    /// Append a standalone marker record through the engine's durability
    /// path (e.g. PolarDB-MT's per-tenant log markers).
    pub fn log_marker(&self, payload: RedoPayload) -> Result<Lsn> {
        self.durable_submit(&[Mtr::single(payload)])
    }

    /// Any transactions still in flight? (Tenant migration waits for zero.)
    pub fn has_active_txns(&self) -> bool {
        !self.active.is_empty()
    }

    /// Any in-flight transaction holding writes on `table`? A shard
    /// cutover drains this *after* the commit gate: phase-two Commit
    /// messages are posted asynchronously, so a committed-but-unapplied
    /// write set can outlive the coordinator's commit guard. Detaching the
    /// store while one exists would strand the write.
    pub fn has_active_writes_on(&self, table: TableId) -> bool {
        self.active.any(|_, ctx| ctx.writes.iter().any(|(t, _)| *t == table))
            // Early-released pipelined commits are out of `active` but their
            // stamps may still be rolled back by a torn epoch — the rollback
            // needs the store attached, so a cutover must wait these out too.
            || self.unstable_ctx.any(|_, ctx| ctx.writes.iter().any(|(t, _)| *t == table))
    }

    /// Multi-version GC across all tables.
    pub fn purge(&self, horizon: u64) {
        for store in self.tables.read().values() {
            store.purge(horizon);
        }
        self.txns.forget_aborted();
    }

    /// Total visible row count of a table at `snapshot_ts` (tests/metrics).
    pub fn count_rows(&self, table: TableId, snapshot_ts: u64) -> Result<usize> {
        Ok(self.scan_table(table, snapshot_ts)?.len())
    }

    /// Crash recovery: reinstall a PREPARED-but-undecided transaction from
    /// its replayed redo (`ops` are its row records in log order, `prepare_ts`
    /// the recorded prepare timestamp).
    ///
    /// Intents go back into the version stores and the transaction lands in
    /// PREPARED state, so snapshot readers once again *wait* for its
    /// decision exactly as they did before the crash (§IV case 2); the
    /// in-doubt resolver then settles its fate through the arbiter. The
    /// rebuilt context carries no redo: a 2PC prepare already drained the
    /// row redo to the durable log, so the eventual phase-two commit only
    /// appends its commit record — same as before the crash.
    ///
    /// Idempotent: a transaction the table already knows (replayed twice,
    /// or already resolved by the arbiter) is left untouched.
    pub fn recover_in_doubt(
        &self,
        trx: TrxId,
        prepare_ts: u64,
        ops: &[RedoPayload],
    ) -> Result<()> {
        if self.txns.state(trx).is_some() {
            return Ok(());
        }
        self.txns.begin(trx);
        self.active
            .insert(trx, TrxCtx { snapshot_ts: prepare_ts, writes: Vec::new(), redo: Vec::new() });
        for op in ops {
            let (table, key, version_op) = match op {
                RedoPayload::Insert { table, key, row, .. }
                | RedoPayload::Update { table, key, row, .. } => {
                    (*table, key.clone(), VersionOp::Put(decode_row(row)))
                }
                RedoPayload::Delete { table, key, .. } => (*table, key.clone(), VersionOp::Delete),
                _ => continue,
            };
            let store = self.store(table)?;
            // Validation passes by construction: these intents were the
            // newest versions of their keys at crash time, and every commit
            // logged before the prepare has already been replayed with a
            // commit_ts at or below prepare_ts.
            store.write(&self.txns, trx, prepare_ts, key.clone(), version_op)?;
            let tenant = self.tenant_of(table).unwrap_or_default();
            self.pool.touch_read(self.pool.page_of(table, &key), tenant);
            self.active.with(&trx, |ctx| {
                let ctx = ctx.ok_or(Error::TxnAborted { reason: format!("trx {trx} vanished") })?;
                ctx.writes.push((table, key));
                Ok(())
            })?;
        }
        self.txns.prepare_with(trx, || prepare_ts)?;
        Ok(())
    }
}

impl Drop for StorageEngine {
    fn drop(&mut self) {
        // The flusher thread holds its own Arc to the pipeline, so the
        // pipeline's Drop alone never fires while the thread runs; the
        // engine going away is the signal to drain and stop it.
        if let Some(pipe) = self.epoch.write().take() {
            pipe.stop();
        }
    }
}

/// Replays a redo stream onto an engine's stores: buffers row ops per
/// transaction and applies them when the commit record arrives, with the
/// commit timestamp. This is the apply loop of RO nodes (§II-C) and Paxos
/// followers (§III); aborted transactions' ops are dropped.
pub struct RedoApplier {
    engine: Arc<StorageEngine>,
    pending: Mutex<HashMap<TrxId, Vec<RedoPayload>>>,
}

impl RedoApplier {
    /// An applier targeting `engine`.
    pub fn new(engine: Arc<StorageEngine>) -> RedoApplier {
        RedoApplier { engine, pending: Mutex::new(HashMap::new()) }
    }

    /// Feed one record.
    pub fn apply(&self, record: &RedoPayload) {
        match record {
            RedoPayload::Insert { trx, .. }
            | RedoPayload::Update { trx, .. }
            | RedoPayload::Delete { trx, .. } => {
                self.pending.lock().entry(*trx).or_default().push(record.clone());
            }
            RedoPayload::TxnCommit { trx, commit_ts } => {
                let ops = self.pending.lock().remove(trx).unwrap_or_default();
                for op in ops {
                    match op {
                        RedoPayload::Insert { table, key, row, .. }
                        | RedoPayload::Update { table, key, row, .. } => {
                            if let Ok(store) = self.engine.store(table) {
                                store.apply_committed(
                                    *trx,
                                    *commit_ts,
                                    key,
                                    VersionOp::Put(decode_row(&row)),
                                );
                            }
                        }
                        RedoPayload::Delete { table, key, .. } => {
                            if let Ok(store) = self.engine.store(table) {
                                store.apply_committed(*trx, *commit_ts, key, VersionOp::Delete);
                            }
                        }
                        _ => {}
                    }
                }
            }
            RedoPayload::TxnAbort { trx } => {
                self.pending.lock().remove(trx);
            }
            // Prepare/checkpoint/tenant markers carry no row changes.
            _ => {}
        }
    }

    /// Feed a whole byte run of encoded records.
    pub fn apply_bytes(&self, bytes: Bytes) -> Result<()> {
        for rec in RedoPayload::decode_all(bytes)? {
            self.apply(&rec);
        }
        Ok(())
    }

    /// Transactions whose commit record has not arrived yet.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, v: &str) -> Row {
        Row::new(vec![Value::Int(n), Value::str(v)])
    }

    const T: TableId = TableId(1);
    const TEN: TenantId = TenantId(1);

    fn engine() -> Arc<StorageEngine> {
        let e = StorageEngine::in_memory();
        e.create_table(T, TEN);
        e
    }

    #[test]
    fn insert_commit_read() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        assert_eq!(e.read(T, &key(1), 10, None).unwrap(), Some(row(1, "a")));
        assert_eq!(e.read(T, &key(1), 9, None).unwrap(), None);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        e.begin(TrxId(2), 10);
        let err = e.write(TrxId(2), T, key(1), WriteOp::Insert(row(1, "b"))).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
        // Same transaction inserting twice also fails.
        e.begin(TrxId(3), 10);
        e.write(TrxId(3), T, key(2), WriteOp::Insert(row(2, "x"))).unwrap();
        assert!(e.write(TrxId(3), T, key(2), WriteOp::Insert(row(2, "y"))).is_err());
    }

    #[test]
    fn update_delete_lifecycle() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        e.begin(TrxId(2), 10);
        e.write(TrxId(2), T, key(1), WriteOp::Update(row(1, "b"))).unwrap();
        e.commit(TrxId(2), 20).unwrap();
        e.begin(TrxId(3), 20);
        e.write(TrxId(3), T, key(1), WriteOp::Delete).unwrap();
        e.commit(TrxId(3), 30).unwrap();
        assert_eq!(e.read(T, &key(1), 15, None).unwrap(), Some(row(1, "a")));
        assert_eq!(e.read(T, &key(1), 25, None).unwrap(), Some(row(1, "b")));
        assert_eq!(e.read(T, &key(1), 35, None).unwrap(), None);
    }

    #[test]
    fn abort_rolls_back() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.abort(TrxId(1));
        assert_eq!(e.read(T, &key(1), 100, None).unwrap(), None);
        assert!(!e.has_active_txns());
    }

    #[test]
    fn two_phase_commit_path() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "2pc"))).unwrap();
        let lsn1 = e.prepare(TrxId(1), 50).unwrap();
        assert!(lsn1 > Lsn::ZERO, "prepare persists redo");
        let lsn2 = e.commit(TrxId(1), 60).unwrap();
        assert!(lsn2 > lsn1, "commit record follows");
        assert_eq!(e.read(T, &key(1), 60, None).unwrap(), Some(row(1, "2pc")));
    }

    #[test]
    fn write_conflict_between_engines_transactions() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.begin(TrxId(2), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Update(row(1, "a"))).unwrap();
        let err = e.write(TrxId(2), T, key(1), WriteOp::Update(row(1, "b"))).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
    }

    #[test]
    fn dirty_pages_tracked_per_tenant() {
        let e = engine();
        e.create_table(TableId(2), TenantId(2));
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.write(TrxId(1), TableId(2), key(1), WriteOp::Insert(row(1, "b"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        assert!(e.pool.dirty_count(Some(TEN)) >= 1);
        assert!(e.pool.dirty_count(Some(TenantId(2))) >= 1);
    }

    #[test]
    fn unknown_table_rejected() {
        let e = engine();
        e.begin(TrxId(1), 0);
        assert!(e.write(TrxId(1), TableId(99), key(1), WriteOp::Delete).is_err());
        assert!(e.read(TableId(99), &key(1), 0, None).is_err());
    }

    #[test]
    fn detach_attach_moves_data_without_copy() {
        let e1 = engine();
        e1.begin(TrxId(1), 0);
        e1.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "moved"))).unwrap();
        e1.commit(TrxId(1), 10).unwrap();
        let store = e1.detach_table(T).unwrap();
        assert!(e1.read(T, &key(1), 100, None).is_err(), "source lost ownership");

        let e2 = StorageEngine::in_memory();
        e2.attach_table(T, store, TEN);
        assert_eq!(e2.read(T, &key(1), 100, None).unwrap(), Some(row(1, "moved")));
    }

    #[test]
    fn redo_applier_replays_committed_only() {
        let src = engine();
        let sink = VecSink::new();
        let src2 = StorageEngine::with_sink(sink.clone() as Arc<dyn LogSink>);
        src2.create_table(T, TEN);
        // Committed transaction.
        src2.begin(TrxId(1), 0);
        src2.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "yes"))).unwrap();
        src2.commit(TrxId(1), 10).unwrap();
        // Aborted transaction.
        src2.begin(TrxId(2), 10);
        src2.write(TrxId(2), T, key(2), WriteOp::Insert(row(2, "no"))).unwrap();
        src2.abort(TrxId(2));

        // Replay the log into a replica engine.
        let replica = StorageEngine::in_memory();
        replica.create_table(T, TEN);
        let applier = RedoApplier::new(Arc::clone(&replica));
        applier.apply_bytes(Bytes::from(sink.contiguous())).unwrap();
        assert_eq!(replica.read(T, &key(1), 100, None).unwrap(), Some(row(1, "yes")));
        assert_eq!(replica.read(T, &key(2), 100, None).unwrap(), None);
        assert_eq!(applier.in_flight(), 0);
        drop(src);
    }

    #[test]
    fn aborts_ride_the_group_committer() {
        let e = engine();
        let m = e.wal_metrics().expect("local durability exposes group-commit metrics");
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        let before = m.commits.get();
        e.abort(TrxId(1));
        assert_eq!(m.commits.get(), before + 1, "abort record uses the shared flush path");
        // abort_if_active takes the same path.
        e.begin(TrxId(2), 0);
        assert!(e.abort_if_active(TrxId(2)));
        assert_eq!(m.commits.get(), before + 2);
    }

    #[test]
    fn sync_durability_still_flushes_per_transaction() {
        let sink = VecSink::new();
        let e = StorageEngine::with_durability(SyncLocalDurability::new(LogBuffer::new(
            sink.clone() as Arc<dyn LogSink>,
        )));
        e.create_table(T, TEN);
        assert!(e.wal_metrics().is_none(), "baseline provider has no group metrics");
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        assert_eq!(sink.writes().len(), 1);
        assert_eq!(e.read(T, &key(1), 10, None).unwrap(), Some(row(1, "a")));
    }

    #[test]
    fn scan_table_counts() {
        let e = engine();
        for i in 0..20i64 {
            let trx = TrxId(100 + i as u64);
            e.begin(trx, 0);
            e.write(trx, T, key(i), WriteOp::Insert(row(i, "v"))).unwrap();
            e.commit(trx, 10).unwrap();
        }
        assert_eq!(e.count_rows(T, 100).unwrap(), 20);
        assert_eq!(e.count_rows(T, 5).unwrap(), 0);
    }

    /// A sink whose writes can be made to fail on demand — the "crashed
    /// mid-flush" shape the recovery harness injects.
    struct FlakySink {
        inner: Arc<VecSink>,
        fail: AtomicBool,
    }

    impl LogSink for FlakySink {
        fn write(&self, at: Lsn, bytes: Bytes) -> polardbx_common::Result<()> {
            if self.fail.load(Ordering::SeqCst) {
                return Err(Error::storage("flush failed"));
            }
            self.inner.write(at, bytes)
        }
    }

    #[test]
    fn decided_commit_survives_a_durability_failure_as_in_doubt() {
        // Phase two of an externally decided commit hits a flush failure:
        // the prepared intent must stay PREPARED (reader waits, then sees
        // the commit), never be skipped or rolled back — a reader skipping
        // it would miss a globally committed write (G-SIb).
        let flaky =
            Arc::new(FlakySink { inner: VecSink::new(), fail: AtomicBool::new(false) });
        let e = StorageEngine::with_sink(Arc::clone(&flaky) as Arc<dyn LogSink>);
        e.create_table(T, TEN);

        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "a"))).unwrap();
        let (prepare_ts, _) = e.prepare_with(TrxId(1), || 10).unwrap();

        flaky.fail.store(true, Ordering::SeqCst);
        e.commit_decided(TrxId(1), prepare_ts).unwrap_err();
        // Still PREPARED: a reader above the timestamp must wait it out,
        // not skip to an older version.
        assert!(matches!(e.txn_state(TrxId(1)), Some(crate::txn::TxnState::Prepared { .. })));
        let err = e
            .store(T)
            .unwrap()
            .read_waiting(&e.txns, &key(1), 20, None, Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }), "{err:?}");

        // The durability hiccup clears; a retried decided commit lands and
        // the version becomes visible at the decided timestamp.
        flaky.fail.store(false, Ordering::SeqCst);
        e.commit_decided(TrxId(1), prepare_ts).unwrap();
        assert_eq!(e.read(T, &key(1), 20, None).unwrap(), Some(row(1, "a")));

        // Contrast: an undecided one-phase commit under the same failure
        // rolls back, and the key simply is not there.
        flaky.fail.store(true, Ordering::SeqCst);
        e.begin(TrxId(2), 20);
        e.write(TrxId(2), T, key(2), WriteOp::Insert(row(2, "b"))).unwrap();
        e.commit(TrxId(2), 30).unwrap_err();
        flaky.fail.store(false, Ordering::SeqCst);
        assert_eq!(e.read(T, &key(2), 40, None).unwrap(), None);
    }

    /// An engine in epoch mode over `sink`, plus the pipeline handle.
    fn epoch_engine(
        sink: Arc<dyn LogSink>,
    ) -> (Arc<StorageEngine>, Arc<EpochPipeline>, Arc<LogBuffer>) {
        let log = LogBuffer::new(sink);
        let e = StorageEngine::with_durability(SyncLocalDurability::new(Arc::clone(&log)));
        e.create_table(T, TEN);
        let pipe = e.enable_epoch(
            polardbx_wal::LocalEpochSink::new(Arc::clone(&log)),
            EpochConfig::default(),
        );
        (e, pipe, log)
    }

    #[test]
    fn epoch_commit_is_visible_and_durable() {
        let sink = VecSink::new();
        let (e, pipe, log) = epoch_engine(sink.clone());
        for n in 1..=10i64 {
            let trx = TrxId(n as u64);
            e.begin(trx, (n as u64 - 1) * 10);
            e.write(trx, T, key(n), WriteOp::Insert(row(n, "v"))).unwrap();
            e.commit(trx, n as u64 * 10).unwrap();
        }
        for n in 1..=10i64 {
            assert_eq!(e.read(T, &key(n), 100, None).unwrap(), Some(row(n, "v")));
        }
        assert_eq!(pipe.metrics.txns.get(), 10);
        assert_eq!(log.flushed(), log.head(), "every epoch flushed");
        // The durable stream decodes to exactly the serial path's records:
        // one row record + one commit record per transaction, in order.
        let records = RedoPayload::decode_all(Bytes::from(sink.contiguous())).unwrap();
        assert_eq!(records.len(), 20);
        assert!(matches!(records[0], RedoPayload::Insert { trx: TrxId(1), .. }));
        assert!(matches!(records[1], RedoPayload::TxnCommit { trx: TrxId(1), commit_ts: 10 }));
    }

    #[test]
    fn epoch_pipelined_tickets_overlap_commits() {
        let sink = VecSink::new();
        let (e, pipe, _log) = epoch_engine(sink);
        // Submit a window of commits without waiting, then harvest.
        let mut tickets = Vec::new();
        for n in 1..=50i64 {
            let trx = TrxId(n as u64);
            e.begin(trx, (n as u64 - 1) * 10);
            e.write(trx, T, key(n), WriteOp::Insert(row(n, "w"))).unwrap();
            tickets.push(e.commit_pipelined(trx, n as u64 * 10).unwrap());
        }
        for t in tickets {
            pipe.wait_ticket(t, Duration::from_secs(5)).unwrap();
        }
        assert_eq!(pipe.metrics.txns.get(), 50);
        for n in 1..=50i64 {
            assert_eq!(e.read(T, &key(n), 1000, None).unwrap(), Some(row(n, "w")));
        }
    }

    #[test]
    fn torn_epoch_rolls_back_undecided_commit() {
        let flaky = Arc::new(FlakySink { inner: VecSink::new(), fail: AtomicBool::new(false) });
        let (e, _pipe, _log) = epoch_engine(Arc::clone(&flaky) as Arc<dyn LogSink>);
        // A healthy commit first.
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "ok"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        // Break the sink: the next commit's epoch tears.
        flaky.fail.store(true, Ordering::SeqCst);
        e.begin(TrxId(2), 10);
        e.write(TrxId(2), T, key(2), WriteOp::Insert(row(2, "torn"))).unwrap();
        let err = e.commit(TrxId(2), 20).unwrap_err();
        assert!(matches!(err, Error::Shared(_)), "{err:?}");
        // Presumed abort: state demoted, stamped version removed, reads
        // see nothing — exactly what replay of the torn log would yield.
        assert!(matches!(e.txn_state(TrxId(2)), Some(crate::txn::TxnState::Aborted)));
        assert_eq!(e.read(T, &key(2), 100, None).unwrap(), None);
        assert_eq!(e.read(T, &key(1), 100, None).unwrap(), Some(row(1, "ok")));
        // The pipeline keeps serving once the sink heals.
        flaky.fail.store(false, Ordering::SeqCst);
        e.begin(TrxId(3), 20);
        e.write(TrxId(3), T, key(3), WriteOp::Insert(row(3, "after"))).unwrap();
        e.commit(TrxId(3), 30).unwrap();
        assert_eq!(e.read(T, &key(3), 100, None).unwrap(), Some(row(3, "after")));
    }

    #[test]
    fn torn_epoch_reverts_decided_commit_to_prepared() {
        let flaky = Arc::new(FlakySink { inner: VecSink::new(), fail: AtomicBool::new(false) });
        let (e, _pipe, _log) = epoch_engine(Arc::clone(&flaky) as Arc<dyn LogSink>);
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "2pc"))).unwrap();
        let (prepare_ts, _) = e.prepare_with(TrxId(1), || 10).unwrap();
        flaky.fail.store(true, Ordering::SeqCst);
        e.commit_decided(TrxId(1), prepare_ts).unwrap_err();
        // The decision is durable at the arbiter: never aborted, back to
        // PREPARED with readers waiting on it.
        assert!(matches!(e.txn_state(TrxId(1)), Some(crate::txn::TxnState::Prepared { .. })));
        let err = e
            .store(T)
            .unwrap()
            .read_waiting(&e.txns, &key(1), 20, None, Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }), "{err:?}");
        // Re-driving the commit after the sink heals finishes the job.
        flaky.fail.store(false, Ordering::SeqCst);
        e.commit_decided(TrxId(1), prepare_ts).unwrap();
        assert_eq!(e.read(T, &key(1), 20, None).unwrap(), Some(row(1, "2pc")));
    }

    #[test]
    fn epoch_prepare_and_abort_ride_the_pipeline() {
        let sink = VecSink::new();
        let (e, _pipe, log) = epoch_engine(sink.clone());
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "p"))).unwrap();
        e.prepare_with(TrxId(1), || 10).unwrap();
        e.begin(TrxId(2), 0);
        e.write(TrxId(2), T, key(2), WriteOp::Insert(row(2, "x"))).unwrap();
        e.abort(TrxId(2));
        e.commit_decided(TrxId(1), 10).unwrap();
        assert_eq!(log.flushed(), log.head());
        let records = RedoPayload::decode_all(Bytes::from(sink.contiguous())).unwrap();
        // Insert+Prepare(T1), Abort(T2), Commit(T1) — submission order.
        assert!(matches!(records[0], RedoPayload::Insert { trx: TrxId(1), .. }));
        assert!(matches!(records[1], RedoPayload::TxnPrepare { trx: TrxId(1), .. }));
        assert!(matches!(records[2], RedoPayload::TxnAbort { trx: TrxId(2) }));
        assert!(matches!(records[3], RedoPayload::TxnCommit { trx: TrxId(1), commit_ts: 10 }));
    }

    #[test]
    fn commit_with_detached_store_fails_instead_of_skipping() {
        let e = engine();
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "x"))).unwrap();
        // A re-home cutover detaches the store while the transaction still
        // holds an intent in it: the commit must surface an error — a
        // silent stamp-skip would ack a write that no longer exists here.
        let _store = e.detach_table(T).unwrap();
        let err = e.commit(TrxId(1), 10).unwrap_err();
        assert!(err.is_retryable(), "detached-store commit must bounce retryably: {err:?}");
    }

    #[test]
    fn pipelined_commit_with_detached_store_fails_instead_of_skipping() {
        let (e, _pipe, _log) = epoch_engine(VecSink::new());
        e.begin(TrxId(1), 0);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "x"))).unwrap();
        let _store = e.detach_table(T).unwrap();
        let err = e.commit(TrxId(1), 10).unwrap_err();
        assert!(err.is_retryable(), "detached-store commit must bounce retryably: {err:?}");
    }

    #[test]
    fn frozen_table_bounces_writes_retryably() {
        let e = engine();
        e.freeze_writes(T);
        e.begin(TrxId(1), 0);
        let err = e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "x"))).unwrap_err();
        assert!(err.is_retryable(), "frozen-table write must bounce retryably: {err:?}");
        assert!(!e.has_active_writes_on(T), "bounced write must leave no intent behind");
        e.unfreeze_writes(T);
        e.write(TrxId(1), T, key(1), WriteOp::Insert(row(1, "x"))).unwrap();
        e.commit(TrxId(1), 10).unwrap();
        assert_eq!(e.read(T, &key(1), 20, None).unwrap(), Some(row(1, "x")));
    }
}
