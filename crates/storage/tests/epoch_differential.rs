//! Differential property test for the epoch commit path (ISSUE 7): for a
//! seeded random workload applied transaction-by-transaction, the
//! epoch-pipelined engine must be observationally identical to the serial
//! (per-commit flush) engine —
//!
//! 1. **byte-identical durable redo**: an epoch is a plain concatenation
//!    of the same `RedoPayload` encodings the serial path writes, in the
//!    same submission order, so the two sinks hold the same bytes;
//! 2. **identical visible state** after the workload settles;
//! 3. **identical recovery**: cutting the log at a seeded byte offset
//!    (usually mid-record, i.e. a torn epoch tail) and replaying the
//!    prefix through `recovery::recovered_engine` yields the same state
//!    from either log — torn tails truncate to the durable horizon and
//!    replay at whole-transaction granularity.
//!
//! Eight seeds; each runs both engines over the same generated script.

use bytes::Bytes;
use polardbx_common::{Key, Lsn, Row, TableId, TenantId, TrxId, Value};
use polardbx_storage::recovery::recovered_engine;
use polardbx_storage::{StorageEngine, SyncLocalDurability, WriteOp};
use polardbx_wal::{EpochConfig, LocalEpochSink, LogBuffer, LogSink, VecSink};
use std::sync::Arc;

const T: TableId = TableId(1);
const TEN: TenantId = TenantId(1);
const KEYS: u64 = 16;
const TXNS: u64 = 48;

/// xorshift64* — deterministic, dependency-free seed expansion.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2654435761).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted statement: upsert `key := value`, or delete `key`.
#[derive(Clone)]
enum Stmt {
    Upsert(u64, i64),
    Delete(u64),
}

/// One scripted transaction; aborted txns still stage writes first, so
/// rollback paths diverge loudly if the epoch path mishandles them.
#[derive(Clone)]
struct Txn {
    stmts: Vec<Stmt>,
    abort: bool,
}

fn script(seed: u64) -> Vec<Txn> {
    let mut rng = Rng::new(seed);
    (0..TXNS)
        .map(|_| {
            let stmts = (0..1 + rng.below(3))
                .map(|_| {
                    let key = rng.below(KEYS);
                    if rng.below(10) < 7 {
                        Stmt::Upsert(key, rng.next() as i64)
                    } else {
                        Stmt::Delete(key)
                    }
                })
                .collect();
            Txn { stmts, abort: rng.below(6) == 0 }
        })
        .collect()
}

/// Apply the script single-threaded; commit timestamps are the txn index,
/// so both engines assign identical versions.
fn apply(engine: &Arc<StorageEngine>, txns: &[Txn]) {
    for (i, txn) in txns.iter().enumerate() {
        let trx = TrxId(i as u64 + 1);
        let ts = i as u64 + 1;
        engine.begin(trx, ts);
        for stmt in &txn.stmts {
            let (key, op) = match stmt {
                Stmt::Upsert(k, v) => {
                    (Key::encode(&[Value::Int(*k as i64)]), WriteOp::Update(Row::new(vec![Value::Int(*v)])))
                }
                Stmt::Delete(k) => (Key::encode(&[Value::Int(*k as i64)]), WriteOp::Delete),
            };
            engine.write(trx, T, key, op).unwrap();
        }
        if txn.abort {
            engine.abort(trx);
        } else {
            engine.commit(trx, ts).unwrap();
        }
    }
}

fn serial_engine() -> (Arc<StorageEngine>, Arc<VecSink>) {
    let sink = VecSink::new();
    let log = LogBuffer::new(Arc::clone(&sink) as Arc<dyn LogSink>);
    let engine = StorageEngine::with_durability(SyncLocalDurability::new(log));
    engine.create_table(T, TEN);
    (engine, sink)
}

fn epoch_engine() -> (Arc<StorageEngine>, Arc<VecSink>) {
    let sink = VecSink::new();
    let log = LogBuffer::new(Arc::clone(&sink) as Arc<dyn LogSink>);
    let engine = StorageEngine::with_durability(SyncLocalDurability::new(Arc::clone(&log)));
    engine.enable_epoch(LocalEpochSink::new(log), EpochConfig::default());
    engine.create_table(T, TEN);
    (engine, sink)
}

fn visible_state(engine: &Arc<StorageEngine>) -> Vec<(Key, Row)> {
    engine.scan_table(T, TXNS + 10).unwrap()
}

/// Replay `bytes` (a log prefix, possibly torn mid-record) into a fresh
/// engine via scan-and-truncate recovery and dump its visible state.
fn recover_prefix(bytes: &[u8]) -> (Vec<(Key, Row)>, Lsn, u64) {
    let sink = VecSink::new();
    sink.write(Lsn::ZERO, Bytes::copy_from_slice(bytes)).unwrap();
    let (engine, report) = recovered_engine(sink, &[(T, TEN)]).unwrap();
    (visible_state(&engine), report.durable_lsn, report.truncated_bytes)
}

#[test]
fn epoch_and_serial_paths_are_observationally_identical_across_seeds() {
    let mut torn_seeds = 0u32;
    for seed in 0..8u64 {
        let txns = script(seed);

        let (serial, serial_sink) = serial_engine();
        apply(&serial, &txns);
        let (epoch, epoch_sink) = epoch_engine();
        apply(&epoch, &txns);

        // (1) Byte-identical durable redo: epochs are concatenations of
        // the exact per-txn encodings the serial path flushes.
        let serial_bytes = serial_sink.contiguous();
        let epoch_bytes = epoch_sink.contiguous();
        assert!(!serial_bytes.is_empty(), "seed {seed}: workload produced no redo");
        assert_eq!(
            serial_bytes, epoch_bytes,
            "seed {seed}: epoch log diverges from serial log ({} vs {} bytes)",
            serial_bytes.len(),
            epoch_bytes.len()
        );

        // (2) Identical visible state.
        let serial_state = visible_state(&serial);
        assert!(!serial_state.is_empty(), "seed {seed}: workload left no rows");
        assert_eq!(serial_state, visible_state(&epoch), "seed {seed}: visible state diverges");

        // (3) Seeded mid-epoch crash: cut the log at an arbitrary byte
        // offset in its back half and recover both prefixes.
        let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
        let len = epoch_bytes.len();
        let cut = len / 2 + rng.below((len - len / 2) as u64) as usize;
        let (epoch_rec, epoch_lsn, epoch_torn) = recover_prefix(&epoch_bytes[..cut]);
        let (serial_rec, serial_lsn, serial_torn) = recover_prefix(&serial_bytes[..cut]);
        assert_eq!(epoch_lsn, serial_lsn, "seed {seed}: recovered horizons diverge");
        assert_eq!(epoch_torn, serial_torn, "seed {seed}: truncation diverges");
        assert_eq!(epoch_rec, serial_rec, "seed {seed}: recovered state diverges at cut {cut}");
        if epoch_torn > 0 {
            torn_seeds += 1;
        }

        // The recovered prefix must agree with the full run on every key
        // it managed to recover a version for at the recovered horizon —
        // i.e. recovery replays a prefix of the same history, never an
        // invented one. (Keys whose last write fell past the cut differ
        // by construction; prefix-of-history is exactly what torn-epoch
        // rollback promises.)
        let full_at_cut: std::collections::HashMap<Key, Row> = serial_rec.iter().cloned().collect();
        for (k, row) in &epoch_rec {
            assert_eq!(full_at_cut.get(k), Some(row), "seed {seed}: phantom row after recovery");
        }
    }
    // An arbitrary byte cut lands mid-record nearly always; if no seed
    // produced a torn tail the cut logic regressed to record boundaries
    // and the test stopped exercising torn-epoch recovery.
    assert!(torn_seeds >= 4, "only {torn_seeds}/8 seeds produced a torn tail");
}
