//! Adaptive placement: co-access-driven partition re-homing (ROADMAP
//! item 2, after *Lion* and *STAR*).
//!
//! Cross-DN transactions pay full 2PC — prepare round, decision log,
//! resolver exposure — yet most of that cost is avoidable when the keys a
//! transaction touches co-reside on one DN: the coordinator already takes
//! the `CommitLocal` one-phase path for single-DN write sets. Nothing in
//! the system *creates* that locality, though; hash partitioning scatters
//! co-accessed partitions uniformly. This crate closes the loop:
//!
//! 1. [`sketch::CoAccessSketch`] taps every commit (via
//!    [`polardbx_txn::AccessObserver`]) and maintains a bounded-memory
//!    co-access graph over partitions — which pairs are written by the
//!    same transactions, and how often. No allocation on the commit path.
//! 2. [`plan::plan`] periodically runs greedy affinity clustering over a
//!    snapshot of that graph and proposes re-homes: move the lighter
//!    partition of a hot edge to its partner's DN, under a per-DN balance
//!    cap, so hot transaction groups become single-DN.
//! 3. [`epoch::EpochMap`] makes executing those moves safe under live
//!    traffic: each shard carries a *routing epoch* that transactions pin
//!    when they route and the coordinator validates (entering a commit
//!    gate) at commit. A cutover freezes the shard — bumping the epoch and
//!    draining the gate — so no in-flight transaction can commit to the
//!    old home after data starts moving. See DESIGN.md §Adaptive
//!    placement.
//!
//! The crate is deliberately mechanism-only: it does not know about
//! engines, networks, or the `mt` transfer path. The cluster layer
//! (`polardbx::PolarDbx`) wires the sketch into its coordinators, turns
//! plans into actual shard moves, and reports `rehomes_applied`.

pub mod epoch;
pub mod plan;
pub mod sketch;

pub use epoch::EpochMap;
pub use plan::{plan, PlannerConfig, RehomeMove};
pub use sketch::{CoAccessSketch, EdgeStat, PartStat, SketchSnapshot};
