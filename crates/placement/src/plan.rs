//! Greedy affinity clustering: turn a co-access snapshot into a bounded
//! list of partition re-homes.
//!
//! The heuristic is the classic one (Schism-style, simplified to the
//! paper's hash-partition granularity): walk co-access edges heaviest
//! first; whenever an edge spans two DNs, move the *lighter* endpoint
//! (fewer observed writes — cheaper to move, fewer transactions disturbed
//! mid-cutover) to the heavier endpoint's home, provided the destination
//! stays within a balance cap. The pass is pure — no clocks, no RNG, no
//! I/O — so the same snapshot always yields the same plan, which the
//! sitcheck explorer relies on.

use std::collections::HashMap;

use polardbx_common::NodeId;

use crate::sketch::SketchSnapshot;

/// One proposed partition move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RehomeMove {
    /// Shard table id to move.
    pub part: u64,
    /// Current home.
    pub from: NodeId,
    /// Proposed home.
    pub to: NodeId,
    /// Weight of the co-access edge that motivated the move.
    pub weight: u64,
}

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Most moves proposed per pass (throttles migration storms together
    /// with the executor's min-gap).
    pub max_moves: usize,
    /// Edges lighter than this are noise and never motivate a move.
    pub min_edge_weight: u64,
    /// A destination DN may hold at most `balance_slack` × the mean
    /// per-DN write load after the move. 1.0 forbids any skew; TPC-C-lite
    /// affinity clustering wants room to pile a warehouse's partitions
    /// onto one DN, so the default is generous.
    pub balance_slack: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { max_moves: 16, min_edge_weight: 8, balance_slack: 3.0 }
    }
}

/// Propose re-homes for `snap` under `cfg`. Pure and deterministic.
pub fn plan(snap: &SketchSnapshot, cfg: &PlannerConfig) -> Vec<RehomeMove> {
    // Tentative state: partition -> (home, count), DN -> load.
    let mut home: HashMap<u64, (NodeId, u64)> = HashMap::new();
    let mut load: HashMap<NodeId, u64> = HashMap::new();
    for p in &snap.parts {
        home.insert(p.part, (p.home, p.count));
        *load.entry(p.home).or_insert(0) += p.count;
    }
    let dns = load.len().max(1) as f64;
    let total: u64 = load.values().sum();
    let cap = (total as f64 / dns * cfg.balance_slack).ceil() as u64;

    let mut edges: Vec<_> =
        snap.edges.iter().filter(|e| e.weight >= cfg.min_edge_weight).collect();
    // Heaviest first; ties broken by the pair id so the plan is stable.
    edges.sort_by(|x, y| y.weight.cmp(&x.weight).then((x.a, x.b).cmp(&(y.a, y.b))));

    let mut moves = Vec::new();
    for e in edges {
        if moves.len() >= cfg.max_moves {
            break;
        }
        let (Some(&(home_a, count_a)), Some(&(home_b, count_b))) =
            (home.get(&e.a), home.get(&e.b))
        else {
            continue; // endpoint dropped by the sketch
        };
        if home_a == home_b {
            continue;
        }
        // Move the lighter endpoint toward the heavier one.
        let (part, count, from, to) = if count_a <= count_b {
            (e.a, count_a, home_a, home_b)
        } else {
            (e.b, count_b, home_b, home_a)
        };
        if load.get(&to).copied().unwrap_or(0) + count > cap {
            continue;
        }
        home.insert(part, (to, count));
        *load.entry(from).or_insert(count) -= count;
        *load.entry(to).or_insert(0) += count;
        moves.push(RehomeMove { part, from, to, weight: e.weight });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{EdgeStat, PartStat};

    fn snap(parts: &[(u64, u64, u64)], edges: &[(u64, u64, u64)]) -> SketchSnapshot {
        SketchSnapshot {
            parts: parts
                .iter()
                .map(|&(part, count, home)| PartStat { part, count, home: NodeId(home) })
                .collect(),
            edges: edges
                .iter()
                .map(|&(a, b, weight)| EdgeStat { a, b, weight })
                .collect(),
            ..SketchSnapshot::default()
        }
    }

    #[test]
    fn colocates_a_hot_edge() {
        let s = snap(
            &[(1, 100, 1), (2, 10, 2), (3, 50, 1), (4, 50, 2)],
            &[(1, 2, 90)],
        );
        let moves = plan(&s, &PlannerConfig::default());
        assert_eq!(moves.len(), 1);
        // Partition 2 is lighter: it moves to partition 1's home.
        assert_eq!(moves[0], RehomeMove { part: 2, from: NodeId(2), to: NodeId(1), weight: 90 });
    }

    #[test]
    fn already_colocated_edges_are_skipped() {
        let s = snap(&[(1, 10, 1), (2, 10, 1)], &[(1, 2, 50)]);
        assert!(plan(&s, &PlannerConfig::default()).is_empty());
    }

    #[test]
    fn light_edges_are_noise() {
        let s = snap(&[(1, 10, 1), (2, 10, 2)], &[(1, 2, 3)]);
        let cfg = PlannerConfig { min_edge_weight: 8, ..PlannerConfig::default() };
        assert!(plan(&s, &cfg).is_empty());
    }

    #[test]
    fn balance_cap_blocks_pileup() {
        // Everything wants to move to DN1, but the cap says no.
        let s = snap(
            &[(1, 100, 1), (2, 100, 2), (3, 100, 3)],
            &[(1, 2, 50), (1, 3, 50)],
        );
        let cfg = PlannerConfig { balance_slack: 1.0, ..PlannerConfig::default() };
        assert!(plan(&s, &cfg).is_empty(), "slack 1.0 forbids any skew");
    }

    #[test]
    fn max_moves_bounds_the_pass() {
        let parts: Vec<_> = (1..=10).map(|i| (i, 10, i)).collect();
        let edges: Vec<_> = (2..=10).map(|i| (1, i, 100)).collect();
        let s = snap(&parts, &edges);
        let cfg = PlannerConfig { max_moves: 3, ..PlannerConfig::default() };
        assert_eq!(plan(&s, &cfg).len(), 3);
    }

    #[test]
    fn moves_chain_transitively() {
        // 1-2 heavy, 2-3 heavy: after 2 moves to DN1, 3 should follow it
        // to DN1 (the tentative home map is consulted, not the snapshot).
        let s = snap(
            &[(1, 100, 1), (2, 50, 2), (3, 20, 3)],
            &[(1, 2, 90), (2, 3, 80)],
        );
        let moves = plan(&s, &PlannerConfig::default());
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].part, 2);
        assert_eq!(moves[0].to, NodeId(1));
        assert_eq!(moves[1].part, 3);
        assert_eq!(moves[1].to, NodeId(1), "follows its partner's new home");
    }

    #[test]
    fn deterministic_for_equal_weights() {
        let s = snap(
            &[(1, 10, 1), (2, 10, 2), (3, 10, 3), (4, 10, 4)],
            &[(3, 4, 50), (1, 2, 50)],
        );
        let a = plan(&s, &PlannerConfig::default());
        let b = plan(&s, &PlannerConfig::default());
        assert_eq!(a, b);
        assert_eq!(a[0].part.min(a[0].part), a[0].part);
        // Tie on weight broken by pair id: (1,2) before (3,4).
        assert_eq!(a[0].weight, 50);
        assert!(a[0].part == 1 || a[0].part == 2);
    }
}
