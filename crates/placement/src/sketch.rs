//! Bounded-memory co-access sketch fed from the commit hot path.
//!
//! The coordinator calls [`CoAccessSketch::observe_commit`] after every
//! successful commit with the (stack-allocated) list of write-touched
//! partitions. The sketch folds that into two fixed-size open-addressed
//! tables:
//!
//! * a **partition table** — per-partition write count and last observed
//!   home DN,
//! * an **edge table** — co-access weight for every pair of partitions
//!   written by the same transaction.
//!
//! Both tables are arrays of atomics sized at construction: the hot path
//! performs no allocation and takes no locks (claims a slot with a CAS,
//! then does relaxed adds). When a table fills up or a probe chain runs
//! too long, the update is *dropped* and counted — the sketch degrades by
//! losing tail edges, never by growing. The planner reads a coherent-enough
//! [`snapshot`](CoAccessSketch::snapshot) off the hot path; per-counter
//! races are benign (counts are heuristics, not ledgers).

use std::sync::atomic::{AtomicU64, Ordering};

use polardbx_common::NodeId;
use polardbx_txn::{AccessObserver, PartTouch};

/// Sentinel for an unclaimed slot. Partition keys are shard-table ids
/// (`table.raw()`), which are small; edge keys pack two of them into 32
/// bits each — `u64::MAX` collides with neither.
const EMPTY: u64 = u64::MAX;

/// Bound on linear probing before an update is dropped. Keeps worst-case
/// hot-path work constant even when a table is nearly full.
const PROBE_LIMIT: usize = 16;

struct Slot {
    key: AtomicU64,
    count: AtomicU64,
    /// Partition table only: last observed home DN (`u64::MAX` = unknown).
    home: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            key: AtomicU64::new(EMPTY),
            count: AtomicU64::new(0),
            home: AtomicU64::new(EMPTY),
        }
    }
}

fn hash(key: u64) -> u64 {
    // Fibonacci multiplicative hash; good spread for sequential shard ids.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct FixedTable {
    slots: Box<[Slot]>,
    mask: u64,
    dropped: AtomicU64,
}

impl FixedTable {
    fn new(capacity_pow2: usize) -> FixedTable {
        assert!(capacity_pow2.is_power_of_two(), "sketch capacity must be a power of two");
        FixedTable {
            slots: (0..capacity_pow2).map(|_| Slot::empty()).collect(),
            mask: capacity_pow2 as u64 - 1,
            dropped: AtomicU64::new(0),
        }
    }

    /// Find or claim the slot for `key`. `None` when the probe chain is
    /// exhausted (table full around this hash) — the caller drops the
    /// update. lint:hotpath
    fn slot_for(&self, key: u64) -> Option<&Slot> {
        let mut idx = hash(key) & self.mask;
        for _ in 0..PROBE_LIMIT {
            let slot = &self.slots[idx as usize];
            match slot.key.compare_exchange(
                EMPTY,
                key,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(slot),
                Err(found) if found == key => return Some(slot),
                Err(_) => idx = (idx + 1) & self.mask,
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn reset(&self) {
        for slot in self.slots.iter() {
            slot.key.store(EMPTY, Ordering::Release);
            slot.count.store(0, Ordering::Release);
            slot.home.store(EMPTY, Ordering::Release);
        }
        self.dropped.store(0, Ordering::Release);
    }
}

/// Per-partition write statistics from a [`SketchSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartStat {
    /// Shard table id (`TableId::raw` of the shard table).
    pub part: u64,
    /// Transactions that wrote this partition since the last reset.
    pub count: u64,
    /// Home DN last observed for the partition.
    pub home: NodeId,
}

/// One co-access edge from a [`SketchSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeStat {
    /// Lower shard table id of the pair.
    pub a: u64,
    /// Higher shard table id of the pair.
    pub b: u64,
    /// Transactions that wrote both partitions.
    pub weight: u64,
}

/// Point-in-time view of the sketch for the planner.
#[derive(Debug, Clone, Default)]
pub struct SketchSnapshot {
    /// Partitions with at least one observed write.
    pub parts: Vec<PartStat>,
    /// Co-access edges, unsorted.
    pub edges: Vec<EdgeStat>,
    /// Updates dropped because a table was full (sketch saturation).
    pub dropped: u64,
    /// Commits observed (after the last reset).
    pub commits: u64,
    /// Commits that took the one-phase path.
    pub one_phase: u64,
}

/// The online co-access sketch. One instance serves every coordinator in
/// the cluster; see the [module docs](self) for the memory/concurrency
/// contract.
pub struct CoAccessSketch {
    parts: FixedTable,
    edges: FixedTable,
    commits: AtomicU64,
    one_phase: AtomicU64,
}

impl CoAccessSketch {
    /// Sketch with the default capacity (1024 partitions, 4096 edges) —
    /// ample for TPC-C-lite scale, ~160 KiB total.
    pub fn new() -> CoAccessSketch {
        CoAccessSketch::with_capacity(1024, 4096)
    }

    /// Sketch with explicit table capacities (each a power of two).
    pub fn with_capacity(parts: usize, edges: usize) -> CoAccessSketch {
        CoAccessSketch {
            parts: FixedTable::new(parts),
            edges: FixedTable::new(edges),
            commits: AtomicU64::new(0),
            one_phase: AtomicU64::new(0),
        }
    }

    /// Forget everything (bench phase boundaries).
    pub fn reset(&self) {
        self.parts.reset();
        self.edges.reset();
        self.commits.store(0, Ordering::Release);
        self.one_phase.store(0, Ordering::Release);
    }

    /// Collect the current state for the planner. Runs off the hot path;
    /// concurrent updates may or may not be included.
    pub fn snapshot(&self) -> SketchSnapshot {
        let mut out = SketchSnapshot {
            dropped: self.parts.dropped.load(Ordering::Relaxed)
                + self.edges.dropped.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            one_phase: self.one_phase.load(Ordering::Relaxed),
            ..SketchSnapshot::default()
        };
        for slot in self.parts.slots.iter() {
            let key = slot.key.load(Ordering::Acquire);
            if key == EMPTY {
                continue;
            }
            let home = slot.home.load(Ordering::Relaxed);
            if home == EMPTY {
                continue; // claimed but not yet populated
            }
            out.parts.push(PartStat {
                part: key,
                count: slot.count.load(Ordering::Relaxed),
                home: NodeId(home),
            });
        }
        for slot in self.edges.slots.iter() {
            let key = slot.key.load(Ordering::Acquire);
            if key == EMPTY {
                continue;
            }
            out.edges.push(EdgeStat {
                a: key >> 32,
                b: key & 0xFFFF_FFFF,
                weight: slot.count.load(Ordering::Relaxed),
            });
        }
        out
    }
}

impl Default for CoAccessSketch {
    fn default() -> Self {
        CoAccessSketch::new()
    }
}

impl AccessObserver for CoAccessSketch {
    // lint:hotpath
    fn observe_commit(&self, touched: &[PartTouch], one_phase: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if one_phase {
            self.one_phase.fetch_add(1, Ordering::Relaxed);
        }
        for (i, t) in touched.iter().enumerate() {
            let part = t.table.raw();
            if part >= u64::from(u32::MAX) {
                // Edge keys pack two partition ids into 32 bits each;
                // out-of-range ids (never produced by the shard catalog)
                // are skipped rather than aliased.
                continue;
            }
            if let Some(slot) = self.parts.slot_for(part) {
                slot.count.fetch_add(1, Ordering::Relaxed);
                slot.home.store(t.dn.raw(), Ordering::Relaxed);
            }
            for o in &touched[i + 1..] {
                let other = o.table.raw();
                if other >= u64::from(u32::MAX) || other == part {
                    continue;
                }
                let (lo, hi) = if part < other { (part, other) } else { (other, part) };
                if let Some(slot) = self.edges.slot_for((lo << 32) | hi) {
                    slot.count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::TableId;

    fn touch(part: u64, dn: u64) -> PartTouch {
        PartTouch { table: TableId(part), dn: NodeId(dn), epoch: 1 }
    }

    #[test]
    fn counts_parts_and_edges() {
        let s = CoAccessSketch::with_capacity(64, 256);
        s.observe_commit(&[touch(10, 1), touch(20, 2)], false);
        s.observe_commit(&[touch(10, 1), touch(20, 2)], false);
        s.observe_commit(&[touch(10, 1)], true);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 3);
        assert_eq!(snap.one_phase, 1);
        let p10 = snap.parts.iter().find(|p| p.part == 10).unwrap();
        assert_eq!(p10.count, 3);
        assert_eq!(p10.home, NodeId(1));
        let edge = snap.edges.iter().find(|e| e.a == 10 && e.b == 20).unwrap();
        assert_eq!(edge.weight, 2);
    }

    #[test]
    fn edge_is_order_independent() {
        let s = CoAccessSketch::with_capacity(64, 256);
        s.observe_commit(&[touch(3, 1), touch(7, 2)], false);
        s.observe_commit(&[touch(7, 2), touch(3, 1)], false);
        let snap = s.snapshot();
        assert_eq!(snap.edges.len(), 1);
        assert_eq!(snap.edges[0].weight, 2);
    }

    #[test]
    fn saturation_drops_instead_of_growing() {
        let s = CoAccessSketch::with_capacity(4, 4);
        for part in 0..64 {
            s.observe_commit(&[touch(part, 1)], true);
        }
        let snap = s.snapshot();
        assert!(snap.parts.len() <= 4);
        assert!(snap.dropped > 0, "overflow must be counted");
    }

    #[test]
    fn reset_clears_everything() {
        let s = CoAccessSketch::with_capacity(64, 64);
        s.observe_commit(&[touch(1, 1), touch(2, 2)], false);
        s.reset();
        let snap = s.snapshot();
        assert!(snap.parts.is_empty());
        assert!(snap.edges.is_empty());
        assert_eq!(snap.commits, 0);
    }

    #[test]
    fn home_tracks_latest_observation() {
        let s = CoAccessSketch::with_capacity(64, 64);
        s.observe_commit(&[touch(5, 1)], true);
        s.observe_commit(&[touch(5, 9)], true);
        let snap = s.snapshot();
        assert_eq!(snap.parts[0].home, NodeId(9));
    }
}
