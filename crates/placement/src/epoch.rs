//! Routing epochs and commit gates: the fence that keeps a live-traffic
//! cutover from split-braining between a partition's old and new home.
//!
//! Every shard table carries a monotonically increasing *routing epoch*.
//! A driver that routes a statement captures the epoch alongside the DN
//! and pins it on the transaction; at commit the coordinator calls
//! [`EpochMap::enter_commit`] for each pinned shard, which
//!
//! * fails (retryably) if the shard is frozen or its epoch moved — the
//!   transaction was routed against a stale map and must retry against the
//!   new home, and
//! * otherwise takes a *commit gate* held (RAII) until the commit's writes
//!   are fully handed to the fabric.
//!
//! A cutover calls [`EpochMap::freeze`]: new commits start bouncing, the
//!   epoch bumps so pinned in-flight transactions bounce too, and
//! [`EpochMap::drain`] waits for already-entered commits to finish. Only
//! then may data move. [`EpochMap::unfreeze`] reopens the shard (routes now
//! resolve to the new home at the new epoch).
//!
//! The gate protects the *commit decision*, not delivery: phase-two
//! `Commit` messages are posted asynchronously, so the cluster layer must
//! additionally drain per-engine in-flight state after the gate drains —
//! see `PolarDbx::rehome_shard`.

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use polardbx_common::time::mono_now;
use polardbx_common::{Error, Result, TableId};
use polardbx_txn::{CommitGuard, RoutingFence};

/// Epochs start here so a forgotten pin (0) can never validate.
const FIRST_EPOCH: u64 = 1;

#[derive(Debug)]
struct ShardGate {
    epoch: AtomicU64,
    committing: Arc<AtomicU64>,
    frozen: AtomicBool,
}

impl ShardGate {
    fn new() -> ShardGate {
        ShardGate {
            epoch: AtomicU64::new(FIRST_EPOCH),
            committing: Arc::new(AtomicU64::new(0)),
            frozen: AtomicBool::new(false),
        }
    }
}

/// The cluster-wide routing-epoch table. Shared (behind an `Arc`) between
/// the placement map, every coordinator (as its [`RoutingFence`]), and the
/// re-home executor.
#[derive(Default)]
pub struct EpochMap {
    gates: RwLock<HashMap<TableId, Arc<ShardGate>>>,
}

impl EpochMap {
    /// Empty map; gates materialize on first touch at [`FIRST_EPOCH`].
    pub fn new() -> EpochMap {
        EpochMap::default()
    }

    fn gate(&self, table: TableId) -> Arc<ShardGate> {
        if let Some(g) = self.gates.read().get(&table) {
            return Arc::clone(g);
        }
        let mut w = self.gates.write();
        Arc::clone(w.entry(table).or_insert_with(|| Arc::new(ShardGate::new())))
    }

    /// Freeze `table` for cutover: commits start bouncing retryably and the
    /// epoch bumps so stale-pinned transactions bounce as well. Returns the
    /// *new* epoch. Idempotent only in effect — each call bumps the epoch.
    pub fn freeze(&self, table: TableId) -> u64 {
        let gate = self.gate(table);
        gate.frozen.store(true, Ordering::SeqCst);
        let next = gate.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Pair with the fence in `enter_commit`: any commit that entered
        // the gate before this point is visible to `drain`; any commit
        // that enters after sees `frozen` and bails.
        fence(Ordering::SeqCst);
        next
    }

    /// Wait until no commit holds the gate. Call after [`freeze`]; returns
    /// false on timeout (a stuck commit — the cutover must back off and
    /// unfreeze).
    pub fn drain(&self, table: TableId, timeout: Duration) -> bool {
        let gate = self.gate(table);
        let deadline = mono_now() + timeout;
        while gate.committing.load(Ordering::SeqCst) != 0 {
            if mono_now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Reopen `table` after cutover (routes now resolve to the new home).
    pub fn unfreeze(&self, table: TableId) {
        self.gate(table).frozen.store(false, Ordering::SeqCst);
    }

    /// Is `table` currently frozen for cutover? Routing layers use this to
    /// bounce statements retryably instead of sending them to a home that
    /// is mid-move.
    pub fn is_frozen(&self, table: TableId) -> bool {
        if let Some(g) = self.gates.read().get(&table) {
            return g.frozen.load(Ordering::SeqCst);
        }
        false
    }
}

impl RoutingFence for EpochMap {
    fn epoch_of(&self, table: TableId) -> u64 {
        self.gate(table).epoch.load(Ordering::SeqCst)
    }

    fn enter_commit(&self, table: TableId, captured: u64) -> Result<CommitGuard> {
        let gate = self.gate(table);
        // Take the gate *first*, then re-check: pairs with the SeqCst
        // store+fence+load in `freeze`/`drain` so that either the freeze
        // sees this holder, or this holder sees the freeze.
        let guard = CommitGuard::holding(Arc::clone(&gate.committing));
        fence(Ordering::SeqCst);
        if gate.frozen.load(Ordering::SeqCst) {
            drop(guard);
            return Err(Error::Throttled { rule: format!("rehome-freeze:{table}") });
        }
        if gate.epoch.load(Ordering::SeqCst) != captured {
            drop(guard);
            return Err(Error::Throttled { rule: format!("routing-epoch-moved:{table}") });
        }
        Ok(guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(42);

    #[test]
    fn fresh_shard_admits_current_epoch() {
        let m = EpochMap::new();
        let e = m.epoch_of(T);
        assert_eq!(e, FIRST_EPOCH);
        let g = m.enter_commit(T, e).unwrap();
        drop(g);
        assert!(m.drain(T, Duration::from_millis(100)));
    }

    #[test]
    fn zero_pin_never_validates() {
        let m = EpochMap::new();
        assert!(m.enter_commit(T, 0).is_err());
    }

    #[test]
    fn freeze_bounces_commits_retryably() {
        let m = EpochMap::new();
        let e = m.epoch_of(T);
        m.freeze(T);
        let err = m.enter_commit(T, e).unwrap_err();
        assert!(err.is_retryable());
        m.unfreeze(T);
        // The old epoch stays invalid after unfreeze: routing must re-read.
        assert!(m.enter_commit(T, e).is_err());
        let e2 = m.epoch_of(T);
        assert!(m.enter_commit(T, e2).is_ok());
    }

    #[test]
    fn drain_waits_for_holders() {
        let m = Arc::new(EpochMap::new());
        let e = m.epoch_of(T);
        let guard = m.enter_commit(T, e).unwrap();
        m.freeze(T);
        assert!(!m.drain(T, Duration::from_millis(20)), "holder blocks drain");
        drop(guard);
        assert!(m.drain(T, Duration::from_secs(1)));
        m.unfreeze(T);
    }

    #[test]
    fn freeze_bumps_epoch() {
        let m = EpochMap::new();
        let e1 = m.epoch_of(T);
        m.freeze(T);
        m.unfreeze(T);
        assert_eq!(m.epoch_of(T), e1 + 1);
    }

    #[test]
    fn concurrent_freeze_and_commits_never_split_brain() {
        // Hammer enter_commit from many threads while freezing/unfreezing;
        // after every drain-success the gate must truly be empty.
        let m = Arc::new(EpochMap::new());
        let stop = Arc::new(AtomicBool::new(false));
        let committed_while_frozen = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let e = m.epoch_of(T);
                    if let Ok(g) = m.enter_commit(T, e) {
                        std::hint::spin_loop();
                        drop(g);
                    }
                }
            }));
        }
        for _ in 0..50 {
            m.freeze(T);
            assert!(m.drain(T, Duration::from_secs(5)));
            // Gate drained and frozen: nobody may enter now.
            let e = m.epoch_of(T);
            if m.enter_commit(T, e).is_ok() {
                committed_while_frozen.fetch_add(1, Ordering::Relaxed);
            }
            m.unfreeze(T);
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(committed_while_frozen.load(Ordering::Relaxed), 0);
    }
}
