//! Coordinator ↔ participant wire messages.

use polardbx_common::{Key, NodeId, Row, TableId, TrxId};

/// The final fate of a distributed transaction, as recorded in a decision
/// log (see [`crate::participant::DnService`]'s arbiter role).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Committed at this timestamp.
    Commit(u64),
    /// Rolled back (explicitly, or presumed after coordinator failure).
    Abort,
}

/// A write operation on the wire.
#[derive(Debug, Clone)]
pub enum WireWriteOp {
    /// Insert a row (duplicate-key checked at the participant).
    Insert(Row),
    /// Overwrite a row.
    Update(Row),
    /// Delete a row.
    Delete,
}

/// 2PC and statement messages.
#[derive(Debug, Clone)]
pub enum TxnMsg {
    /// Execute a write statement under `trx` at `snapshot_ts`.
    Write {
        /// Transaction id (global, allocated by the coordinator).
        trx: TrxId,
        /// The transaction's snapshot timestamp (raw HLC).
        snapshot_ts: u64,
        /// Target table.
        table: TableId,
        /// Row key.
        key: Key,
        /// The operation.
        op: WireWriteOp,
    },
    /// Execute a point read under `trx` at `snapshot_ts`. `trx` of 0 means
    /// an autocommit read outside any transaction.
    Read {
        /// Transaction id (0 = none).
        trx: TrxId,
        /// Snapshot timestamp.
        snapshot_ts: u64,
        /// Target table.
        table: TableId,
        /// Row key.
        key: Key,
    },
    /// Range scan (bounds encoded; `None` = unbounded).
    Scan {
        /// Transaction id (0 = none).
        trx: TrxId,
        /// Snapshot timestamp.
        snapshot_ts: u64,
        /// Target table.
        table: TableId,
        /// Inclusive lower bound.
        lower: Option<Key>,
        /// Exclusive upper bound.
        upper: Option<Key>,
    },
    /// 2PC phase one.
    Prepare {
        /// Transaction to prepare.
        trx: TrxId,
        /// Where the coordinator will record its commit decision. A
        /// participant left PREPARED past its in-doubt timeout asks this
        /// node for the outcome instead of blocking forever (None = legacy
        /// protocol without termination).
        decision_node: Option<NodeId>,
    },
    /// 2PC phase two (commit).
    Commit {
        /// Transaction to commit.
        trx: TrxId,
        /// Global commit timestamp.
        commit_ts: u64,
    },
    /// One-phase commit for single-participant transactions: the
    /// participant allocates the commit timestamp locally.
    CommitLocal {
        /// Transaction to commit.
        trx: TrxId,
    },
    /// Roll back.
    Abort {
        /// Transaction to abort.
        trx: TrxId,
    },
    /// Coordinator → arbiter DN: record the commit decision durably BEFORE
    /// phase two begins. First writer wins; the reply always carries the
    /// decision actually on record, so a coordinator that lost the race to
    /// a presumed abort learns it must not commit.
    LogDecision {
        /// The transaction decided.
        trx: TrxId,
        /// The decision the coordinator wants recorded.
        decision: Decision,
    },
    /// In-doubt participant → arbiter DN: what happened to `trx`? If no
    /// decision is on record the arbiter records ABORT (presumed abort):
    /// the coordinator provably had not decided commit, and this write
    /// blocks it from ever doing so.
    QueryDecision {
        /// The in-doubt transaction.
        trx: TrxId,
    },

    // ---- replies ----
    /// Generic success.
    Ok,
    /// Read result.
    RowResult(Option<Row>),
    /// Scan result.
    Rows(Vec<(Key, Row)>),
    /// Participant entered PREPARED at this timestamp.
    Prepared {
        /// The participant's `prepare_ts`.
        prepare_ts: u64,
    },
    /// Commit confirmation carrying the commit timestamp used.
    Committed {
        /// The commit timestamp.
        commit_ts: u64,
    },
    /// The decision on record at the arbiter.
    DecisionIs {
        /// The recorded decision.
        decision: Decision,
    },
    /// Failure reply.
    Failed(polardbx_common::Error),
}
