//! Routing-epoch fences and commit-time access observation.
//!
//! Adaptive placement (the `placement` crate) re-homes partitions while
//! traffic is live. Two hooks on the coordinator make that safe and
//! observable:
//!
//! * [`RoutingFence`] — the shard map hands out a *routing epoch* with
//!   every route. The driver pins the epoch on the transaction
//!   ([`crate::DistTxn::pin_epoch`]); at commit the coordinator validates
//!   every pinned epoch and takes a per-shard commit gate, so a cutover
//!   can wait for in-flight commits and stale-routed transactions abort
//!   (retryably) instead of committing to the old home.
//! * [`AccessObserver`] — after every successful commit the coordinator
//!   streams the set of write-touched partitions to the observer. The
//!   placement crate's co-access sketch consumes this with bounded memory
//!   and no allocation (the coordinator passes a fixed-size slice).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use polardbx_common::{NodeId, Result, TableId};

/// One write-touched partition of a transaction: the shard table, the DN
/// the write was routed to, and the routing epoch pinned for it (0 when
/// the driver did not pin one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartTouch {
    /// Shard table written.
    pub table: TableId,
    /// DN the write landed on.
    pub dn: NodeId,
    /// Routing epoch captured when the statement was routed.
    pub epoch: u64,
}

/// Commit-time access tap. Implementations must not block: this is called
/// on the commit hot path with a stack-allocated slice.
pub trait AccessObserver: Send + Sync {
    /// A transaction committed having written the given partitions.
    /// `one_phase` is true when it took the `CommitLocal` fast path.
    fn observe_commit(&self, touched: &[PartTouch], one_phase: bool);
}

/// RAII gate held for the duration of a commit against a shard: while any
/// guard is live the shard's cutover must wait. Dropping the guard
/// releases the gate.
#[derive(Debug, Default)]
pub struct CommitGuard {
    gate: Option<Arc<AtomicU64>>,
}

impl CommitGuard {
    /// A guard over `gate`: increments now, decrements on drop.
    pub fn holding(gate: Arc<AtomicU64>) -> CommitGuard {
        gate.fetch_add(1, Ordering::AcqRel);
        CommitGuard { gate: Some(gate) }
    }

    /// A no-op guard (shard not fenced).
    pub fn none() -> CommitGuard {
        CommitGuard { gate: None }
    }
}

impl Drop for CommitGuard {
    fn drop(&mut self) {
        if let Some(g) = self.gate.take() {
            g.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// The routing-epoch fence a coordinator validates commits against.
///
/// Implementations (the cluster placement map, or the sitcheck explorer's
/// shard map) bump a shard's epoch when they freeze it for cutover, and
/// wait for the commit gate to drain before moving data.
pub trait RoutingFence: Send + Sync {
    /// The current routing epoch of `table` (a shard table id).
    fn epoch_of(&self, table: TableId) -> u64;

    /// Validate `captured` against the current epoch and enter the commit
    /// gate. Returns a retryable error if the shard has been frozen or
    /// re-homed since the transaction routed to it — the caller must abort
    /// and retry against the new home.
    fn enter_commit(&self, table: TableId, captured: u64) -> Result<CommitGuard>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_counts_holders() {
        let gate = Arc::new(AtomicU64::new(0));
        let g1 = CommitGuard::holding(Arc::clone(&gate));
        let g2 = CommitGuard::holding(Arc::clone(&gate));
        assert_eq!(gate.load(Ordering::Acquire), 2);
        drop(g1);
        assert_eq!(gate.load(Ordering::Acquire), 1);
        drop(g2);
        assert_eq!(gate.load(Ordering::Acquire), 0);
        let _ = CommitGuard::none();
        assert_eq!(gate.load(Ordering::Acquire), 0);
    }
}
