//! The CN-side transaction coordinator.

use std::collections::HashSet;
use std::sync::Arc;

use polardbx_common::{Error, IdGenerator, Key, NodeId, Result, Row, TableId, TrxId};
use polardbx_hlc::{Clock, HlcTimestamp};
use polardbx_simnet::SimNet;

use crate::msg::{TxnMsg, WireWriteOp};

/// A coordinator living on a CN node.
pub struct Coordinator {
    /// The CN node id on the fabric.
    pub me: NodeId,
    net: Arc<SimNet<TxnMsg>>,
    clock: Arc<dyn Clock>,
    trx_ids: Arc<IdGenerator>,
}

impl Coordinator {
    /// A coordinator using `clock` for timestamps. Share `trx_ids` between
    /// coordinators for globally unique transaction ids.
    pub fn new(
        me: NodeId,
        net: Arc<SimNet<TxnMsg>>,
        clock: Arc<dyn Clock>,
        trx_ids: Arc<IdGenerator>,
    ) -> Coordinator {
        Coordinator { me, net, clock, trx_ids }
    }

    /// Begin a distributed transaction: `snapshot_ts = ClockNow()` (step ①;
    /// for TSO this is the first oracle round trip).
    pub fn begin(&self) -> DistTxn<'_> {
        let snapshot_ts = self.clock.now();
        DistTxn {
            coord: self,
            trx: TrxId(self.trx_ids.next_id()),
            snapshot_ts,
            participants: HashSet::new(),
            finished: false,
        }
    }

    /// Autocommit snapshot read outside any transaction.
    pub fn read_autocommit(
        &self,
        dn: NodeId,
        table: TableId,
        key: &Key,
    ) -> Result<Option<Row>> {
        let snapshot_ts = self.clock.now().raw();
        match self.net.call(
            self.me,
            dn,
            TxnMsg::Read { trx: TrxId(0), snapshot_ts, table, key: key.clone() },
        )? {
            TxnMsg::RowResult(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// The coordinator's clock (exposed for session-level reuse).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

/// An in-flight distributed transaction handle.
pub struct DistTxn<'a> {
    coord: &'a Coordinator,
    trx: TrxId,
    snapshot_ts: HlcTimestamp,
    participants: HashSet<NodeId>,
    finished: bool,
}

impl DistTxn<'_> {
    /// This transaction's id.
    pub fn id(&self) -> TrxId {
        self.trx
    }

    /// This transaction's snapshot timestamp.
    pub fn snapshot_ts(&self) -> HlcTimestamp {
        self.snapshot_ts
    }

    /// Participant DNs touched so far.
    pub fn participants(&self) -> usize {
        self.participants.len()
    }

    fn call(&self, dn: NodeId, msg: TxnMsg) -> Result<TxnMsg> {
        self.coord.net.call(self.coord.me, dn, msg)
    }

    /// Execute a write on `dn` (step ②).
    pub fn write(
        &mut self,
        dn: NodeId,
        table: TableId,
        key: Key,
        op: WireWriteOp,
    ) -> Result<()> {
        self.participants.insert(dn);
        match self.call(
            dn,
            TxnMsg::Write { trx: self.trx, snapshot_ts: self.snapshot_ts.raw(), table, key, op },
        )? {
            TxnMsg::Ok => Ok(()),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Snapshot point read on `dn`.
    pub fn read(&mut self, dn: NodeId, table: TableId, key: &Key) -> Result<Option<Row>> {
        self.participants.insert(dn);
        match self.call(
            dn,
            TxnMsg::Read {
                trx: self.trx,
                snapshot_ts: self.snapshot_ts.raw(),
                table,
                key: key.clone(),
            },
        )? {
            TxnMsg::RowResult(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Snapshot range scan on `dn`.
    pub fn scan(
        &mut self,
        dn: NodeId,
        table: TableId,
        lower: Option<Key>,
        upper: Option<Key>,
    ) -> Result<Vec<(Key, Row)>> {
        self.participants.insert(dn);
        match self.call(
            dn,
            TxnMsg::Scan {
                trx: self.trx,
                snapshot_ts: self.snapshot_ts.raw(),
                table,
                lower,
                upper,
            },
        )? {
            TxnMsg::Rows(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Commit. Single participant → one-phase (the participant's
    /// `ClockAdvance` is the commit timestamp). Multiple → full 2PC with
    /// parallel prepares, `commit_ts = max(prepare_ts)` and one batched
    /// `ClockUpdate` at the coordinator (the §IV contention optimization).
    /// Returns the commit timestamp.
    pub fn commit(mut self) -> Result<u64> {
        self.finished = true;
        let parts: Vec<NodeId> = self.participants.iter().copied().collect();
        match parts.len() {
            0 => Ok(self.snapshot_ts.raw()), // read-nothing transaction
            1 => {
                let dn = parts[0];
                match self.call(dn, TxnMsg::CommitLocal { trx: self.trx })? {
                    TxnMsg::Committed { commit_ts } => {
                        // Absorb the participant's timestamp so later
                        // transactions from this CN observe it.
                        self.coord.clock.update(HlcTimestamp::from_raw(commit_ts));
                        Ok(commit_ts)
                    }
                    TxnMsg::Failed(e) => Err(e),
                    other => Err(Error::execution(format!("unexpected reply {other:?}"))),
                }
            }
            _ => {
                // Phase one, in parallel across participants.
                let mut prepare_ts = Vec::with_capacity(parts.len());
                let this = &self;
                let results: Vec<Result<TxnMsg>> = std::thread::scope(|s| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|&dn| s.spawn(move || this.call(dn, TxnMsg::Prepare { trx: this.trx })))
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("prepare thread")).collect()
                });
                for r in results {
                    match r? {
                        TxnMsg::Prepared { prepare_ts: ts } => prepare_ts.push(ts),
                        TxnMsg::Failed(e) => {
                            self.send_aborts(&parts);
                            return Err(Error::PrepareRejected {
                                participant: "dn".into(),
                                reason: e.to_string(),
                            });
                        }
                        other => {
                            self.send_aborts(&parts);
                            return Err(Error::execution(format!("unexpected reply {other:?}")));
                        }
                    }
                }
                // Steps ⑤/⑥: commit_ts = max; a single batched ClockUpdate.
                let commit_ts = prepare_ts.iter().copied().max().expect("non-empty");
                self.coord.clock.update(HlcTimestamp::from_raw(commit_ts));
                // Phase two is asynchronous: post and return. New readers
                // hitting PREPARED versions wait for the decision, so this
                // is safe under HLC-SI (§IV case 2).
                for &dn in &parts {
                    let _ = self
                        .coord
                        .net
                        .post(self.coord.me, dn, TxnMsg::Commit { trx: self.trx, commit_ts });
                }
                Ok(commit_ts)
            }
        }
    }

    /// Abort everywhere.
    pub fn abort(mut self) {
        self.finished = true;
        let parts: Vec<NodeId> = self.participants.iter().copied().collect();
        self.send_aborts(&parts);
    }

    fn send_aborts(&self, parts: &[NodeId]) {
        for &dn in parts {
            let _ = self.coord.net.post(self.coord.me, dn, TxnMsg::Abort { trx: self.trx });
        }
    }
}

impl Drop for DistTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let parts: Vec<NodeId> = self.participants.iter().copied().collect();
            self.send_aborts(&parts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, TenantId, Value};
    use polardbx_hlc::{Hlc, TestClock};
    use polardbx_simnet::{Handler, LatencyMatrix};
    use polardbx_storage::StorageEngine;
    use std::time::Duration;

    use crate::participant::DnService;

    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, v: i64) -> Row {
        Row::new(vec![Value::Int(n), Value::Int(v)])
    }

    const T: TableId = TableId(1);

    /// Three DNs in three DCs plus one CN coordinator, all on HLC clocks.
    fn cluster() -> (Arc<SimNet<TxnMsg>>, Coordinator, Vec<Arc<DnService>>) {
        let net = SimNet::new(LatencyMatrix::zero());
        let mut dns = Vec::new();
        for i in 1..=3u64 {
            let clock = Hlc::with_physical(TestClock::at(1000 * i)); // skewed clocks!
            let engine = StorageEngine::in_memory();
            engine.create_table(T, TenantId(1));
            let dn = DnService::new(NodeId(i), engine, clock);
            net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
            dns.push(dn);
        }
        net.register(NodeId(9), DcId(1), Arc::new(CnStub));
        let coord = Coordinator::new(
            NodeId(9),
            Arc::clone(&net),
            Hlc::with_physical(TestClock::at(500)),
            Arc::new(IdGenerator::new()),
        );
        (net, coord, dns)
    }

    fn await_visible(dn: &DnService, k: &Key, timeout: Duration) -> Option<Row> {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if let Ok(Some(r)) = dn.engine.read(T, k, u64::MAX, None) {
                return Some(r);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn cross_shard_transaction_commits_atomically() {
        let (_net, coord, dns) = cluster();
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 100))).unwrap();
        txn.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 200))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 300))).unwrap();
        let commit_ts = txn.commit().unwrap();
        assert!(commit_ts > 0);
        // Asynchronous phase two: rows land shortly after.
        assert_eq!(await_visible(&dns[0], &key(1), Duration::from_secs(1)), Some(row(1, 100)));
        assert_eq!(await_visible(&dns[1], &key(2), Duration::from_secs(1)), Some(row(2, 200)));
        assert_eq!(await_visible(&dns[2], &key(3), Duration::from_secs(1)), Some(row(3, 300)));
    }

    #[test]
    fn single_participant_uses_one_phase() {
        let (net, coord, dns) = cluster();
        let before = net.stats.snapshot().0;
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.commit().unwrap();
        let after = net.stats.snapshot().0;
        // Write + CommitLocal = 2 sync calls; a 2PC would need 3+.
        assert_eq!(after - before, 2);
        assert!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap().is_some());
    }

    #[test]
    fn commit_ts_is_max_of_prepares_and_coordinator_learns_it() {
        let (_net, coord, _dns) = cluster();
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 3))).unwrap();
        let commit_ts = txn.commit().unwrap();
        // DN3's clock started at pt=3000, far ahead of the others; the max
        // rule means commit_ts reflects it.
        assert!(HlcTimestamp::from_raw(commit_ts).pt() >= 3000);
        // And the coordinator's clock absorbed it (batched ClockUpdate).
        assert!(coord.clock().now().raw() >= commit_ts);
    }

    #[test]
    fn snapshot_isolation_across_shards() {
        let (_net, coord, dns) = cluster();
        // Seed two rows on different DNs.
        let mut seed = coord.begin();
        seed.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 50))).unwrap();
        seed.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 50))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[0], &key(1), Duration::from_secs(1)).unwrap();
        await_visible(&dns[1], &key(2), Duration::from_secs(1)).unwrap();

        // Reader takes its snapshot BEFORE the transfer commits.
        let mut reader = coord.begin();
        let r1_before = reader.read(NodeId(1), T, &key(1)).unwrap().unwrap();

        // A transfer moves 10 from key1 (DN1) to key2 (DN2).
        let mut transfer = coord.begin();
        transfer.write(NodeId(1), T, key(1), WireWriteOp::Update(row(1, 40))).unwrap();
        transfer.write(NodeId(2), T, key(2), WireWriteOp::Update(row(2, 60))).unwrap();
        transfer.commit().unwrap();
        await_visible(&dns[1], &key(2), Duration::from_secs(1)).unwrap();

        // The reader must still see the OLD value of key2: its snapshot
        // predates the transfer's commit_ts. (No fractured read.)
        let r2 = reader.read(NodeId(2), T, &key(2)).unwrap().unwrap();
        assert_eq!(r1_before.get(1).unwrap().as_int().unwrap(), 50);
        assert_eq!(r2.get(1).unwrap().as_int().unwrap(), 50, "fractured read detected");
        reader.abort();
    }

    #[test]
    fn prepare_failure_aborts_cleanly() {
        let (_net, coord, dns) = cluster();
        // Seed a row, then open a conflicting write to force prepare-time
        // validation failure... conflicts surface at write time in this
        // engine, so emulate participant failure by writing a duplicate.
        let mut seed = coord.begin();
        seed.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[0], &key(1), Duration::from_secs(1)).unwrap();

        let mut txn = coord.begin();
        let err = txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 2))).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
        txn.abort();
        // The engine holds no leaked transaction state.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!dns[0].engine.has_active_txns());
    }

    #[test]
    fn write_conflict_propagates_to_coordinator() {
        let (_net, coord, _dns) = cluster();
        let mut t1 = coord.begin();
        let mut t2 = coord.begin();
        t1.write(NodeId(1), T, key(7), WireWriteOp::Update(row(7, 1))).unwrap();
        let err = t2.write(NodeId(1), T, key(7), WireWriteOp::Update(row(7, 2))).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
        t2.abort();
        t1.commit().unwrap();
    }

    #[test]
    fn dropped_transaction_auto_aborts() {
        let (_net, coord, dns) = cluster();
        {
            let mut txn = coord.begin();
            txn.write(NodeId(1), T, key(42), WireWriteOp::Insert(row(42, 1))).unwrap();
            // Dropped without commit.
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(!dns[0].engine.has_active_txns(), "drop must trigger abort");
        assert_eq!(dns[0].engine.read(T, &key(42), u64::MAX, None).unwrap(), None);
    }

    #[test]
    fn autocommit_read() {
        let (_net, coord, dns) = cluster();
        let mut seed = coord.begin();
        seed.write(NodeId(2), T, key(5), WireWriteOp::Insert(row(5, 9))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[1], &key(5), Duration::from_secs(1)).unwrap();
        // Autocommit read may need to wait until the CN clock passes the
        // commit (it does: commit updated the coordinator clock).
        let got = coord.read_autocommit(NodeId(2), T, &key(5)).unwrap();
        assert_eq!(got, Some(row(5, 9)));
    }
}
