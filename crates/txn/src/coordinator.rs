//! The CN-side transaction coordinator.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use polardbx_common::{
    Error, HistoryRecorder, IdGenerator, Key, NodeId, Result, Row, TableId, TrxId, TxnEvent,
};
use polardbx_hlc::{Clock, HlcTimestamp};
use polardbx_simnet::SimNet;

use crate::config::TxnConfig;
use crate::metrics::TxnMetrics;
use crate::msg::{Decision, TxnMsg, WireWriteOp};
use crate::route::{AccessObserver, CommitGuard, PartTouch, RoutingFence};

/// Upper bound on distinct partitions a transaction can pin routing epochs
/// for (and on the write-partition set streamed to the access observer).
/// Fixed so the commit hot path stays allocation-free; bulk loaders that
/// exceed it should route unfenced (moves never run during loads).
pub const MAX_TOUCHED: usize = 32;

/// A hook invoked at named points in the commit protocol, letting chaos
/// tests inject failures (e.g. crash the CN) at exact protocol positions.
pub type Failpoint = Arc<dyn Fn(&'static str) + Send + Sync>;

/// Deliberate protocol breakages used to validate the isolation checker
/// (`sitcheck` mutation runs): each one removes a safety step HLC-SI
/// depends on, and the checker must catch the resulting anomaly. Never
/// enable these outside checker validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolMutations {
    /// Skip the coordinator's commit-time `ClockUpdate` (step ⑥): later
    /// transactions from this CN may take snapshots below commit
    /// timestamps they causally follow.
    pub skip_commit_clock_update: bool,
    /// Silently drop this participant from the 2PC fan-out (no Prepare, no
    /// phase-two Commit), while still committing the others: its writes
    /// are lost even though the coordinator reports success.
    pub drop_participant: Option<NodeId>,
    /// Skip the routing-epoch fence at commit: a transaction routed before
    /// a partition re-home commits to the *old* home as if nothing moved,
    /// splitting the partition's history across two DNs.
    pub skip_routing_epoch_fence: bool,
}

/// A coordinator living on a CN node.
pub struct Coordinator {
    /// The CN node id on the fabric.
    pub me: NodeId,
    net: Arc<SimNet<TxnMsg>>,
    clock: Arc<dyn Clock>,
    trx_ids: Arc<IdGenerator>,
    config: TxnConfig,
    decision_node: Option<NodeId>,
    metrics: Arc<TxnMetrics>,
    failpoint: Option<Failpoint>,
    recorder: Option<Arc<HistoryRecorder>>,
    mutations: ProtocolMutations,
    fence: Option<Arc<dyn RoutingFence>>,
    observer: Option<Arc<dyn AccessObserver>>,
    /// Serializes `begin`'s (ClockNow, Begin-record) pair against commit's
    /// (ClockUpdate, Commit-record) pair — only when a recorder is
    /// installed. The checker infers session order from record sequence
    /// numbers, so each pair must be atomic or a commit landing between a
    /// racing begin's clock read and its Begin record shows up as a false
    /// G-SIb "lost ClockUpdate". Untapped coordinators never touch it.
    session_order: Mutex<()>,
}

impl Coordinator {
    /// A coordinator using `clock` for timestamps. Share `trx_ids` between
    /// coordinators for globally unique transaction ids.
    pub fn new(
        me: NodeId,
        net: Arc<SimNet<TxnMsg>>,
        clock: Arc<dyn Clock>,
        trx_ids: Arc<IdGenerator>,
    ) -> Coordinator {
        Coordinator {
            me,
            net,
            clock,
            trx_ids,
            config: TxnConfig::default(),
            decision_node: None,
            metrics: Arc::new(TxnMetrics::new()),
            failpoint: None,
            recorder: None,
            mutations: ProtocolMutations::default(),
            fence: None,
            observer: None,
            session_order: Mutex::named("txn.session_order", ()),
        }
    }

    /// Builder: override the retry policy.
    pub fn with_config(mut self, config: TxnConfig) -> Coordinator {
        self.config = config;
        self
    }

    /// Builder: record commit decisions on `dn` before phase two, enabling
    /// participant-side in-doubt resolution (and presumed abort) when this
    /// coordinator dies or its phase-two messages are lost.
    pub fn with_decision_log(mut self, dn: NodeId) -> Coordinator {
        self.decision_node = Some(dn);
        self
    }

    /// Builder: share a metrics sink (retry and in-doubt counters).
    pub fn with_metrics(mut self, metrics: Arc<TxnMetrics>) -> Coordinator {
        self.metrics = metrics;
        self
    }

    /// Builder: install a failpoint hook. The commit path announces
    /// `"txn.before_decision"` (prepares acked, decision not yet logged) and
    /// `"txn.after_decision"` (decision logged, phase two not yet sent).
    pub fn with_failpoint(mut self, fp: Failpoint) -> Coordinator {
        self.failpoint = Some(fp);
        self
    }

    /// Builder: record transaction begins and global commit/abort outcomes
    /// to a history recorder (isolation checking).
    pub fn with_recorder(mut self, rec: Arc<HistoryRecorder>) -> Coordinator {
        self.recorder = Some(rec);
        self
    }

    /// Builder: enable deliberate protocol breakages. Checker-validation
    /// (`sitcheck` mutation runs) only.
    pub fn with_mutations(mut self, mutations: ProtocolMutations) -> Coordinator {
        self.mutations = mutations;
        self
    }

    /// Builder: validate pinned routing epochs against `fence` at commit,
    /// so transactions routed before a partition re-home abort (retryably)
    /// instead of committing to the old home.
    pub fn with_fence(mut self, fence: Arc<dyn RoutingFence>) -> Coordinator {
        self.fence = Some(fence);
        self
    }

    /// Builder: stream each commit's write-partition set to `observer`
    /// (the adaptive placer's co-access sketch).
    pub fn with_observer(mut self, observer: Arc<dyn AccessObserver>) -> Coordinator {
        self.observer = Some(observer);
        self
    }

    fn record(&self, ev: TxnEvent) {
        if let Some(rec) = &self.recorder {
            rec.record(ev);
        }
    }

    /// This coordinator's metrics.
    pub fn metrics(&self) -> &Arc<TxnMetrics> {
        &self.metrics
    }

    fn hit_failpoint(&self, point: &'static str) {
        if let Some(fp) = &self.failpoint {
            fp(point);
        }
    }

    /// Commit-path RPC with bounded, deterministic exponential backoff on
    /// timeouts and transient network failures. Only used for idempotent
    /// messages (Prepare, CommitLocal, LogDecision): a lost *reply* means
    /// the handler already ran, and retrying must be harmless.
    fn call_retry(&self, dn: NodeId, msg: TxnMsg) -> Result<TxnMsg> {
        let mut attempt = 1u32;
        loop {
            match self.net.call(self.me, dn, msg.clone()) {
                Err(Error::Timeout { .. } | Error::Network { .. })
                    if attempt < self.config.max_attempts =>
                {
                    self.metrics.rpc_retries.inc();
                    std::thread::sleep(self.config.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Begin a distributed transaction: `snapshot_ts = ClockNow()` (step ①;
    /// for TSO this is the first oracle round trip).
    pub fn begin(&self) -> DistTxn<'_> {
        let trx = TrxId(self.trx_ids.next_id());
        // Snapshot acquisition and the Begin record form one atomic step
        // relative to commit's (ClockUpdate, Commit-record) pair; see the
        // `session_order` field for why the checker needs this.
        let _order = self.recorder.is_some().then(|| self.session_order.lock());
        let snapshot_ts = self.clock.now();
        self.record(TxnEvent::Begin { trx, session: self.me, snapshot_ts: snapshot_ts.raw() });
        drop(_order);
        DistTxn {
            coord: self,
            trx,
            snapshot_ts,
            participants: HashSet::new(),
            write_dns: HashSet::new(),
            touched: [PartTouch { table: TableId(0), dn: NodeId(0), epoch: 0 }; MAX_TOUCHED],
            touched_len: 0,
            touched_overflow: false,
            pins: [(TableId(0), 0); MAX_TOUCHED],
            pins_len: 0,
            finished: false,
        }
    }

    /// Autocommit snapshot read outside any transaction.
    pub fn read_autocommit(
        &self,
        dn: NodeId,
        table: TableId,
        key: &Key,
    ) -> Result<Option<Row>> {
        let snapshot_ts = self.clock.now().raw();
        match self.net.call(
            self.me,
            dn,
            TxnMsg::Read { trx: TrxId(0), snapshot_ts, table, key: key.clone() },
        )? {
            TxnMsg::RowResult(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// The coordinator's clock (exposed for session-level reuse).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

/// An in-flight distributed transaction handle.
pub struct DistTxn<'a> {
    coord: &'a Coordinator,
    trx: TrxId,
    snapshot_ts: HlcTimestamp,
    /// Every DN touched (reads included) — these hold per-transaction
    /// state at the engine and must be released on any outcome.
    participants: HashSet<NodeId>,
    /// DNs holding write intents — only these vote in the commit.
    write_dns: HashSet<NodeId>,
    /// Write-touched partitions, fixed-size: streamed to the access
    /// observer on commit without allocating.
    touched: [PartTouch; MAX_TOUCHED],
    touched_len: usize,
    touched_overflow: bool,
    /// Routing epochs pinned by the driver, one per routed partition,
    /// validated against the fence at commit.
    pins: [(TableId, u64); MAX_TOUCHED],
    pins_len: usize,
    finished: bool,
}

impl DistTxn<'_> {
    /// This transaction's id.
    pub fn id(&self) -> TrxId {
        self.trx
    }

    /// This transaction's snapshot timestamp.
    pub fn snapshot_ts(&self) -> HlcTimestamp {
        self.snapshot_ts
    }

    /// Participant DNs touched so far (reads included).
    pub fn participants(&self) -> usize {
        self.participants.len()
    }

    /// DNs holding write intents — the set that decides 1PC vs 2PC.
    pub fn write_participants(&self) -> usize {
        self.write_dns.len()
    }

    /// Pin the routing epoch captured when a statement was routed to
    /// `table` (a shard table). At commit every pinned epoch is validated
    /// against the coordinator's fence; a re-homed partition fails the
    /// check and the transaction aborts retryably. The first pin per
    /// table wins — later re-routes of the same partition inside one
    /// transaction must not weaken the check.
    pub fn pin_epoch(&mut self, table: TableId, epoch: u64) -> Result<()> {
        for (t, _) in &self.pins[..self.pins_len] {
            if *t == table {
                return Ok(());
            }
        }
        if self.pins_len == MAX_TOUCHED {
            return Err(Error::invalid("too many pinned partitions in one transaction"));
        }
        self.pins[self.pins_len] = (table, epoch);
        self.pins_len += 1;
        Ok(())
    }

    /// Epoch pinned for `table`, or 0 when the driver routed unfenced.
    fn pinned_epoch(&self, table: TableId) -> u64 {
        for (t, e) in &self.pins[..self.pins_len] {
            if *t == table {
                return *e;
            }
        }
        0
    }

    /// Record a write-touched partition in the fixed-size set.
    // lint:hotpath
    fn note_touch(&mut self, dn: NodeId, table: TableId) {
        for t in &self.touched[..self.touched_len] {
            if t.table == table && t.dn == dn {
                return;
            }
        }
        if self.touched_len == MAX_TOUCHED {
            self.touched_overflow = true;
            return;
        }
        self.touched[self.touched_len] =
            PartTouch { table, dn, epoch: self.pinned_epoch(table) };
        self.touched_len += 1;
    }

    /// Stream the write-partition set to the access observer (if any).
    // lint:hotpath
    fn observe(&self, one_phase: bool) {
        if self.touched_overflow {
            return;
        }
        if let Some(obs) = &self.coord.observer {
            obs.observe_commit(&self.touched[..self.touched_len], one_phase);
        }
    }

    /// Validate every pinned routing epoch and enter the per-shard commit
    /// gates. The guards must stay alive until the commit outcome is
    /// decided and phase-two messages are handed to the fabric, so a
    /// cutover waits for us. Returns a retryable error when a pinned
    /// partition was frozen or re-homed since it was routed.
    fn enter_fence(&self) -> Result<[CommitGuard; MAX_TOUCHED]> {
        let mut guards: [CommitGuard; MAX_TOUCHED] =
            std::array::from_fn(|_| CommitGuard::none());
        let Some(fence) = &self.coord.fence else { return Ok(guards) };
        if self.coord.mutations.skip_routing_epoch_fence {
            return Ok(guards);
        }
        for (i, (table, epoch)) in self.pins[..self.pins_len].iter().enumerate() {
            // On error, already-entered gates release via Drop.
            guards[i] = fence.enter_commit(*table, *epoch)?;
        }
        Ok(guards)
    }

    fn call(&self, dn: NodeId, msg: TxnMsg) -> Result<TxnMsg> {
        self.coord.net.call(self.coord.me, dn, msg)
    }

    /// Execute a write on `dn` (step ②).
    pub fn write(
        &mut self,
        dn: NodeId,
        table: TableId,
        key: Key,
        op: WireWriteOp,
    ) -> Result<()> {
        self.participants.insert(dn);
        self.write_dns.insert(dn);
        self.note_touch(dn, table);
        match self.call(
            dn,
            TxnMsg::Write { trx: self.trx, snapshot_ts: self.snapshot_ts.raw(), table, key, op },
        )? {
            TxnMsg::Ok => Ok(()),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Snapshot point read on `dn`.
    pub fn read(&mut self, dn: NodeId, table: TableId, key: &Key) -> Result<Option<Row>> {
        self.participants.insert(dn);
        match self.call(
            dn,
            TxnMsg::Read {
                trx: self.trx,
                snapshot_ts: self.snapshot_ts.raw(),
                table,
                key: key.clone(),
            },
        )? {
            TxnMsg::RowResult(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Snapshot range scan on `dn`.
    pub fn scan(
        &mut self,
        dn: NodeId,
        table: TableId,
        lower: Option<Key>,
        upper: Option<Key>,
    ) -> Result<Vec<(Key, Row)>> {
        self.participants.insert(dn);
        match self.call(
            dn,
            TxnMsg::Scan {
                trx: self.trx,
                snapshot_ts: self.snapshot_ts.raw(),
                table,
                lower,
                upper,
            },
        )? {
            TxnMsg::Rows(r) => Ok(r),
            TxnMsg::Failed(e) => Err(e),
            other => Err(Error::execution(format!("unexpected reply {other:?}"))),
        }
    }

    /// Commit. The decision is keyed off the *write* set: DNs that only
    /// served snapshot reads hold no votes under SI, so they are released
    /// up front and never pay a Prepare. A single write DN → one-phase
    /// (the participant's `ClockAdvance` is the commit timestamp), even
    /// when reads touched other DNs. Multiple write DNs → full 2PC with
    /// parallel prepares, `commit_ts = max(prepare_ts)` and one batched
    /// `ClockUpdate` at the coordinator (the §IV contention optimization).
    /// Returns the commit timestamp.
    ///
    /// With a decision log configured, the commit decision is recorded at
    /// the arbiter DN *before* phase two, making the outcome recoverable by
    /// in-doubt participants if this coordinator dies. An `Err(Timeout)`
    /// from this method means the outcome is IN DOUBT — the transaction may
    /// yet commit or abort, settled by the participants' resolvers against
    /// the decision log. Any other error means the transaction aborted.
    pub fn commit(mut self) -> Result<u64> {
        self.finished = true;
        // Release DNs that only served reads: their snapshot reads are
        // already consistent and they hold no write intents, so they play
        // no part in the commit decision. (The engine records no history
        // event for aborting a writeless transaction.)
        for &dn in &self.participants {
            if !self.write_dns.contains(&dn) {
                let _ = self.coord.net.post(self.coord.me, dn, TxnMsg::Abort { trx: self.trx });
            }
        }
        let parts: Vec<NodeId> = self.write_dns.iter().copied().collect();
        match parts.len() {
            0 => {
                let commit_ts = self.snapshot_ts.raw(); // wrote-nothing transaction
                self.absorb_and_record_commit(commit_ts, false);
                Ok(commit_ts)
            }
            1 => {
                let dn = parts[0];
                let _fence = match self.enter_fence() {
                    Ok(guards) => guards,
                    Err(e) => {
                        self.send_aborts(&parts);
                        self.record_abort();
                        return Err(e);
                    }
                };
                // CommitLocal is idempotent at the participant (a duplicate
                // returns the recorded commit_ts), so it is safe to retry.
                match self.coord.call_retry(dn, TxnMsg::CommitLocal { trx: self.trx })? {
                    TxnMsg::Committed { commit_ts } => {
                        self.coord.metrics.one_phase_commits.inc();
                        self.observe(true);
                        // Absorb the participant's timestamp so later
                        // transactions from this CN observe it.
                        self.absorb_and_record_commit(commit_ts, true);
                        Ok(commit_ts)
                    }
                    TxnMsg::Failed(e) => {
                        self.record_abort();
                        Err(e)
                    }
                    other => Err(Error::execution(format!("unexpected reply {other:?}"))),
                }
            }
            _ => {
                // The drop_participant mutation silently forgets one DN:
                // it gets neither a Prepare nor a phase-two Commit, while
                // the rest of the transaction commits normally.
                let parts: Vec<NodeId> = match self.coord.mutations.drop_participant {
                    Some(victim) if parts.len() > 1 => {
                        parts.iter().copied().filter(|dn| *dn != victim).collect()
                    }
                    _ => parts,
                };
                // Routing-epoch fence: validate before paying for prepares,
                // and hold the commit gates until phase two is handed to
                // the fabric so a cutover waits for this commit.
                let _fence = match self.enter_fence() {
                    Ok(guards) => guards,
                    Err(e) => {
                        self.send_aborts(&parts);
                        self.record_abort();
                        return Err(e);
                    }
                };
                // Phase one, in parallel across participants, with retries.
                let this = &self;
                let results: Vec<Result<TxnMsg>> = std::thread::scope(|s| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|&dn| {
                            s.spawn(move || {
                                this.coord.call_retry(
                                    dn,
                                    TxnMsg::Prepare {
                                        trx: this.trx,
                                        decision_node: this.coord.decision_node,
                                    },
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            // A panicked prepare worker is a failed prepare,
                            // not a coordinator crash: fold it into the
                            // abort path below instead of unwinding.
                            h.join().unwrap_or_else(|_| {
                                Err(Error::execution("prepare worker panicked"))
                            })
                        })
                        .collect()
                });
                let mut prepare_ts = Vec::with_capacity(parts.len());
                let mut failure: Option<Error> = None;
                for r in results {
                    match r {
                        Ok(TxnMsg::Prepared { prepare_ts: ts }) => prepare_ts.push(ts),
                        Ok(TxnMsg::Failed(e)) => {
                            failure = Some(Error::PrepareRejected {
                                participant: "dn".into(),
                                reason: e.to_string(),
                            })
                        }
                        Ok(other) => {
                            failure =
                                Some(Error::execution(format!("unexpected reply {other:?}")))
                        }
                        Err(e) => failure = Some(e),
                    }
                }
                if let Some(e) = failure {
                    // No commit decision was (or ever will be) logged, so
                    // aborting is sound even if some prepares timed out
                    // with the participant actually PREPARED: its resolver
                    // will reach the same verdict via presumed abort. Best
                    // effort: record the abort so resolvers find it sooner.
                    if let Some(arbiter) = self.coord.decision_node {
                        let _ = self.coord.net.call(
                            self.coord.me,
                            arbiter,
                            TxnMsg::LogDecision { trx: self.trx, decision: Decision::Abort },
                        );
                    }
                    self.send_aborts(&parts);
                    self.record_abort();
                    return Err(e);
                }
                // Steps ⑤/⑥: commit_ts = max; a single batched ClockUpdate.
                let commit_ts = prepare_ts.iter().copied().max().ok_or_else(|| {
                    Error::execution("commit decision with no prepared participants")
                })?;
                self.coord.hit_failpoint("txn.before_decision");
                if let Some(arbiter) = self.coord.decision_node {
                    match self.coord.call_retry(
                        arbiter,
                        TxnMsg::LogDecision { trx: self.trx, decision: Decision::Commit(commit_ts) },
                    ) {
                        Ok(TxnMsg::DecisionIs { decision: Decision::Commit(_) }) => {}
                        Ok(TxnMsg::DecisionIs { decision: Decision::Abort }) => {
                            // A resolver presumed abort before our decision
                            // landed; the log is authoritative.
                            self.send_aborts(&parts);
                            self.record_abort();
                            return Err(Error::TxnAborted {
                                reason: "presumed abort already on record".into(),
                            });
                        }
                        Ok(other) => {
                            self.send_aborts(&parts);
                            self.record_abort();
                            return Err(Error::execution(format!("unexpected reply {other:?}")));
                        }
                        Err(e) => {
                            // IN DOUBT: the decision may or may not be on
                            // record. Crucially we must NOT send aborts —
                            // the arbiter might have recorded Commit and
                            // acked into a lost reply. The participants'
                            // resolvers settle it from the log.
                            return Err(Error::Timeout {
                                what: format!("logging decision for {}: {e}", self.trx),
                            });
                        }
                    }
                }
                self.coord.hit_failpoint("txn.after_decision");
                // Phase two is asynchronous: post and return. New readers
                // hitting PREPARED versions wait for the decision, so this
                // is safe under HLC-SI (§IV case 2).
                for &dn in &parts {
                    let _ = self
                        .coord
                        .net
                        .post(self.coord.me, dn, TxnMsg::Commit { trx: self.trx, commit_ts });
                }
                self.coord.metrics.two_phase_commits.inc();
                self.observe(false);
                // Step ⑥: a single batched ClockUpdate, paired atomically
                // with the commit record.
                self.absorb_and_record_commit(commit_ts, true);
                Ok(commit_ts)
            }
        }
    }

    /// Abort everywhere.
    pub fn abort(mut self) {
        self.finished = true;
        let parts: Vec<NodeId> = self.participants.iter().copied().collect();
        self.send_aborts(&parts);
        self.record_abort();
    }

    fn send_aborts(&self, parts: &[NodeId]) {
        for &dn in parts {
            let _ = self.coord.net.post(self.coord.me, dn, TxnMsg::Abort { trx: self.trx });
        }
    }

    /// Absorb `commit_ts` into the CN clock (step ⑥, unless this is a
    /// wrote-nothing commit with nothing to absorb) and record the global
    /// commit outcome, as ONE atomic step relative to `begin`'s
    /// (ClockNow, Begin-record) pair — see `Coordinator::session_order`.
    fn absorb_and_record_commit(&self, commit_ts: u64, absorb: bool) {
        let _order =
            self.coord.recorder.is_some().then(|| self.coord.session_order.lock());
        if absorb && !self.coord.mutations.skip_commit_clock_update {
            self.coord.clock.update(HlcTimestamp::from_raw(commit_ts));
        }
        self.record_commit(commit_ts);
    }

    /// Record the global commit outcome at the coordinator.
    fn record_commit(&self, commit_ts: u64) {
        self.coord
            .record(TxnEvent::Commit { trx: self.trx, node: self.coord.me, commit_ts });
    }

    /// Record the global abort outcome at the coordinator.
    fn record_abort(&self) {
        self.coord.record(TxnEvent::Abort { trx: self.trx, node: self.coord.me });
    }
}

impl Drop for DistTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let parts: Vec<NodeId> = self.participants.iter().copied().collect();
            self.send_aborts(&parts);
            self.record_abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, TenantId, Value};
    use polardbx_hlc::{Hlc, TestClock};
    use polardbx_simnet::{Handler, LatencyMatrix};
    use polardbx_storage::StorageEngine;
    use std::time::Duration;

    use crate::participant::DnService;

    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64, v: i64) -> Row {
        Row::new(vec![Value::Int(n), Value::Int(v)])
    }

    const T: TableId = TableId(1);

    /// Three DNs in three DCs plus one CN coordinator, all on HLC clocks.
    fn cluster() -> (Arc<SimNet<TxnMsg>>, Coordinator, Vec<Arc<DnService>>) {
        let net = SimNet::new(LatencyMatrix::zero());
        let mut dns = Vec::new();
        for i in 1..=3u64 {
            let clock = Hlc::with_physical(TestClock::at(1000 * i)); // skewed clocks!
            let engine = StorageEngine::in_memory();
            engine.create_table(T, TenantId(1));
            let dn = DnService::new(NodeId(i), engine, clock);
            net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
            dns.push(dn);
        }
        net.register(NodeId(9), DcId(1), Arc::new(CnStub));
        let coord = Coordinator::new(
            NodeId(9),
            Arc::clone(&net),
            Hlc::with_physical(TestClock::at(500)),
            Arc::new(IdGenerator::new()),
        );
        (net, coord, dns)
    }

    fn await_visible(dn: &DnService, k: &Key, timeout: Duration) -> Option<Row> {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if let Ok(Some(r)) = dn.engine.read(T, k, u64::MAX, None) {
                return Some(r);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn cross_shard_transaction_commits_atomically() {
        let (_net, coord, dns) = cluster();
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 100))).unwrap();
        txn.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 200))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 300))).unwrap();
        let commit_ts = txn.commit().unwrap();
        assert!(commit_ts > 0);
        // Asynchronous phase two: rows land shortly after.
        assert_eq!(await_visible(&dns[0], &key(1), Duration::from_secs(1)), Some(row(1, 100)));
        assert_eq!(await_visible(&dns[1], &key(2), Duration::from_secs(1)), Some(row(2, 200)));
        assert_eq!(await_visible(&dns[2], &key(3), Duration::from_secs(1)), Some(row(3, 300)));
    }

    #[test]
    fn single_participant_uses_one_phase() {
        let (net, coord, dns) = cluster();
        let before = net.stats.snapshot().0;
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.commit().unwrap();
        let after = net.stats.snapshot().0;
        // Write + CommitLocal = 2 sync calls; a 2PC would need 3+.
        assert_eq!(after - before, 2);
        assert!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap().is_some());
    }

    #[test]
    fn commit_ts_is_max_of_prepares_and_coordinator_learns_it() {
        let (_net, coord, _dns) = cluster();
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 3))).unwrap();
        let commit_ts = txn.commit().unwrap();
        // DN3's clock started at pt=3000, far ahead of the others; the max
        // rule means commit_ts reflects it.
        assert!(HlcTimestamp::from_raw(commit_ts).pt() >= 3000);
        // And the coordinator's clock absorbed it (batched ClockUpdate).
        assert!(coord.clock().now().raw() >= commit_ts);
    }

    #[test]
    fn snapshot_isolation_across_shards() {
        let (_net, coord, dns) = cluster();
        // Seed two rows on different DNs.
        let mut seed = coord.begin();
        seed.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 50))).unwrap();
        seed.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 50))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[0], &key(1), Duration::from_secs(1)).unwrap();
        await_visible(&dns[1], &key(2), Duration::from_secs(1)).unwrap();

        // Reader takes its snapshot BEFORE the transfer commits.
        let mut reader = coord.begin();
        let r1_before = reader.read(NodeId(1), T, &key(1)).unwrap().unwrap();

        // A transfer moves 10 from key1 (DN1) to key2 (DN2).
        let mut transfer = coord.begin();
        transfer.write(NodeId(1), T, key(1), WireWriteOp::Update(row(1, 40))).unwrap();
        transfer.write(NodeId(2), T, key(2), WireWriteOp::Update(row(2, 60))).unwrap();
        transfer.commit().unwrap();
        await_visible(&dns[1], &key(2), Duration::from_secs(1)).unwrap();

        // The reader must still see the OLD value of key2: its snapshot
        // predates the transfer's commit_ts. (No fractured read.)
        let r2 = reader.read(NodeId(2), T, &key(2)).unwrap().unwrap();
        assert_eq!(r1_before.get(1).unwrap().as_int().unwrap(), 50);
        assert_eq!(r2.get(1).unwrap().as_int().unwrap(), 50, "fractured read detected");
        reader.abort();
    }

    #[test]
    fn prepare_failure_aborts_cleanly() {
        let (_net, coord, dns) = cluster();
        // Seed a row, then open a conflicting write to force prepare-time
        // validation failure... conflicts surface at write time in this
        // engine, so emulate participant failure by writing a duplicate.
        let mut seed = coord.begin();
        seed.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[0], &key(1), Duration::from_secs(1)).unwrap();

        let mut txn = coord.begin();
        let err = txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 2))).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
        txn.abort();
        // The engine holds no leaked transaction state.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!dns[0].engine.has_active_txns());
    }

    #[test]
    fn write_conflict_propagates_to_coordinator() {
        let (_net, coord, _dns) = cluster();
        let mut t1 = coord.begin();
        let mut t2 = coord.begin();
        t1.write(NodeId(1), T, key(7), WireWriteOp::Update(row(7, 1))).unwrap();
        let err = t2.write(NodeId(1), T, key(7), WireWriteOp::Update(row(7, 2))).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
        t2.abort();
        t1.commit().unwrap();
    }

    #[test]
    fn dropped_transaction_auto_aborts() {
        let (_net, coord, dns) = cluster();
        {
            let mut txn = coord.begin();
            txn.write(NodeId(1), T, key(42), WireWriteOp::Insert(row(42, 1))).unwrap();
            // Dropped without commit.
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(!dns[0].engine.has_active_txns(), "drop must trigger abort");
        assert_eq!(dns[0].engine.read(T, &key(42), u64::MAX, None).unwrap(), None);
    }

    #[test]
    fn lost_commit_local_is_retried_idempotently() {
        use polardbx_simnet::{FaultPlan, OneShot, OneShotFault};
        let (net, coord, dns) = cluster();
        let coord = coord.with_config(crate::config::TxnConfig {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        });
        // Drop the CN's 2nd send: the write is send 1, CommitLocal is send
        // 2. The retry (send 3) must succeed and ack the SAME commit_ts the
        // participant already decided.
        net.set_fault_plan(FaultPlan::new(1).with_one_shot(OneShot {
            from: NodeId(9),
            after_sends: 2,
            fault: OneShotFault::DropNext,
        }));
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        let commit_ts = txn.commit().unwrap();
        assert!(commit_ts > 0);
        assert_eq!(coord.metrics().rpc_retries.get(), 1);
        assert_eq!(dns[0].metrics.duplicate_msgs.get(), 0, "first CommitLocal never arrived");
        assert!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap().is_some());
    }

    #[test]
    fn commit_records_decision_at_arbiter_before_phase_two() {
        let (_net, coord, dns) = cluster();
        let coord = coord.with_decision_log(NodeId(2));
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 3))).unwrap();
        let commit_ts = txn.commit().unwrap();
        assert_eq!(
            dns[1].recorded_decision(TrxId(1)),
            Some(crate::msg::Decision::Commit(commit_ts)),
            "arbiter must hold the commit decision"
        );
        assert_eq!(await_visible(&dns[0], &key(1), Duration::from_secs(1)), Some(row(1, 1)));
    }

    #[test]
    fn unreachable_arbiter_leaves_outcome_in_doubt_without_aborts() {
        let (net, coord, dns) = cluster();
        let coord = coord
            .with_decision_log(NodeId(2))
            .with_config(crate::config::TxnConfig {
                max_attempts: 3,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
            });
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 3))).unwrap();
        // The arbiter dies after the statements but before commit: the
        // decision cannot be logged, so the outcome is in doubt — the
        // coordinator must NOT unilaterally abort (the log write might have
        // landed into a lost reply).
        net.crash(NodeId(2));
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }), "in-doubt surfaces as timeout: {err:?}");
        // Participants are still PREPARED: resolution belongs to their
        // resolvers, not to this coordinator.
        assert!(matches!(
            dns[0].engine.txn_state(TrxId(1)),
            Some(polardbx_storage::TxnState::Prepared { .. })
        ));
        assert!(matches!(
            dns[2].engine.txn_state(TrxId(1)),
            Some(polardbx_storage::TxnState::Prepared { .. })
        ));
        net.restart(NodeId(2));
    }

    #[test]
    fn prepare_failure_logs_abort_decision() {
        let (_net, coord, dns) = cluster();
        let coord = coord.with_decision_log(NodeId(2));
        // Seed a row so a second insert of the same key fails at write time
        // on DN1... write-time failures abort before prepare; to exercise a
        // prepare-time failure, abort the trx on DN3 behind the
        // coordinator's back so its Prepare is rejected.
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 3))).unwrap();
        let trx = txn.id();
        dns[2].handle(NodeId(8), TxnMsg::Abort { trx });
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, Error::PrepareRejected { .. }), "{err:?}");
        assert_eq!(
            dns[1].recorded_decision(trx),
            Some(crate::msg::Decision::Abort),
            "failed prepare must record abort for future resolvers"
        );
        // Everything rolled back.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!dns[0].engine.has_active_txns());
        assert!(!dns[2].engine.has_active_txns());
    }

    #[test]
    fn failpoints_fire_in_order() {
        use parking_lot::Mutex;
        let (_net, coord, _dns) = cluster();
        let seen: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let coord = coord.with_failpoint(Arc::new(move |p| seen2.lock().push(p)));
        let mut txn = coord.begin();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 2))).unwrap();
        txn.commit().unwrap();
        assert_eq!(*seen.lock(), vec!["txn.before_decision", "txn.after_decision"]);
    }

    fn await_drained(dn: &DnService, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if !dn.engine.has_active_txns() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn remote_reads_do_not_force_two_phase() {
        let (net, coord, dns) = cluster();
        let mut seed = coord.begin();
        seed.write(NodeId(2), T, key(2), WireWriteOp::Insert(row(2, 20))).unwrap();
        seed.write(NodeId(3), T, key(3), WireWriteOp::Insert(row(3, 30))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[1], &key(2), Duration::from_secs(1)).unwrap();
        await_visible(&dns[2], &key(3), Duration::from_secs(1)).unwrap();

        let before = net.stats.snapshot().0;
        let base = coord.metrics().one_phase_commits.get();
        let mut txn = coord.begin();
        txn.read(NodeId(2), T, &key(2)).unwrap();
        txn.read(NodeId(3), T, &key(3)).unwrap();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        assert_eq!(txn.participants(), 3);
        assert_eq!(txn.write_participants(), 1);
        txn.commit().unwrap();
        // 2 reads + 1 write + CommitLocal = 4 sync calls; a 2PC over the
        // read DNs would need prepares on top.
        assert_eq!(net.stats.snapshot().0 - before, 4);
        assert_eq!(coord.metrics().one_phase_commits.get(), base + 1);
        assert!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap().is_some());
        // The read-only participants were released (posted aborts).
        assert!(await_drained(&dns[1], Duration::from_secs(1)));
        assert!(await_drained(&dns[2], Duration::from_secs(1)));
    }

    #[test]
    fn read_only_commit_pays_no_commit_rpc() {
        let (net, coord, dns) = cluster();
        let mut seed = coord.begin();
        seed.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[0], &key(1), Duration::from_secs(1)).unwrap();

        let before = net.stats.snapshot().0;
        let mut txn = coord.begin();
        txn.read(NodeId(1), T, &key(1)).unwrap();
        txn.read(NodeId(2), T, &key(2)).unwrap();
        let ts = txn.commit().unwrap();
        assert!(ts > 0);
        assert_eq!(net.stats.snapshot().0 - before, 2, "reads only, no commit RPCs");
        assert!(await_drained(&dns[0], Duration::from_secs(1)));
        assert!(await_drained(&dns[1], Duration::from_secs(1)));
    }

    struct TestFence {
        epoch: std::sync::atomic::AtomicU64,
        gate: Arc<std::sync::atomic::AtomicU64>,
    }

    impl crate::route::RoutingFence for TestFence {
        fn epoch_of(&self, _table: TableId) -> u64 {
            self.epoch.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn enter_commit(
            &self,
            table: TableId,
            captured: u64,
        ) -> polardbx_common::Result<crate::route::CommitGuard> {
            if captured != self.epoch.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(Error::TxnAborted {
                    reason: format!("routing epoch moved for {table:?}"),
                });
            }
            Ok(crate::route::CommitGuard::holding(Arc::clone(&self.gate)))
        }
    }

    fn test_fence() -> Arc<TestFence> {
        Arc::new(TestFence {
            epoch: std::sync::atomic::AtomicU64::new(0),
            gate: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    #[test]
    fn stale_routing_epoch_aborts_retryably() {
        let (_net, coord, dns) = cluster();
        let fence = test_fence();
        let coord = coord.with_fence(Arc::clone(&fence) as _);
        let mut txn = coord.begin();
        txn.pin_epoch(T, 0).unwrap();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        // The partition re-homes while the transaction is in flight.
        fence.epoch.store(1, std::sync::atomic::Ordering::SeqCst);
        let err = txn.commit().unwrap_err();
        assert!(err.is_retryable(), "fence abort must be retryable: {err:?}");
        assert!(await_drained(&dns[0], Duration::from_secs(1)), "abort must clean up");
        assert_eq!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap(), None);
        assert_eq!(
            fence.gate.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "no guard may leak"
        );
    }

    #[test]
    fn fence_skip_mutation_commits_despite_stale_epoch() {
        let (_net, coord, dns) = cluster();
        let fence = test_fence();
        let coord = coord.with_fence(Arc::clone(&fence) as _).with_mutations(
            ProtocolMutations { skip_routing_epoch_fence: true, ..Default::default() },
        );
        let mut txn = coord.begin();
        txn.pin_epoch(T, 0).unwrap();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        fence.epoch.store(1, std::sync::atomic::Ordering::SeqCst);
        txn.commit().unwrap();
        assert!(dns[0].engine.read(T, &key(1), u64::MAX, None).unwrap().is_some());
    }

    #[test]
    fn fenced_commit_holds_the_gate() {
        let (_net, coord, _dns) = cluster();
        let fence = test_fence();
        let coord = coord.with_fence(Arc::clone(&fence) as _);
        let mut txn = coord.begin();
        txn.pin_epoch(T, 0).unwrap();
        txn.write(NodeId(1), T, key(1), WireWriteOp::Insert(row(1, 1))).unwrap();
        txn.commit().unwrap();
        assert_eq!(
            fence.gate.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "gate released after commit"
        );
    }

    #[test]
    fn autocommit_read() {
        let (_net, coord, dns) = cluster();
        let mut seed = coord.begin();
        seed.write(NodeId(2), T, key(5), WireWriteOp::Insert(row(5, 9))).unwrap();
        seed.commit().unwrap();
        await_visible(&dns[1], &key(5), Duration::from_secs(1)).unwrap();
        // Autocommit read may need to wait until the CN clock passes the
        // commit (it does: commit updated the coordinator clock).
        let got = coord.read_autocommit(NodeId(2), T, &key(5)).unwrap();
        assert_eq!(got, Some(row(5, 9)));
    }
}
