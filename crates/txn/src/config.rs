//! Tunables for 2PC under an unreliable fabric: coordinator RPC retries and
//! participant-side in-doubt resolution.

use std::time::Duration;

/// Coordinator retry policy for commit-path RPCs (Prepare, CommitLocal,
/// LogDecision). Backoff is exponential, capped, and deliberately
/// jitter-free: under a seeded fault plan the retry schedule must replay
/// identically run to run.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    /// Total attempts per RPC (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub backoff_cap: Duration,
}

impl Default for TxnConfig {
    fn default() -> TxnConfig {
        TxnConfig {
            max_attempts: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl TxnConfig {
    /// Backoff to sleep after the `attempt`-th failure (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base.saturating_mul(1u32 << exp).min(self.backoff_cap)
    }
}

/// Participant resolver policy: how long a PREPARED transaction may sit
/// undecided before the participant asks the arbiter, and how long an
/// ACTIVE transaction may sit idle before it is presumed abandoned (its
/// coordinator died before prepare, so a local abort is always safe).
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Sweep period of the resolver thread.
    pub interval: Duration,
    /// A PREPARED transaction older than this is in doubt.
    pub in_doubt_after: Duration,
    /// An ACTIVE transaction older than this is abandoned. Must comfortably
    /// exceed the longest legitimate statement-to-prepare gap.
    pub abandon_active_after: Duration,
}

impl Default for ResolverConfig {
    fn default() -> ResolverConfig {
        ResolverConfig {
            interval: Duration::from_millis(25),
            in_doubt_after: Duration::from_millis(100),
            abandon_active_after: Duration::from_millis(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let c = TxnConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
        };
        assert_eq!(c.backoff(1), Duration::from_millis(2));
        assert_eq!(c.backoff(2), Duration::from_millis(4));
        assert_eq!(c.backoff(3), Duration::from_millis(8));
        assert_eq!(c.backoff(4), Duration::from_millis(10), "capped");
        assert_eq!(c.backoff(30), Duration::from_millis(10), "no overflow");
    }
}
