//! Snapshot-isolation invariant checking: the bank-transfer harness.
//!
//! The classic SI litmus test: `n` accounts with a conserved total balance.
//! Transfers move money between accounts on *different DNs* inside one
//! distributed transaction; auditors read every account under a single
//! snapshot. Under snapshot isolation every audit must observe the exact
//! conserved total — a fractured read (seeing the debit but not the credit)
//! is precisely the anomaly HLC-SI's §IV proof rules out.

use std::sync::Arc;

use polardbx_common::{Key, NodeId, Result, Row, TableId, Value};

use crate::coordinator::Coordinator;
use crate::msg::WireWriteOp;

/// Account layout helper: account `i` lives on `dns[i % dns.len()]`.
pub struct BankHarness {
    /// Table holding accounts (schema: id, balance).
    pub table: TableId,
    /// Participant DNs.
    pub dns: Vec<NodeId>,
    /// Number of accounts.
    pub accounts: usize,
    /// Initial per-account balance.
    pub initial: i64,
}

impl BankHarness {
    /// Key of account `i`.
    pub fn key(&self, i: usize) -> Key {
        Key::encode(&[Value::Int(i as i64)])
    }

    /// DN hosting account `i`.
    pub fn dn_of(&self, i: usize) -> NodeId {
        self.dns[i % self.dns.len()]
    }

    /// The conserved total.
    pub fn expected_total(&self) -> i64 {
        self.accounts as i64 * self.initial
    }

    /// Create all accounts (one transaction per account to spread load).
    pub fn seed(&self, coord: &Coordinator) -> Result<()> {
        for i in 0..self.accounts {
            let mut txn = coord.begin();
            txn.write(
                self.dn_of(i),
                self.table,
                self.key(i),
                WireWriteOp::Insert(Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(self.initial),
                ])),
            )?;
            txn.commit()?;
        }
        Ok(())
    }

    /// Transfer `amount` from account `a` to account `b` in one distributed
    /// transaction. Returns Err on conflict (caller may retry).
    pub fn transfer(&self, coord: &Coordinator, a: usize, b: usize, amount: i64) -> Result<()> {
        let mut txn = coord.begin();
        let ra = txn
            .read(self.dn_of(a), self.table, &self.key(a))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let rb = txn
            .read(self.dn_of(b), self.table, &self.key(b))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let ba = ra.get(1)?.as_int()?;
        let bb = rb.get(1)?.as_int()?;
        txn.write(
            self.dn_of(a),
            self.table,
            self.key(a),
            WireWriteOp::Update(Row::new(vec![Value::Int(a as i64), Value::Int(ba - amount)])),
        )?;
        txn.write(
            self.dn_of(b),
            self.table,
            self.key(b),
            WireWriteOp::Update(Row::new(vec![Value::Int(b as i64), Value::Int(bb + amount)])),
        )?;
        txn.commit()?;
        Ok(())
    }

    /// Audit: read every account under one snapshot and return the total.
    /// May return Err if a read times out.
    pub fn audit(&self, coord: &Coordinator) -> Result<i64> {
        let mut txn = coord.begin();
        let mut total = 0i64;
        for i in 0..self.accounts {
            let row = txn
                .read(self.dn_of(i), self.table, &self.key(i))?
                .ok_or(polardbx_common::Error::KeyNotFound)?;
            total += row.get(1)?.as_int()?;
        }
        txn.abort(); // read-only; release
        Ok(total)
    }
}

/// Run a concurrent transfer/audit stress and return the list of audit
/// totals observed (all must equal `expected_total` under SI).
pub fn stress(
    harness: Arc<BankHarness>,
    coords: Vec<Arc<Coordinator>>,
    transfer_threads: usize,
    transfers_per_thread: usize,
    audits: usize,
) -> Vec<i64> {
    stress_seeded(harness, coords, transfer_threads, transfers_per_thread, audits, 0xBA2C_0000)
}

/// [`stress`] with an explicit base seed (per-thread streams derive from
/// it), so suites can plumb `POLARDBX_TEST_SEED` through and replay a
/// failing interleaving's transfer choices.
pub fn stress_seeded(
    harness: Arc<BankHarness>,
    coords: Vec<Arc<Coordinator>>,
    transfer_threads: usize,
    transfers_per_thread: usize,
    audits: usize,
    base_seed: u64,
) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let totals = parking_lot::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..transfer_threads {
            let coord = Arc::clone(&coords[t % coords.len()]);
            let h = Arc::clone(&harness);
            s.spawn(move || {
                // Seeded per thread: the bank checker must replay identically
                // under the same seed (determinism lint).
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(base_seed.wrapping_add(t as u64));
                for _ in 0..transfers_per_thread {
                    let a = rng.gen_range(0..h.accounts);
                    let mut b = rng.gen_range(0..h.accounts);
                    if a == b {
                        b = (b + 1) % h.accounts;
                    }
                    // Conflicts are expected; retry a few times then move on.
                    for _ in 0..3 {
                        match h.transfer(&coord, a, b, 1) {
                            Ok(()) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(_) => break,
                        }
                    }
                }
            });
        }
        for a in 0..audits {
            let coord = Arc::clone(&coords[a % coords.len()]);
            let h = Arc::clone(&harness);
            let totals = &totals;
            s.spawn(move || {
                for _ in 0..4 {
                    if let Ok(total) = h.audit(&coord) {
                        totals.lock().push(total);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
    });
    totals.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, IdGenerator, TenantId};
    use polardbx_hlc::Hlc;
    use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
    use polardbx_storage::StorageEngine;

    use crate::msg::TxnMsg;
    use crate::participant::DnService;

    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }

    const T: TableId = TableId(1);

    fn cluster(n_dn: u64, n_cn: u64) -> (Arc<SimNet<TxnMsg>>, Vec<Arc<Coordinator>>, Vec<NodeId>) {
        let net = SimNet::new(LatencyMatrix::zero());
        let mut dns = Vec::new();
        for i in 1..=n_dn {
            let engine = StorageEngine::in_memory();
            engine.create_table(T, TenantId(1));
            let dn = DnService::new(NodeId(i), engine, Hlc::new());
            net.register(NodeId(i), DcId(1 + i % 3), dn);
            dns.push(NodeId(i));
        }
        let ids = Arc::new(IdGenerator::new());
        let mut coords = Vec::new();
        for c in 0..n_cn {
            let me = NodeId(100 + c);
            net.register(me, DcId(1 + c % 3), Arc::new(CnStub));
            coords.push(Arc::new(Coordinator::new(
                me,
                Arc::clone(&net),
                Hlc::new(),
                Arc::clone(&ids),
            )));
        }
        (net, coords, dns)
    }

    #[test]
    fn audits_always_see_conserved_total() {
        let (_net, coords, dns) = cluster(3, 2);
        let harness = Arc::new(BankHarness { table: T, dns, accounts: 12, initial: 100 });
        harness.seed(&coords[0]).unwrap();
        // HLC gives causality only through message exchange: coords[1] never
        // talked to coords[0], so within the same millisecond its snapshot
        // (lc=0) can predate seed commits whose lc was bumped. One wall-clock
        // tick restores visibility — wait it out before the quiescent audit.
        std::thread::sleep(std::time::Duration::from_millis(3));
        assert_eq!(harness.audit(&coords[1]).unwrap(), harness.expected_total());

        let totals = stress(Arc::clone(&harness), coords.clone(), 4, 25, 3);
        assert!(!totals.is_empty(), "audits must complete");
        for t in &totals {
            assert_eq!(
                *t,
                harness.expected_total(),
                "snapshot isolation violated: audit saw {t}, expected {}",
                harness.expected_total()
            );
        }
        // Final state conserves the total too.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(harness.audit(&coords[0]).unwrap(), harness.expected_total());
    }

    #[test]
    fn transfer_moves_money() {
        let (_net, coords, dns) = cluster(2, 1);
        let harness = BankHarness { table: T, dns, accounts: 2, initial: 100 };
        harness.seed(&coords[0]).unwrap();
        harness.transfer(&coords[0], 0, 1, 30).unwrap();
        let mut txn = coords[0].begin();
        let a = txn.read(harness.dn_of(0), T, &harness.key(0)).unwrap().unwrap();
        let b = txn.read(harness.dn_of(1), T, &harness.key(1)).unwrap().unwrap();
        txn.abort();
        assert_eq!(a.get(1).unwrap().as_int().unwrap(), 70);
        assert_eq!(b.get(1).unwrap().as_int().unwrap(), 130);
    }
}
