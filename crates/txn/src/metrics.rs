//! Chaos observability: counters for retries, duplicate deliveries, and
//! in-doubt resolutions, built on [`polardbx_common::metrics::Counter`].

use polardbx_common::metrics::Counter;

/// Counters shared by coordinators and participants. One instance per node
/// (or per test) — hand the same `Arc` to a [`crate::Coordinator`] via
/// `with_metrics` to aggregate across roles.
#[derive(Debug, Default)]
pub struct TxnMetrics {
    /// Commit-path RPCs retried after a timeout or network error.
    pub rpc_retries: Counter,
    /// In-doubt PREPARED transactions resolved to COMMIT via the arbiter.
    pub in_doubt_commits: Counter,
    /// In-doubt PREPARED transactions resolved to ABORT via the arbiter.
    pub in_doubt_aborts: Counter,
    /// Presumed-abort records written by the arbiter on a query for a
    /// transaction whose coordinator never logged a decision.
    pub presumed_aborts: Counter,
    /// Duplicate Prepare/Commit/Abort deliveries absorbed idempotently.
    pub duplicate_msgs: Counter,
    /// Abandoned ACTIVE transactions expired by the resolver.
    pub expired_active: Counter,
    /// Commits taken down the one-phase `CommitLocal` path (all writes on
    /// one DN — whether by luck or by adaptive placement).
    pub one_phase_commits: Counter,
    /// Commits that paid full 2PC (writes spanned multiple DNs).
    pub two_phase_commits: Counter,
    /// Partition re-homes applied by the adaptive placer.
    pub rehomes_applied: Counter,
}

impl TxnMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> TxnMetrics {
        TxnMetrics::default()
    }

    /// One-line summary for harness output.
    pub fn report(&self) -> String {
        format!(
            "retries={} · in-doubt: commit={} abort={} presumed={} · dups={} · expired-active={} \
             · 1pc={} 2pc={} rehomes={}",
            self.rpc_retries.get(),
            self.in_doubt_commits.get(),
            self.in_doubt_aborts.get(),
            self.presumed_aborts.get(),
            self.duplicate_msgs.get(),
            self.expired_active.get(),
            self.one_phase_commits.get(),
            self.two_phase_commits.get(),
            self.rehomes_applied.get(),
        )
    }

    /// Fraction of commits that paid 2PC (0.0 when nothing committed).
    pub fn two_phase_fraction(&self) -> f64 {
        let one = self.one_phase_commits.get() as f64;
        let two = self.two_phase_commits.get() as f64;
        if one + two == 0.0 {
            0.0
        } else {
            two / (one + two)
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.rpc_retries.reset();
        self.in_doubt_commits.reset();
        self.in_doubt_aborts.reset();
        self.presumed_aborts.reset();
        self.duplicate_msgs.reset();
        self.expired_active.reset();
        self.one_phase_commits.reset();
        self.two_phase_commits.reset();
        self.rehomes_applied.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_and_reset() {
        let m = TxnMetrics::new();
        m.rpc_retries.add(2);
        m.presumed_aborts.inc();
        assert!(m.report().contains("retries=2"));
        assert!(m.report().contains("presumed=1"));
        m.reset();
        assert!(m.report().contains("retries=0"));
    }
}
