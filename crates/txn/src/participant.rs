//! The DN-side participant service.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::{NodeId, Result, TrxId};
use polardbx_hlc::{Clock, HlcTimestamp};
use polardbx_simnet::Handler;
use polardbx_storage::{StorageEngine, WriteOp};

use crate::msg::{TxnMsg, WireWriteOp};

/// A DN participant: storage engine + node clock, attached to the fabric.
pub struct DnService {
    /// Node id on the fabric.
    pub node: NodeId,
    /// The node's storage engine.
    pub engine: Arc<StorageEngine>,
    /// The node's clock (HLC, TSO client, or Clock-SI).
    pub clock: Arc<dyn Clock>,
    /// Transactions this participant has begun locally.
    started: Mutex<HashSet<TrxId>>,
}

impl DnService {
    /// Wrap an engine and a clock as a participant service.
    pub fn new(node: NodeId, engine: Arc<StorageEngine>, clock: Arc<dyn Clock>) -> Arc<DnService> {
        Arc::new(DnService { node, engine, clock, started: Mutex::new(HashSet::new()) })
    }

    /// Step ③ of Fig 4 — and the Clock-SI divergence point. HLC absorbs the
    /// incoming timestamp (`ClockUpdate`); Clock-SI has no causality
    /// propagation, so when the snapshot is ahead of the local physical
    /// clock the participant must *delay* the statement until its clock
    /// catches up (bounded by the configured worst-case skew).
    fn sync_snapshot(&self, snapshot_ts: u64) {
        if self.clock.causality_wait_millis() > 0 {
            let deadline = std::time::Instant::now()
                + Duration::from_millis(self.clock.causality_wait_millis() + 1);
            while self.clock.now().raw() < snapshot_ts {
                if std::time::Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        } else {
            self.clock.update(HlcTimestamp::from_raw(snapshot_ts));
        }
    }

    fn ensure_started(&self, trx: TrxId, snapshot_ts: u64) {
        if trx.raw() == 0 {
            return;
        }
        let mut started = self.started.lock();
        if started.insert(trx) {
            self.engine.begin(trx, snapshot_ts);
        }
    }

    fn finish(&self, trx: TrxId) {
        self.started.lock().remove(&trx);
    }

    fn do_write(
        &self,
        trx: TrxId,
        snapshot_ts: u64,
        table: polardbx_common::TableId,
        key: polardbx_common::Key,
        op: WireWriteOp,
    ) -> Result<()> {
        self.sync_snapshot(snapshot_ts);
        self.ensure_started(trx, snapshot_ts);
        let op = match op {
            WireWriteOp::Insert(row) => WriteOp::Insert(row),
            WireWriteOp::Update(row) => WriteOp::Update(row),
            WireWriteOp::Delete => WriteOp::Delete,
        };
        self.engine.write(trx, table, key, op)
    }
}

impl Handler<TxnMsg> for DnService {
    fn handle(&self, _from: NodeId, msg: TxnMsg) -> TxnMsg {
        match msg {
            TxnMsg::Write { trx, snapshot_ts, table, key, op } => {
                match self.do_write(trx, snapshot_ts, table, key, op) {
                    Ok(()) => TxnMsg::Ok,
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Read { trx, snapshot_ts, table, key } => {
                self.sync_snapshot(snapshot_ts);
                let me = (trx.raw() != 0).then(|| {
                    self.ensure_started(trx, snapshot_ts);
                    trx
                });
                match self.engine.read(table, &key, snapshot_ts, me) {
                    Ok(row) => TxnMsg::RowResult(row),
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Scan { trx, snapshot_ts, table, lower, upper } => {
                self.sync_snapshot(snapshot_ts);
                let me = (trx.raw() != 0).then(|| {
                    self.ensure_started(trx, snapshot_ts);
                    trx
                });
                let lo = lower.as_ref().map(Bound::Included).unwrap_or(Bound::Unbounded);
                let hi = upper.as_ref().map(Bound::Excluded).unwrap_or(Bound::Unbounded);
                match self.engine.scan(table, lo, hi, snapshot_ts, me) {
                    Ok(rows) => TxnMsg::Rows(rows),
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Prepare { trx } => {
                // Step ④: validate, enter PREPARED, return ClockAdvance().
                let prepare_ts = self.clock.advance();
                match self.engine.prepare(trx, prepare_ts.raw()) {
                    Ok(_) => TxnMsg::Prepared { prepare_ts: prepare_ts.raw() },
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Commit { trx, commit_ts } => {
                // Step ⑦: absorb the commit timestamp, then commit.
                self.clock.update(HlcTimestamp::from_raw(commit_ts));
                self.finish(trx);
                match self.engine.commit(trx, commit_ts) {
                    Ok(_) => TxnMsg::Committed { commit_ts },
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::CommitLocal { trx } => {
                // Single-participant fast path: the commit timestamp is this
                // node's ClockAdvance — no cross-node max needed.
                let commit_ts = self.clock.advance().raw();
                self.finish(trx);
                match self.engine.commit(trx, commit_ts) {
                    Ok(_) => TxnMsg::Committed { commit_ts },
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Abort { trx } => {
                self.finish(trx);
                self.engine.abort(trx);
                TxnMsg::Ok
            }
            other => other,
        }
    }

    fn handle_oneway(&self, from: NodeId, msg: TxnMsg) {
        // Phase-two messages may arrive as posts (asynchronous second phase).
        let _ = self.handle(from, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, Key, Row, TableId, TenantId, Value};
    use polardbx_hlc::{Hlc, TestClock};
    use polardbx_simnet::{LatencyMatrix, SimNet};

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n)])
    }

    #[test]
    fn participant_updates_clock_from_snapshot() {
        let pc = TestClock::at(100);
        let clock = Hlc::with_physical(pc);
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, clock.clone());
        // A snapshot far in the future arrives (from a fast coordinator).
        let future = HlcTimestamp::new(5000, 0);
        let reply = dn.handle(
            NodeId(9),
            TxnMsg::Read { trx: TrxId(0), snapshot_ts: future.raw(), table: TableId(1), key: key(1) },
        );
        assert!(matches!(reply, TxnMsg::RowResult(None)));
        assert!(clock.now() >= future, "ClockUpdate must have absorbed the snapshot");
    }

    #[test]
    fn prepare_returns_advancing_timestamp() {
        let clock = Hlc::with_physical(TestClock::at(100));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(5),
                snapshot_ts: HlcTimestamp::new(100, 0).raw(),
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        let r1 = dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(5) });
        let TxnMsg::Prepared { prepare_ts } = r1 else { panic!("expected Prepared, got {r1:?}") };
        assert!(prepare_ts > HlcTimestamp::new(100, 0).raw());
    }

    #[test]
    fn full_local_2pc_roundtrip_via_fabric() {
        let net = SimNet::new(LatencyMatrix::zero());
        let clock = Hlc::with_physical(TestClock::at(1));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        net.register(NodeId(1), DcId(1), dn);
        struct Cn;
        impl Handler<TxnMsg> for Cn {
            fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
                m
            }
        }
        net.register(NodeId(9), DcId(1), Arc::new(Cn));

        let snapshot = HlcTimestamp::new(1, 0).raw();
        let w = net
            .call(
                NodeId(9),
                NodeId(1),
                TxnMsg::Write {
                    trx: TrxId(7),
                    snapshot_ts: snapshot,
                    table: TableId(1),
                    key: key(1),
                    op: WireWriteOp::Insert(row(1)),
                },
            )
            .unwrap();
        assert!(matches!(w, TxnMsg::Ok));
        let p = net.call(NodeId(9), NodeId(1), TxnMsg::Prepare { trx: TrxId(7) }).unwrap();
        let TxnMsg::Prepared { prepare_ts } = p else { panic!() };
        let c = net
            .call(NodeId(9), NodeId(1), TxnMsg::Commit { trx: TrxId(7), commit_ts: prepare_ts })
            .unwrap();
        assert!(matches!(c, TxnMsg::Committed { .. }));
        assert_eq!(engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), Some(row(1)));
    }

    #[test]
    fn clock_si_participant_waits_out_skew() {
        use polardbx_hlc::ClockSiClock;
        // Participant's physical clock is 5 ms behind the coordinator's.
        let pc = TestClock::at(1000);
        let clock = ClockSiClock::new(pc.clone(), 50);
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        // Ticker moves the physical clock forward in real time.
        let pc2 = Arc::clone(&pc);
        let ticker = std::thread::spawn(move || {
            for _ in 0..60 {
                std::thread::sleep(Duration::from_millis(1));
                pc2.tick(1);
            }
        });
        let future_snapshot = HlcTimestamp::at_pt(1010).raw();
        let t0 = std::time::Instant::now();
        let reply = dn.handle(
            NodeId(9),
            TxnMsg::Read {
                trx: TrxId(0),
                snapshot_ts: future_snapshot,
                table: TableId(1),
                key: key(1),
            },
        );
        assert!(matches!(reply, TxnMsg::RowResult(None)));
        assert!(
            t0.elapsed() >= Duration::from_millis(5),
            "Clock-SI must delay until local clock passes the snapshot"
        );
        ticker.join().unwrap();
    }

    #[test]
    fn abort_cleans_up() {
        let clock = Hlc::with_physical(TestClock::at(1));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(3),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        dn.handle(NodeId(9), TxnMsg::Abort { trx: TrxId(3) });
        assert_eq!(engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), None);
        assert!(!engine.has_active_txns());
    }
}
