//! The DN-side participant service.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use polardbx_common::time::mono_now;
use polardbx_common::{Error, HistoryRecorder, NodeId, Result, TrxId, TxnEvent};
use polardbx_hlc::{Clock, HlcTimestamp};
use polardbx_simnet::{Handler, SimNet};
use polardbx_storage::{StorageEngine, TxnState, WriteOp};

use crate::config::ResolverConfig;
use crate::metrics::TxnMetrics;
use crate::msg::{Decision, TxnMsg, WireWriteOp};

/// A PREPARED transaction awaiting its 2PC outcome.
struct InDoubt {
    /// Where the coordinator logs its decision (None = legacy protocol).
    decision_node: Option<NodeId>,
    /// When this participant entered PREPARED.
    since: Duration,
}

/// A DN participant: storage engine + node clock, attached to the fabric.
pub struct DnService {
    /// Node id on the fabric.
    pub node: NodeId,
    /// The node's storage engine.
    pub engine: Arc<StorageEngine>,
    /// The node's clock (HLC, TSO client, or Clock-SI).
    pub clock: Arc<dyn Clock>,
    /// Chaos counters (duplicates absorbed, in-doubt resolutions…).
    pub metrics: TxnMetrics,
    /// Transactions this participant has begun locally, with start times
    /// (for abandoned-ACTIVE expiry).
    started: Mutex<HashMap<TrxId, Duration>>,
    /// PREPARED transactions whose outcome is not yet known here.
    prepared: Mutex<HashMap<TrxId, InDoubt>>,
    /// The decision log this node hosts as an arbiter: trx → final fate.
    /// First writer wins — a presumed-abort write by a querying participant
    /// permanently blocks a slow coordinator's commit, and vice versa.
    decisions: Mutex<HashMap<TrxId, Decision>>,
    /// History tap for arbiter decisions (the engine carries its own tap
    /// for reads/writes/commit stamps).
    recorder: Mutex<Option<Arc<HistoryRecorder>>>,
}

impl DnService {
    /// Wrap an engine and a clock as a participant service.
    pub fn new(node: NodeId, engine: Arc<StorageEngine>, clock: Arc<dyn Clock>) -> Arc<DnService> {
        Arc::new(DnService {
            node,
            engine,
            clock,
            metrics: TxnMetrics::new(),
            started: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            decisions: Mutex::new(HashMap::new()),
            recorder: Mutex::new(None),
        })
    }

    /// Attach a history recorder: installs the MVCC tap on this node's
    /// engine (reads, writes, local commit stamps, aborts) and records
    /// arbiter decisions made here.
    pub fn attach_recorder(&self, rec: Arc<HistoryRecorder>) {
        self.engine.set_recorder(Arc::clone(&rec), self.node, false);
        *self.recorder.lock() = Some(rec);
    }

    /// Record a first-writer-wins arbiter decision. Called after the
    /// decision-log lock is released (the recorder is a leaf lock, but
    /// taps here keep the discipline of never nesting it anyway).
    fn record_decision(&self, trx: TrxId, decision: Decision) {
        let rec = self.recorder.lock().clone();
        if let Some(rec) = rec {
            let commit_ts = match decision {
                Decision::Commit(ts) => Some(ts),
                Decision::Abort => None,
            };
            rec.record(TxnEvent::Decision { trx, node: self.node, commit_ts });
        }
    }

    /// The decision on record for `trx`, if this node is its arbiter.
    pub fn recorded_decision(&self, trx: TrxId) -> Option<Decision> {
        self.decisions.lock().get(&trx).copied()
    }

    /// Number of PREPARED transactions still awaiting their outcome here.
    pub fn in_doubt_count(&self) -> usize {
        self.prepared.lock().len()
    }

    /// Crash recovery: re-adopt a PREPARED-but-undecided transaction found
    /// in the replayed redo log, so the in-doubt resolver settles it via
    /// the arbiter (presumed abort if no decision was ever logged).
    ///
    /// The prepare record carries only `{trx, prepare_ts}` — the arbiter's
    /// identity lives in cluster metadata, so the recovery harness supplies
    /// `decision_node` from configuration (None degrades to the legacy
    /// expiry path). `since` is backdated to the epoch: a recovered
    /// in-doubt transaction has by definition already waited long enough,
    /// so the very next sweep may query the arbiter.
    pub fn adopt_in_doubt(&self, trx: TrxId, decision_node: Option<NodeId>) {
        self.prepared
            .lock()
            .insert(trx, InDoubt { decision_node, since: Duration::ZERO });
    }

    /// Spawn the in-doubt resolver: a background sweep that queries the
    /// arbiter for PREPARED transactions older than `cfg.in_doubt_after`
    /// and locally aborts ACTIVE transactions abandoned longer than
    /// `cfg.abandon_active_after` (safe: an ACTIVE transaction has not
    /// voted, so nothing can have committed it). Stop via the returned
    /// handle.
    pub fn start_resolver(
        self: &Arc<Self>,
        net: Arc<SimNet<TxnMsg>>,
        cfg: ResolverConfig,
    ) -> Result<ResolverHandle> {
        let me = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("txn-resolver-{}", self.node))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.interval);
                    me.resolve_once(&net, &cfg);
                }
            })
            .map_err(|e| Error::execution(format!("spawn txn resolver: {e}")))?;
        Ok(ResolverHandle { stop, handle: Some(handle) })
    }

    /// One resolver sweep (also callable directly from tests).
    pub fn resolve_once(&self, net: &SimNet<TxnMsg>, cfg: &ResolverConfig) {
        let now = mono_now();
        // In-doubt PREPARED: ask the arbiter for the outcome. A failed
        // query (the chaos fabric may drop it) just leaves the transaction
        // for the next sweep.
        let in_doubt: Vec<(TrxId, NodeId)> = self
            .prepared
            .lock()
            .iter()
            .filter(|(_, d)| now.saturating_sub(d.since) >= cfg.in_doubt_after)
            .filter_map(|(t, d)| d.decision_node.map(|n| (*t, n)))
            .collect();
        for (trx, arbiter) in in_doubt {
            match net.call(self.node, arbiter, TxnMsg::QueryDecision { trx }) {
                Ok(TxnMsg::DecisionIs { decision: Decision::Commit(commit_ts) }) => {
                    self.metrics.in_doubt_commits.inc();
                    let _ = self.handle(self.node, TxnMsg::Commit { trx, commit_ts });
                }
                Ok(TxnMsg::DecisionIs { decision: Decision::Abort }) => {
                    self.metrics.in_doubt_aborts.inc();
                    let _ = self.handle(self.node, TxnMsg::Abort { trx });
                }
                _ => {}
            }
        }
        // Abandoned ACTIVE: the coordinator died (or gave up) before ever
        // asking for a vote. `abort_if_active` is atomic against a racing
        // Prepare, so a transaction that slips into PREPARED under our feet
        // is left for the in-doubt path above.
        let abandoned: Vec<TrxId> = self
            .started
            .lock()
            .iter()
            .filter(|(_, s)| now.saturating_sub(**s) >= cfg.abandon_active_after)
            .map(|(t, _)| *t)
            .collect();
        for trx in abandoned {
            if self.prepared.lock().contains_key(&trx) {
                continue;
            }
            if self.engine.abort_if_active(trx) {
                self.metrics.expired_active.inc();
                self.started.lock().remove(&trx);
            }
        }
    }

    /// Step ③ of Fig 4 — and the Clock-SI divergence point. HLC absorbs the
    /// incoming timestamp (`ClockUpdate`); Clock-SI has no causality
    /// propagation, so when the snapshot is ahead of the local physical
    /// clock the participant must *delay* the statement until its clock
    /// catches up (bounded by the configured worst-case skew).
    fn sync_snapshot(&self, snapshot_ts: u64) {
        if self.clock.causality_wait_millis() > 0 {
            let deadline =
                mono_now() + Duration::from_millis(self.clock.causality_wait_millis() + 1);
            while self.clock.now().raw() < snapshot_ts {
                if mono_now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        } else {
            self.clock.update(HlcTimestamp::from_raw(snapshot_ts));
        }
    }

    fn ensure_started(&self, trx: TrxId, snapshot_ts: u64) {
        if trx.raw() == 0 {
            return;
        }
        let mut started = self.started.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = started.entry(trx) {
            e.insert(mono_now());
            self.engine.begin(trx, snapshot_ts);
        }
    }

    fn finish(&self, trx: TrxId) {
        self.started.lock().remove(&trx);
        self.prepared.lock().remove(&trx);
    }

    fn do_write(
        &self,
        trx: TrxId,
        snapshot_ts: u64,
        table: polardbx_common::TableId,
        key: polardbx_common::Key,
        op: WireWriteOp,
    ) -> Result<()> {
        self.sync_snapshot(snapshot_ts);
        self.ensure_started(trx, snapshot_ts);
        let op = match op {
            WireWriteOp::Insert(row) => WriteOp::Insert(row),
            WireWriteOp::Update(row) => WriteOp::Update(row),
            WireWriteOp::Delete => WriteOp::Delete,
        };
        self.engine.write(trx, table, key, op)
    }
}

/// A statement for a table this DN no longer hosts raced a partition
/// re-home: the CN routed before the cutover detached the store. That is
/// transient routing staleness, not a schema error — remap it retryable so
/// the client re-routes and finds the new home. (CNs never send statements
/// for tables they did not resolve through the catalog, so a missing store
/// at statement time always means a stale route.)
fn remap_stale_route(e: Error) -> Error {
    match e {
        Error::UnknownTable { name } => Error::Throttled { rule: format!("stale-route:{name}") },
        other => other,
    }
}

impl Handler<TxnMsg> for DnService {
    fn handle(&self, _from: NodeId, msg: TxnMsg) -> TxnMsg {
        match msg {
            TxnMsg::Write { trx, snapshot_ts, table, key, op } => {
                match self.do_write(trx, snapshot_ts, table, key, op) {
                    Ok(()) => TxnMsg::Ok,
                    Err(e) => TxnMsg::Failed(remap_stale_route(e)),
                }
            }
            TxnMsg::Read { trx, snapshot_ts, table, key } => {
                self.sync_snapshot(snapshot_ts);
                let me = (trx.raw() != 0).then(|| {
                    self.ensure_started(trx, snapshot_ts);
                    trx
                });
                match self.engine.read(table, &key, snapshot_ts, me) {
                    Ok(row) => TxnMsg::RowResult(row),
                    Err(e) => TxnMsg::Failed(remap_stale_route(e)),
                }
            }
            TxnMsg::Scan { trx, snapshot_ts, table, lower, upper } => {
                self.sync_snapshot(snapshot_ts);
                let me = (trx.raw() != 0).then(|| {
                    self.ensure_started(trx, snapshot_ts);
                    trx
                });
                let lo = lower.as_ref().map(Bound::Included).unwrap_or(Bound::Unbounded);
                let hi = upper.as_ref().map(Bound::Excluded).unwrap_or(Bound::Unbounded);
                match self.engine.scan(table, lo, hi, snapshot_ts, me) {
                    Ok(rows) => TxnMsg::Rows(rows),
                    Err(e) => TxnMsg::Failed(remap_stale_route(e)),
                }
            }
            TxnMsg::Prepare { trx, decision_node } => {
                // Idempotency first: a duplicated or retried Prepare must
                // return the SAME prepare_ts, not advance the state again.
                if let Some(TxnState::Prepared { prepare_ts }) = self.engine.txn_state(trx) {
                    self.metrics.duplicate_msgs.inc();
                    return TxnMsg::Prepared { prepare_ts };
                }
                // Step ④: validate, enter PREPARED, return ClockAdvance().
                // The advance happens inside the transaction table's lock:
                // allocated-but-not-yet-PREPARED is a window in which a
                // reader could sync a higher snapshot and skip our ACTIVE
                // intents, then miss the commit below its snapshot.
                match self.engine.prepare_with(trx, || self.clock.advance().raw()) {
                    Ok((prepare_ts, _)) => {
                        self.prepared
                            .lock()
                            .insert(trx, InDoubt { decision_node, since: mono_now() });
                        TxnMsg::Prepared { prepare_ts }
                    }
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Commit { trx, commit_ts } => {
                // Step ⑦: absorb the commit timestamp, then commit.
                self.clock.update(HlcTimestamp::from_raw(commit_ts));
                // Idempotency: a duplicate Commit re-acks the recorded
                // timestamp instead of failing on the released context.
                if let Some(TxnState::Committed { commit_ts: recorded }) =
                    self.engine.txn_state(trx)
                {
                    self.metrics.duplicate_msgs.inc();
                    self.finish(trx);
                    return TxnMsg::Committed { commit_ts: recorded };
                }
                // The decision is durable at the arbiter and may already be
                // acked upstream: a local durability failure leaves the
                // transaction PREPARED (in-doubt, still tracked for the
                // resolver) rather than rolling it back.
                match self.engine.commit_decided(trx, commit_ts) {
                    Ok(_) => {
                        self.finish(trx);
                        TxnMsg::Committed { commit_ts }
                    }
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::CommitLocal { trx } => {
                // Idempotency: a retried CommitLocal (lost reply) must ack
                // the original commit timestamp, not allocate a new one.
                if let Some(TxnState::Committed { commit_ts }) = self.engine.txn_state(trx) {
                    self.metrics.duplicate_msgs.inc();
                    self.finish(trx);
                    return TxnMsg::Committed { commit_ts };
                }
                // Single-participant fast path: the commit timestamp is this
                // node's ClockAdvance — no cross-node max needed. The
                // advance rides the same in-lock PREPARED transition as a
                // 2PC prepare (readers wait instead of skipping ACTIVE
                // intents once the timestamp exists), but without a second
                // durability flush.
                let commit_ts =
                    match self.engine.mark_prepared_with(trx, || self.clock.advance().raw()) {
                        Ok(ts) => ts,
                        Err(e) => return TxnMsg::Failed(e),
                    };
                self.finish(trx);
                match self.engine.commit(trx, commit_ts) {
                    Ok(_) => TxnMsg::Committed { commit_ts },
                    Err(e) => TxnMsg::Failed(e),
                }
            }
            TxnMsg::Abort { trx } => {
                // A late or duplicated Abort must never clobber a commit
                // (the engine also guards this; counting it here keeps the
                // metric honest).
                if matches!(self.engine.txn_state(trx), Some(TxnState::Committed { .. })) {
                    self.metrics.duplicate_msgs.inc();
                    return TxnMsg::Ok;
                }
                self.finish(trx);
                self.engine.abort(trx);
                TxnMsg::Ok
            }
            TxnMsg::LogDecision { trx, decision } => {
                // Arbiter role: first writer wins, and the reply carries
                // whatever is actually on record — a coordinator beaten to
                // the log by a presumed abort learns it here.
                let (recorded, inserted) = {
                    let mut log = self.decisions.lock();
                    let mut inserted = false;
                    let recorded = *log.entry(trx).or_insert_with(|| {
                        inserted = true;
                        decision
                    });
                    (recorded, inserted)
                };
                if inserted {
                    self.record_decision(trx, recorded);
                }
                TxnMsg::DecisionIs { decision: recorded }
            }
            TxnMsg::QueryDecision { trx } => {
                // Arbiter role: an in-doubt participant is asking. If no
                // decision is on record, the coordinator provably never
                // finished logging Commit — record ABORT, which from now on
                // blocks it from committing (presumed abort).
                let (recorded, inserted) = {
                    let mut log = self.decisions.lock();
                    let mut inserted = false;
                    let recorded = *log.entry(trx).or_insert_with(|| {
                        self.metrics.presumed_aborts.inc();
                        inserted = true;
                        Decision::Abort
                    });
                    (recorded, inserted)
                };
                if inserted {
                    self.record_decision(trx, recorded);
                }
                TxnMsg::DecisionIs { decision: recorded }
            }
            other => other,
        }
    }

    fn handle_oneway(&self, from: NodeId, msg: TxnMsg) {
        // Phase-two messages may arrive as posts (asynchronous second phase).
        let _ = self.handle(from, msg);
    }
}

/// Handle to a running in-doubt resolver; stops and joins it on demand
/// (and on drop).
pub struct ResolverHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ResolverHandle {
    /// Signal the resolver to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ResolverHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, Key, Row, TableId, TenantId, Value};
    use polardbx_hlc::{Hlc, TestClock};
    use polardbx_simnet::{LatencyMatrix, SimNet};

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n)])
    }

    #[test]
    fn participant_updates_clock_from_snapshot() {
        let pc = TestClock::at(100);
        let clock = Hlc::with_physical(pc);
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, clock.clone());
        // A snapshot far in the future arrives (from a fast coordinator).
        let future = HlcTimestamp::new(5000, 0);
        let reply = dn.handle(
            NodeId(9),
            TxnMsg::Read { trx: TrxId(0), snapshot_ts: future.raw(), table: TableId(1), key: key(1) },
        );
        assert!(matches!(reply, TxnMsg::RowResult(None)));
        assert!(clock.now() >= future, "ClockUpdate must have absorbed the snapshot");
    }

    #[test]
    fn prepare_returns_advancing_timestamp() {
        let clock = Hlc::with_physical(TestClock::at(100));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(5),
                snapshot_ts: HlcTimestamp::new(100, 0).raw(),
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        let r1 = dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(5), decision_node: None });
        let TxnMsg::Prepared { prepare_ts } = r1 else { panic!("expected Prepared, got {r1:?}") };
        assert!(prepare_ts > HlcTimestamp::new(100, 0).raw());
    }

    #[test]
    fn full_local_2pc_roundtrip_via_fabric() {
        let net = SimNet::new(LatencyMatrix::zero());
        let clock = Hlc::with_physical(TestClock::at(1));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        net.register(NodeId(1), DcId(1), dn);
        struct Cn;
        impl Handler<TxnMsg> for Cn {
            fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
                m
            }
        }
        net.register(NodeId(9), DcId(1), Arc::new(Cn));

        let snapshot = HlcTimestamp::new(1, 0).raw();
        let w = net
            .call(
                NodeId(9),
                NodeId(1),
                TxnMsg::Write {
                    trx: TrxId(7),
                    snapshot_ts: snapshot,
                    table: TableId(1),
                    key: key(1),
                    op: WireWriteOp::Insert(row(1)),
                },
            )
            .unwrap();
        assert!(matches!(w, TxnMsg::Ok));
        let p = net
            .call(NodeId(9), NodeId(1), TxnMsg::Prepare { trx: TrxId(7), decision_node: None })
            .unwrap();
        let TxnMsg::Prepared { prepare_ts } = p else { panic!() };
        let c = net
            .call(NodeId(9), NodeId(1), TxnMsg::Commit { trx: TrxId(7), commit_ts: prepare_ts })
            .unwrap();
        assert!(matches!(c, TxnMsg::Committed { .. }));
        assert_eq!(engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), Some(row(1)));
    }

    #[test]
    fn clock_si_participant_waits_out_skew() {
        use polardbx_hlc::ClockSiClock;
        // Participant's physical clock is 5 ms behind the coordinator's.
        let pc = TestClock::at(1000);
        let clock = ClockSiClock::new(pc.clone(), 50);
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        // Ticker moves the physical clock forward in real time.
        let pc2 = Arc::clone(&pc);
        let ticker = std::thread::spawn(move || {
            for _ in 0..60 {
                std::thread::sleep(Duration::from_millis(1));
                pc2.tick(1);
            }
        });
        let future_snapshot = HlcTimestamp::at_pt(1010).raw();
        let t0 = std::time::Instant::now();
        let reply = dn.handle(
            NodeId(9),
            TxnMsg::Read {
                trx: TrxId(0),
                snapshot_ts: future_snapshot,
                table: TableId(1),
                key: key(1),
            },
        );
        assert!(matches!(reply, TxnMsg::RowResult(None)));
        assert!(
            t0.elapsed() >= Duration::from_millis(5),
            "Clock-SI must delay until local clock passes the snapshot"
        );
        ticker.join().unwrap();
    }

    #[test]
    fn duplicate_prepare_returns_same_ts() {
        let clock = Hlc::with_physical(TestClock::at(100));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(5),
                snapshot_ts: HlcTimestamp::new(100, 0).raw(),
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        let r1 = dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(5), decision_node: None });
        let r2 = dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(5), decision_node: None });
        let TxnMsg::Prepared { prepare_ts: t1 } = r1 else { panic!("{r1:?}") };
        let TxnMsg::Prepared { prepare_ts: t2 } = r2 else { panic!("{r2:?}") };
        assert_eq!(t1, t2, "duplicate Prepare must not advance the timestamp");
        assert_eq!(dn.metrics.duplicate_msgs.get(), 1);
    }

    #[test]
    fn duplicate_commit_and_late_abort_are_absorbed() {
        let clock = Hlc::with_physical(TestClock::at(100));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(5),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        let TxnMsg::Prepared { prepare_ts } =
            dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(5), decision_node: None })
        else {
            panic!()
        };
        let c1 = dn.handle(NodeId(9), TxnMsg::Commit { trx: TrxId(5), commit_ts: prepare_ts });
        assert!(matches!(c1, TxnMsg::Committed { .. }));
        // Duplicate Commit re-acks instead of failing on the gone context.
        let c2 = dn.handle(NodeId(9), TxnMsg::Commit { trx: TrxId(5), commit_ts: prepare_ts });
        let TxnMsg::Committed { commit_ts } = c2 else { panic!("{c2:?}") };
        assert_eq!(commit_ts, prepare_ts);
        // A late Abort (redelivered under loss) must not clobber the commit.
        let a = dn.handle(NodeId(9), TxnMsg::Abort { trx: TrxId(5) });
        assert!(matches!(a, TxnMsg::Ok));
        assert_eq!(engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), Some(row(1)));
        assert_eq!(dn.metrics.duplicate_msgs.get(), 2);
    }

    #[test]
    fn decision_log_is_first_writer_wins() {
        let clock = Hlc::with_physical(TestClock::at(1));
        let engine = StorageEngine::in_memory();
        let dn = DnService::new(NodeId(1), engine, clock);
        // A query for an unknown transaction writes the presumed abort…
        let q = dn.handle(NodeId(2), TxnMsg::QueryDecision { trx: TrxId(9) });
        assert!(matches!(q, TxnMsg::DecisionIs { decision: Decision::Abort }));
        assert_eq!(dn.metrics.presumed_aborts.get(), 1);
        // …which permanently blocks the slow coordinator's commit.
        let l = dn.handle(
            NodeId(9),
            TxnMsg::LogDecision { trx: TrxId(9), decision: Decision::Commit(42) },
        );
        assert!(matches!(l, TxnMsg::DecisionIs { decision: Decision::Abort }));
        // The reverse order: a logged commit survives queries.
        let l = dn.handle(
            NodeId(9),
            TxnMsg::LogDecision { trx: TrxId(10), decision: Decision::Commit(77) },
        );
        assert!(matches!(l, TxnMsg::DecisionIs { decision: Decision::Commit(77) }));
        let q = dn.handle(NodeId(2), TxnMsg::QueryDecision { trx: TrxId(10) });
        assert!(matches!(q, TxnMsg::DecisionIs { decision: Decision::Commit(77) }));
        assert_eq!(dn.recorded_decision(TrxId(10)), Some(Decision::Commit(77)));
    }

    #[test]
    fn resolver_commits_in_doubt_txn_from_decision_log() {
        use polardbx_simnet::LatencyMatrix;
        let net = SimNet::new(LatencyMatrix::zero());
        let mk = |n: u64| {
            let engine = StorageEngine::in_memory();
            engine.create_table(TableId(1), TenantId(1));
            DnService::new(NodeId(n), engine, Hlc::with_physical(TestClock::at(100)))
        };
        let dn = mk(1);
        let arbiter = mk(2);
        net.register(NodeId(1), DcId(1), dn.clone());
        net.register(NodeId(2), DcId(1), arbiter.clone());
        // dn prepares trx 5, coordinator's phase-two post is "lost"; the
        // decision made it to the arbiter.
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(5),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        let TxnMsg::Prepared { prepare_ts } = dn.handle(
            NodeId(9),
            TxnMsg::Prepare { trx: TrxId(5), decision_node: Some(NodeId(2)) },
        ) else {
            panic!()
        };
        arbiter.handle(
            NodeId(9),
            TxnMsg::LogDecision { trx: TrxId(5), decision: Decision::Commit(prepare_ts) },
        );
        assert_eq!(dn.in_doubt_count(), 1);
        let cfg = ResolverConfig {
            interval: Duration::from_millis(5),
            in_doubt_after: Duration::from_millis(10),
            abandon_active_after: Duration::from_millis(200),
        };
        std::thread::sleep(Duration::from_millis(15));
        dn.resolve_once(&net, &cfg);
        assert_eq!(dn.in_doubt_count(), 0);
        assert_eq!(dn.metrics.in_doubt_commits.get(), 1);
        assert_eq!(
            dn.engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(),
            Some(row(1)),
            "in-doubt txn must land as committed"
        );
    }

    #[test]
    fn resolver_presumes_abort_when_no_decision_logged() {
        use polardbx_simnet::LatencyMatrix;
        let net = SimNet::new(LatencyMatrix::zero());
        let mk = |n: u64| {
            let engine = StorageEngine::in_memory();
            engine.create_table(TableId(1), TenantId(1));
            DnService::new(NodeId(n), engine, Hlc::with_physical(TestClock::at(100)))
        };
        let dn = mk(1);
        let arbiter = mk(2);
        net.register(NodeId(1), DcId(1), dn.clone());
        net.register(NodeId(2), DcId(1), arbiter.clone());
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(6),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(2),
                op: WireWriteOp::Insert(row(2)),
            },
        );
        dn.handle(NodeId(9), TxnMsg::Prepare { trx: TrxId(6), decision_node: Some(NodeId(2)) });
        // Coordinator "died" before logging: resolver must presume abort.
        let cfg = ResolverConfig {
            interval: Duration::from_millis(5),
            in_doubt_after: Duration::from_millis(10),
            abandon_active_after: Duration::from_millis(200),
        };
        std::thread::sleep(Duration::from_millis(15));
        dn.resolve_once(&net, &cfg);
        assert_eq!(dn.in_doubt_count(), 0);
        assert_eq!(dn.metrics.in_doubt_aborts.get(), 1);
        assert_eq!(arbiter.metrics.presumed_aborts.get(), 1);
        assert_eq!(dn.engine.read(TableId(1), &key(2), u64::MAX, None).unwrap(), None);
        assert!(!dn.engine.has_active_txns());
    }

    #[test]
    fn resolver_expires_abandoned_active_txn() {
        use polardbx_simnet::LatencyMatrix;
        let net = SimNet::<TxnMsg>::new(LatencyMatrix::zero());
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), engine, Hlc::with_physical(TestClock::at(100)));
        net.register(NodeId(1), DcId(1), dn.clone());
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(7),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(3),
                op: WireWriteOp::Insert(row(3)),
            },
        );
        assert!(dn.engine.has_active_txns());
        let cfg = ResolverConfig {
            interval: Duration::from_millis(5),
            in_doubt_after: Duration::from_millis(10),
            abandon_active_after: Duration::from_millis(20),
        };
        std::thread::sleep(Duration::from_millis(30));
        dn.resolve_once(&net, &cfg);
        assert!(!dn.engine.has_active_txns(), "abandoned ACTIVE must expire");
        assert_eq!(dn.metrics.expired_active.get(), 1);
    }

    #[test]
    fn abort_cleans_up() {
        let clock = Hlc::with_physical(TestClock::at(1));
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(1), Arc::clone(&engine), clock);
        dn.handle(
            NodeId(9),
            TxnMsg::Write {
                trx: TrxId(3),
                snapshot_ts: 1,
                table: TableId(1),
                key: key(1),
                op: WireWriteOp::Insert(row(1)),
            },
        );
        dn.handle(NodeId(9), TxnMsg::Abort { trx: TrxId(3) });
        assert_eq!(engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), None);
        assert!(!engine.has_active_txns());
    }
}
