//! Distributed transactions: HLC-SI and its baselines over 2PC (§IV).
//!
//! The CN acts as coordinator; DNs are participants. The protocol is the
//! paper's Figure 4:
//!
//! 1. coordinator takes `snapshot_ts = ClockNow()` ①,
//! 2. statements ship to participants with the snapshot timestamp ②; each
//!    participant runs `ClockUpdate(snapshot_ts)` so its clock is at least
//!    the snapshot ③,
//! 3. at commit, every participant validates and enters PREPARED, returning
//!    `prepare_ts = ClockAdvance()` ④,
//! 4. the coordinator picks `commit_ts = max(prepare_ts)` ⑤, runs a single
//!    batched `ClockUpdate` ⑥, and ships `commit_ts` to participants ⑦.
//!
//! Swapping the [`polardbx_hlc::Clock`] implementation yields the baselines
//! of Fig 7: TSO-SI (both timestamps are RPCs to a central oracle) and
//! Clock-SI (local physical clocks; participants must *wait out* skew
//! before serving a snapshot).
//!
//! [`checker`] provides the bank-invariant harness used to validate
//! snapshot isolation under concurrency.
//!
//! # Fault tolerance
//!
//! The commit path is hardened against a lossy, crash-prone fabric:
//! commit-path RPCs retry with bounded deterministic backoff ([`config`]),
//! participants absorb duplicated 2PC messages idempotently, and a
//! coordinator configured with [`Coordinator::with_decision_log`] records
//! its commit decision on an arbiter DN *before* phase two. A participant
//! stuck PREPARED past its in-doubt timeout resolves itself through that
//! log via [`DnService::start_resolver`]; querying an absent record writes
//! a presumed abort that permanently blocks a slow coordinator from
//! committing. See DESIGN.md's "Fault model" section.

pub mod checker;
pub mod config;
pub mod coordinator;
pub mod metrics;
pub mod msg;
pub mod participant;
pub mod route;

pub use config::{ResolverConfig, TxnConfig};
pub use coordinator::{Coordinator, DistTxn, Failpoint, ProtocolMutations, MAX_TOUCHED};
pub use metrics::TxnMetrics;
pub use route::{AccessObserver, CommitGuard, PartTouch, RoutingFence};
pub use msg::{Decision, TxnMsg, WireWriteOp};
pub use participant::{DnService, ResolverHandle};
