//! Property tests for the wire codec, mirroring the WAL recovery suite's
//! torn-tail shape: every byte offset, every single-byte corruption,
//! arbitrary garbage — decode must return a typed [`WireError`] or a
//! valid frame, and must never panic.
//!
//! Seeded via `POLARDBX_TEST_SEED` (the seed is printed to stderr so a
//! red run replays).

use rand::{Rng, SeedableRng};

use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_common::{Row, Value};
use polardbx_front::wire::{
    decode_frame, ErrCode, Frame, WireError, MAX_WIRE_PAYLOAD, PROTOCOL_VERSION,
    WIRE_HEADER_LEN,
};

fn seeded(default: u64) -> (u64, rand::rngs::StdRng) {
    let seed = seed_from_env(default);
    eprintln!("wire_property seed: POLARDBX_TEST_SEED={}", format_seed(seed));
    (seed, rand::rngs::StdRng::seed_from_u64(seed))
}

fn arb_string(rng: &mut rand::rngs::StdRng) -> String {
    let choices = [
        "", "SELECT 1", "UPDATE t SET v = v + 1 WHERE id = 0",
        "日本語のSQL", "emoji 🚀🔥", "quotes '\" and \\ backslash",
        "nul\0byte", "very-long-",
    ];
    let base = choices[rng.gen_range(0..choices.len())].to_string();
    if base == "very-long-" {
        base.repeat(rng.gen_range(1..2000))
    } else {
        base
    }
}

fn arb_value(rng: &mut rand::rngs::StdRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::Null,
        1 => Value::Int(rng.gen::<i64>()),
        2 => Value::Double(f64::from_bits(0x3FF0_0000_0000_0000 | (rng.gen::<u64>() >> 12))),
        3 => Value::Str(arb_string(rng)),
        4 => {
            let n = rng.gen_range(0..64);
            Value::Bytes((0..n).map(|_| rng.gen::<u8>()).collect())
        }
        _ => Value::Date(rng.gen::<i32>()),
    }
}

fn arb_frame(rng: &mut rand::rngs::StdRng) -> Frame {
    match rng.gen_range(0..13) {
        0 => Frame::Hello { version: rng.gen(), tenant: rng.gen() },
        1 => Frame::Query { sql: arb_string(rng) },
        2 => Frame::Prepare { sql: arb_string(rng) },
        3 => Frame::Execute { stmt_id: rng.gen() },
        4 => Frame::CloseStmt { stmt_id: rng.gen() },
        5 => Frame::Quit,
        6 => Frame::HelloOk { cn: rng.gen() },
        7 => {
            let nrows = rng.gen_range(0..8);
            let ncols = rng.gen_range(0..5);
            Frame::Rows {
                rows: (0..nrows)
                    .map(|_| Row::new((0..ncols).map(|_| arb_value(rng)).collect()))
                    .collect(),
            }
        }
        8 => Frame::Affected { n: rng.gen() },
        9 => Frame::Prepared { stmt_id: rng.gen(), cached: rng.gen::<bool>() },
        10 => Frame::StmtClosed { stmt_id: rng.gen() },
        11 => Frame::Err {
            code: [
                ErrCode::Handshake, ErrCode::Throttled, ErrCode::Parse, ErrCode::Schema,
                ErrCode::UnknownTable, ErrCode::TxnRetry, ErrCode::Execution, ErrCode::Internal,
            ][rng.gen_range(0..8)],
            retryable: rng.gen::<bool>(),
            message: arb_string(rng),
        },
        _ => Frame::Bye,
    }
}

#[test]
fn arbitrary_frames_roundtrip() {
    let (_seed, mut rng) = seeded(0xF00D_F4A3);
    for _ in 0..500 {
        let frame = arb_frame(&mut rng);
        let bytes = frame.encode();
        let (decoded, consumed) =
            decode_frame(&bytes).unwrap_or_else(|e| panic!("decode {frame:?}: {e}"));
        assert_eq!(consumed, bytes.len(), "whole frame consumed");
        assert_eq!(decoded, frame);
    }
}

#[test]
fn torn_tail_at_every_byte_offset_is_truncated_not_panic() {
    let (_seed, mut rng) = seeded(0x7042_7A11);
    // A short stream of frames, torn at EVERY byte offset. Decoding the
    // torn prefix must yield exactly the fully-contained frames and then
    // a Truncated error — nothing decoded past the tear, no panic.
    let frames: Vec<Frame> = (0..4).map(|_| arb_frame(&mut rng)).collect();
    let mut stream = Vec::new();
    let mut boundaries = Vec::new(); // cumulative end offset of each frame
    for f in &frames {
        stream.extend_from_slice(&f.encode());
        boundaries.push(stream.len());
    }
    for cut in 0..=stream.len() {
        let torn = &stream[..cut];
        let mut off = 0;
        let mut decoded = 0;
        loop {
            match decode_frame(&torn[off..]) {
                Ok((frame, consumed)) => {
                    assert_eq!(frame, frames[decoded], "frame {decoded} at cut {cut}");
                    off += consumed;
                    decoded += 1;
                    if off == torn.len() {
                        break;
                    }
                }
                Err(WireError::Truncated { .. }) => break,
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
            }
        }
        let expect_complete = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(decoded, expect_complete, "cut {cut}: decoded frame count");
    }
}

#[test]
fn single_byte_corruption_is_a_typed_error_never_a_panic() {
    let (_seed, mut rng) = seeded(0xBADC_0DE5);
    for _ in 0..40 {
        let frame = arb_frame(&mut rng);
        let clean = frame.encode();
        for pos in 0..clean.len() {
            let mut dirty = clean.clone();
            let flip = 1u8 << rng.gen_range(0..8);
            dirty[pos] ^= flip;
            match decode_frame(&dirty) {
                // A header-length corruption can make the frame *look*
                // longer (Truncated) but never silently decode different
                // content: the checksum covers the payload.
                Err(_) => {}
                Ok((decoded, _)) => {
                    // A flip in padding-free encodings must be caught;
                    // the only acceptable Ok is the checksum catching it
                    // being impossible — i.e. this must never happen.
                    panic!(
                        "byte {pos} flip {flip:#04x} silently decoded {decoded:?} from {frame:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let (_seed, mut rng) = seeded(0x6A4B_A6E5);
    for _ in 0..2000 {
        let n = rng.gen_range(0..256);
        let garbage: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
        // Must return (not panic); almost always an error, and if it ever
        // decodes it must report plausible consumption.
        if let Ok((_, consumed)) = decode_frame(&garbage) {
            assert!(consumed <= garbage.len());
            assert!(consumed >= WIRE_HEADER_LEN);
        }
    }
}

#[test]
fn oversized_length_field_is_rejected_without_allocating() {
    // Hand-build a header claiming a payload far beyond MAX_WIRE_PAYLOAD;
    // decode must reject on the length field, not attempt the read.
    let mut buf = Vec::new();
    buf.extend_from_slice(&0x5844_5046u32.to_le_bytes()); // magic
    buf.extend_from_slice(&((MAX_WIRE_PAYLOAD as u32) + 1).to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // checksum (never reached)
    buf.extend_from_slice(&[0u8; 64]);
    match decode_frame(&buf) {
        Err(WireError::BadLength(n)) => assert_eq!(n as usize, MAX_WIRE_PAYLOAD + 1),
        other => panic!("expected BadLength, got {other:?}"),
    }
}

#[test]
fn streaming_reader_reassembles_frames_across_arbitrary_chunking() {
    use polardbx_front::wire::{FrameReader, ReadOutcome};
    use std::io::Read;

    /// A `Read` that serves a byte stream in pre-chosen chunk sizes,
    /// interleaving `WouldBlock` to model socket timeouts.
    struct Chunked {
        data: Vec<u8>,
        off: usize,
        chunks: Vec<usize>,
        i: usize,
        block_next: bool,
    }
    impl Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.block_next = true;
            if self.off >= self.data.len() {
                return Ok(0);
            }
            let want = self.chunks[self.i % self.chunks.len()].min(out.len());
            self.i += 1;
            let n = want.min(self.data.len() - self.off).max(1);
            out[..n].copy_from_slice(&self.data[self.off..self.off + n]);
            self.off += n;
            Ok(n)
        }
    }

    let (_seed, mut rng) = seeded(0x5EA0_11E5);
    for _ in 0..20 {
        let frames: Vec<Frame> = (0..6).map(|_| arb_frame(&mut rng)).collect();
        let mut data = Vec::new();
        for f in &frames {
            data.extend_from_slice(&f.encode());
        }
        let chunks: Vec<usize> = (0..8).map(|_| rng.gen_range(1..37)).collect();
        let mut reader =
            FrameReader::new(Chunked { data, off: 0, chunks, i: 0, block_next: false });
        let mut got = Vec::new();
        loop {
            match reader.poll().expect("no protocol error in clean stream") {
                ReadOutcome::Frame(f) => got.push(f),
                ReadOutcome::TimedOut => continue,
                ReadOutcome::Closed => break,
            }
        }
        assert_eq!(got, frames);
    }
}

#[test]
fn handshake_frame_version_is_stable() {
    // The version constant is part of the wire contract; changing it is a
    // compatibility break that must be deliberate.
    assert_eq!(PROTOCOL_VERSION, 1);
    let bytes = Frame::Hello { version: PROTOCOL_VERSION, tenant: 1 }.encode();
    assert_eq!(&bytes[..4], &0x5844_5046u32.to_le_bytes(), "magic 'FPDX'");
}
