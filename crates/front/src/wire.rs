//! The front-door wire protocol.
//!
//! Length-prefixed, checksummed frames over a byte stream:
//!
//! ```text
//!   header (16 bytes): magic u32 LE | payload_len u32 LE | checksum u64 LE
//!   payload:           tag u8 | tag-specific fields
//! ```
//!
//! The checksum (FNV-1a over the payload) is belt-and-suspenders on top of
//! TCP's own checking; more importantly it gives the decoder a typed
//! rejection for corrupted bytes instead of a garbage parse. Every decode
//! failure is a typed [`WireError`] — the codec never panics on torn,
//! truncated, oversized, or adversarial input (property-tested over every
//! byte offset, `tests/wire_property.rs`).
//!
//! A client handshakes with [`Frame::Hello`] (protocol version + tenant
//! id), then issues [`Frame::Query`] / [`Frame::Prepare`] /
//! [`Frame::Execute`] / [`Frame::CloseStmt`]. The server answers each
//! request with exactly one response frame; errors carry an [`ErrCode`]
//! plus a retryable flag, so a throttled client can distinguish "back off
//! and retry" ([`polardbx_common::Error::Throttled`]) from a permanent
//! failure without string matching.

use std::io::{Read, Write};

use polardbx_common::{Error, Result, Row, Value};

/// Protocol version carried in the handshake.
pub const PROTOCOL_VERSION: u32 = 1;
/// Frame magic: "FPDX" little-endian.
pub const WIRE_MAGIC: u32 = 0x5844_5046;
/// Header: magic u32 + payload length u32 + checksum u64.
pub const WIRE_HEADER_LEN: usize = 16;
/// Payload cap: a length field above this is rejected as
/// [`WireError::BadLength`] before any allocation.
pub const MAX_WIRE_PAYLOAD: usize = 1 << 20;

/// FNV-1a 64 over the payload bytes.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed decode failure. `Truncated` doubles as the streaming decoder's
/// "need more bytes" signal — over TCP it means keep reading, over a
/// byte-slice replay it means the tail is torn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Header magic did not match — not a frame boundary.
    BadMagic(u32),
    /// Length field exceeds [`MAX_WIRE_PAYLOAD`] (or is zero: every
    /// payload carries at least a tag byte).
    BadLength(u32),
    /// Payload checksum mismatch.
    BadChecksum { expect: u64, got: u64 },
    /// Buffer ends before the frame does.
    Truncated { need: usize, have: usize },
    /// Unknown frame tag.
    BadTag(u8),
    /// Unknown value tag inside a row.
    BadValueTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload decoded cleanly but has bytes left over.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadLength(n) => write!(f, "bad payload length {n}"),
            WireError::BadChecksum { expect, got } => {
                write!(f, "payload checksum mismatch (expect {expect:#x}, got {got:#x})")
            }
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadValueTag(t) => write!(f, "unknown value tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Error {
        Error::Network { message: format!("wire protocol: {e}") }
    }
}

/// Error classes carried in [`Frame::Err`]. The class (not the message
/// text) decides which [`Error`] variant the client rebuilds, so
/// `is_retryable()` survives the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Handshake rejected (bad version, unknown tenant, missing Hello).
    Handshake,
    /// Admission control bounced the request; retry after backing off.
    Throttled,
    /// SQL text did not parse.
    Parse,
    /// Catalog/validation failure (unknown column, duplicate table…).
    Schema,
    /// Unknown table by name.
    UnknownTable,
    /// Transaction-layer failure; the retryable flag says whether the
    /// statement can be re-run as-is.
    TxnRetry,
    /// Execution failure (type error, duplicate key, storage fault…).
    Execution,
    /// Server-side internal error.
    Internal,
}

impl ErrCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrCode::Handshake => 1,
            ErrCode::Throttled => 2,
            ErrCode::Parse => 3,
            ErrCode::Schema => 4,
            ErrCode::UnknownTable => 5,
            ErrCode::TxnRetry => 6,
            ErrCode::Execution => 7,
            ErrCode::Internal => 8,
        }
    }

    fn from_u8(v: u8) -> Option<ErrCode> {
        Some(match v {
            1 => ErrCode::Handshake,
            2 => ErrCode::Throttled,
            3 => ErrCode::Parse,
            4 => ErrCode::Schema,
            5 => ErrCode::UnknownTable,
            6 => ErrCode::TxnRetry,
            7 => ErrCode::Execution,
            8 => ErrCode::Internal,
            _ => return None,
        })
    }
}

/// Map a server-side [`Error`] to its wire classification. The message is
/// the payload a client needs to rebuild the same variant (e.g. the
/// throttle rule string).
pub fn classify_error(e: &Error) -> (ErrCode, bool, String) {
    match e {
        Error::Shared(inner) => classify_error(inner),
        Error::Throttled { rule } => (ErrCode::Throttled, true, rule.clone()),
        Error::Parse { .. } => (ErrCode::Parse, false, e.to_string()),
        Error::UnknownTable { name } => (ErrCode::UnknownTable, false, name.clone()),
        Error::UnknownColumn { .. }
        | Error::Schema { .. }
        | Error::Plan { .. }
        | Error::Invalid { .. } => (ErrCode::Schema, false, e.to_string()),
        Error::WriteConflict { .. }
        | Error::TxnAborted { .. }
        | Error::PrepareRejected { .. }
        | Error::NotOwner { .. }
        | Error::LeaseLost { .. }
        | Error::NotLeader { .. }
        | Error::Timeout { .. }
        | Error::NoQuorum { .. } => (ErrCode::TxnRetry, e.is_retryable(), e.to_string()),
        _ => (ErrCode::Execution, false, e.to_string()),
    }
}

/// Rebuild a client-side [`Error`] from the wire classification, keeping
/// `is_retryable()` consistent with the flag the server sent.
pub fn rebuild_error(code: ErrCode, retryable: bool, message: String) -> Error {
    match code {
        ErrCode::Handshake => Error::Invalid { message },
        ErrCode::Throttled => Error::Throttled { rule: message },
        ErrCode::Parse => Error::Parse { message, position: 0 },
        ErrCode::Schema => Error::Schema { message },
        ErrCode::UnknownTable => Error::UnknownTable { name: message },
        ErrCode::TxnRetry if retryable => Error::TxnAborted { reason: message },
        ErrCode::TxnRetry | ErrCode::Execution | ErrCode::Internal => {
            Error::Execution { message }
        }
    }
}

/// One protocol message (request or response).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server ----------------------------------------------
    /// Handshake: protocol version + tenant id. Must be the first frame.
    Hello { version: u32, tenant: u64 },
    /// Parse + execute one statement (SELECT returns `Rows`, DML/DDL
    /// returns `Affected`).
    Query { sql: String },
    /// Parse once, cache, return a statement handle.
    Prepare { sql: String },
    /// Execute a prepared handle.
    Execute { stmt_id: u64 },
    /// Drop a prepared handle.
    CloseStmt { stmt_id: u64 },
    /// Orderly goodbye.
    Quit,
    // ---- server → client ----------------------------------------------
    /// Handshake accepted; `cn` is the CN this connection landed on.
    HelloOk { cn: u64 },
    /// SELECT result set.
    Rows { rows: Vec<Row> },
    /// DML/DDL affected-row count.
    Affected { n: u64 },
    /// Prepared-statement handle; `cached` reports a statement-cache hit.
    Prepared { stmt_id: u64, cached: bool },
    /// Handle dropped.
    StmtClosed { stmt_id: u64 },
    /// Typed failure; `retryable` mirrors [`Error::is_retryable`].
    Err { code: ErrCode, retryable: bool, message: String },
    /// Server acknowledges `Quit`.
    Bye,
}

const TAG_HELLO: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_PREPARE: u8 = 0x03;
const TAG_EXECUTE: u8 = 0x04;
const TAG_CLOSE_STMT: u8 = 0x05;
const TAG_QUIT: u8 = 0x06;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_ROWS: u8 = 0x82;
const TAG_AFFECTED: u8 = 0x83;
const TAG_PREPARED: u8 = 0x84;
const TAG_STMT_CLOSED: u8 = 0x85;
const TAG_ERR: u8 = 0x86;
const TAG_BYE: u8 = 0x87;

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_BYTES: u8 = 4;
const VAL_DATE: u8 = 5;

// ---- little-endian cursor over a payload slice -------------------------

struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, off: 0 }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], WireError> {
        let have = self.b.len() - self.off;
        if have < n {
            return Err(WireError::Truncated { need: self.off + n, have: self.b.len() });
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::result::Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> std::result::Result<u64, WireError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    fn str_(&mut self) -> std::result::Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.off
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Int(i) => {
            out.push(VAL_INT);
            put_u64(out, *i as u64);
        }
        Value::Double(d) => {
            out.push(VAL_DOUBLE);
            put_u64(out, d.to_bits());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(VAL_BYTES);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        Value::Date(d) => {
            out.push(VAL_DATE);
            put_u32(out, *d as u32);
        }
    }
}

fn get_value(c: &mut Cur<'_>) -> std::result::Result<Value, WireError> {
    Ok(match c.u8()? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(c.u64()? as i64),
        VAL_DOUBLE => Value::Double(f64::from_bits(c.u64()?)),
        VAL_STR => Value::Str(c.str_()?),
        VAL_BYTES => {
            let n = c.u32()? as usize;
            Value::Bytes(c.take(n)?.to_vec())
        }
        VAL_DATE => Value::Date(c.u32()? as i32),
        t => return Err(WireError::BadValueTag(t)),
    })
}

impl Frame {
    /// Encode the payload (tag + fields) into `out`.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { version, tenant } => {
                out.push(TAG_HELLO);
                put_u32(out, *version);
                put_u64(out, *tenant);
            }
            Frame::Query { sql } => {
                out.push(TAG_QUERY);
                put_str(out, sql);
            }
            Frame::Prepare { sql } => {
                out.push(TAG_PREPARE);
                put_str(out, sql);
            }
            Frame::Execute { stmt_id } => {
                out.push(TAG_EXECUTE);
                put_u64(out, *stmt_id);
            }
            Frame::CloseStmt { stmt_id } => {
                out.push(TAG_CLOSE_STMT);
                put_u64(out, *stmt_id);
            }
            Frame::Quit => out.push(TAG_QUIT),
            Frame::HelloOk { cn } => {
                out.push(TAG_HELLO_OK);
                put_u64(out, *cn);
            }
            Frame::Rows { rows } => {
                out.push(TAG_ROWS);
                put_u32(out, rows.len() as u32);
                for row in rows {
                    put_u32(out, row.values().len() as u32);
                    for v in row.values() {
                        put_value(out, v);
                    }
                }
            }
            Frame::Affected { n } => {
                out.push(TAG_AFFECTED);
                put_u64(out, *n);
            }
            Frame::Prepared { stmt_id, cached } => {
                out.push(TAG_PREPARED);
                put_u64(out, *stmt_id);
                out.push(*cached as u8);
            }
            Frame::StmtClosed { stmt_id } => {
                out.push(TAG_STMT_CLOSED);
                put_u64(out, *stmt_id);
            }
            Frame::Err { code, retryable, message } => {
                out.push(TAG_ERR);
                out.push(code.to_u8());
                out.push(*retryable as u8);
                put_str(out, message);
            }
            Frame::Bye => out.push(TAG_BYE),
        }
    }

    /// Decode a payload (tag + fields, no header). Rejects trailing bytes.
    pub fn decode_payload(payload: &[u8]) -> std::result::Result<Frame, WireError> {
        let mut c = Cur::new(payload);
        let frame = match c.u8()? {
            TAG_HELLO => Frame::Hello { version: c.u32()?, tenant: c.u64()? },
            TAG_QUERY => Frame::Query { sql: c.str_()? },
            TAG_PREPARE => Frame::Prepare { sql: c.str_()? },
            TAG_EXECUTE => Frame::Execute { stmt_id: c.u64()? },
            TAG_CLOSE_STMT => Frame::CloseStmt { stmt_id: c.u64()? },
            TAG_QUIT => Frame::Quit,
            TAG_HELLO_OK => Frame::HelloOk { cn: c.u64()? },
            TAG_ROWS => {
                let nrows = c.u32()? as usize;
                // Guard against adversarial counts: each row needs at
                // least 4 bytes, so the count is bounded by the payload.
                if nrows > payload.len() / 4 {
                    return Err(WireError::Truncated {
                        need: nrows * 4,
                        have: payload.len(),
                    });
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let ncols = c.u32()? as usize;
                    if ncols > c.remaining() {
                        return Err(WireError::Truncated {
                            need: ncols,
                            have: c.remaining(),
                        });
                    }
                    let mut vals = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        vals.push(get_value(&mut c)?);
                    }
                    rows.push(Row::new(vals));
                }
                Frame::Rows { rows }
            }
            TAG_AFFECTED => Frame::Affected { n: c.u64()? },
            TAG_PREPARED => {
                Frame::Prepared { stmt_id: c.u64()?, cached: c.u8()? != 0 }
            }
            TAG_STMT_CLOSED => Frame::StmtClosed { stmt_id: c.u64()? },
            TAG_ERR => {
                let code =
                    ErrCode::from_u8(c.u8()?).ok_or(WireError::BadTag(TAG_ERR))?;
                let retryable = c.u8()? != 0;
                Frame::Err { code, retryable, message: c.str_()? }
            }
            TAG_BYE => Frame::Bye,
            t => return Err(WireError::BadTag(t)),
        };
        if c.remaining() > 0 {
            return Err(WireError::TrailingBytes { extra: c.remaining() });
        }
        Ok(frame)
    }

    /// Encode the full frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
        put_u32(&mut out, WIRE_MAGIC);
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, checksum(&payload));
        out.extend_from_slice(&payload);
        out
    }
}

/// Decode one frame from the front of `buf`; returns the frame and the
/// bytes consumed. [`WireError::Truncated`] means the buffer holds only a
/// prefix — read more and retry.
pub fn decode_frame(buf: &[u8]) -> std::result::Result<(Frame, usize), WireError> {
    if buf.len() < WIRE_HEADER_LEN {
        return Err(WireError::Truncated { need: WIRE_HEADER_LEN, have: buf.len() });
    }
    let mut c = Cur::new(buf);
    let magic = c.u32().expect("header length checked");
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = c.u32().expect("header length checked");
    if len == 0 || len as usize > MAX_WIRE_PAYLOAD {
        return Err(WireError::BadLength(len));
    }
    let sum = c.u64().expect("header length checked");
    let total = WIRE_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated { need: total, have: buf.len() });
    }
    let payload = &buf[WIRE_HEADER_LEN..total];
    let got = checksum(payload);
    if got != sum {
        return Err(WireError::BadChecksum { expect: sum, got });
    }
    let frame = Frame::decode_payload(payload)?;
    Ok((frame, total))
}

/// Outcome of a blocking/polled frame read.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A whole frame arrived.
    Frame(Frame),
    /// Read timed out with no complete frame buffered (poll again).
    TimedOut,
    /// Peer closed the stream at a frame boundary.
    Closed,
}

/// Incremental frame reader over a byte stream. Tolerates read timeouts
/// mid-frame (partial bytes are buffered across polls), so the server can
/// poll its stop flag between reads without losing protocol state.
pub struct FrameReader<R: Read> {
    src: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream.
    pub fn new(src: R) -> FrameReader<R> {
        FrameReader { src, buf: Vec::with_capacity(4096) }
    }

    /// Read until one frame is complete, the read times out, or the peer
    /// closes. Corrupt input surfaces as a typed [`Error`].
    pub fn poll(&mut self) -> Result<ReadOutcome> {
        loop {
            match decode_frame(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(ReadOutcome::Frame(frame));
                }
                Err(WireError::Truncated { .. }) => {} // need more bytes
                Err(e) => return Err(e.into()),
            }
            let mut chunk = [0u8; 4096];
            match self.src.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Closed)
                    } else {
                        // Torn mid-frame: the peer died between header and
                        // payload. Typed, not a panic or a hang.
                        Err(WireError::Truncated {
                            need: WIRE_HEADER_LEN.max(self.buf.len() + 1),
                            have: self.buf.len(),
                        }
                        .into())
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(Error::Network { message: format!("wire read: {e}") })
                }
            }
        }
    }

    /// Block until a frame arrives (client side; treats timeout polls as
    /// continue). Returns `Closed` as a typed error.
    pub fn read_frame(&mut self) -> Result<Frame> {
        loop {
            match self.poll()? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::TimedOut => {}
                ReadOutcome::Closed => {
                    return Err(Error::Network {
                        message: "connection closed by peer".into(),
                    })
                }
            }
        }
    }
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let bytes = frame.encode();
    if bytes.len() - WIRE_HEADER_LEN > MAX_WIRE_PAYLOAD {
        return Err(WireError::BadLength((bytes.len() - WIRE_HEADER_LEN) as u32).into());
    }
    w.write_all(&bytes)
        .map_err(|e| Error::Network { message: format!("wire write: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let (back, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello { version: PROTOCOL_VERSION, tenant: 7 });
        roundtrip(Frame::Query { sql: "SELECT 1".into() });
        roundtrip(Frame::Prepare { sql: "UPDATE t SET v = v + 1".into() });
        roundtrip(Frame::Execute { stmt_id: 42 });
        roundtrip(Frame::CloseStmt { stmt_id: 42 });
        roundtrip(Frame::Quit);
        roundtrip(Frame::HelloOk { cn: 3 });
        roundtrip(Frame::Rows {
            rows: vec![
                Row::new(vec![
                    Value::Null,
                    Value::Int(-5),
                    Value::Double(2.5),
                    Value::str("héllo"),
                    Value::Bytes(vec![0, 255, 3]),
                    Value::Date(-10),
                ]),
                Row::new(vec![]),
            ],
        });
        roundtrip(Frame::Affected { n: u64::MAX });
        roundtrip(Frame::Prepared { stmt_id: 9, cached: true });
        roundtrip(Frame::StmtClosed { stmt_id: 9 });
        roundtrip(Frame::Err {
            code: ErrCode::Throttled,
            retryable: true,
            message: "tenant-rate:tenant3".into(),
        });
        roundtrip(Frame::Bye);
    }

    #[test]
    fn error_classification_roundtrips_retryability() {
        let cases = vec![
            Error::Throttled { rule: "r".into() },
            Error::Parse { message: "m".into(), position: 3 },
            Error::UnknownTable { name: "t".into() },
            Error::Schema { message: "m".into() },
            Error::WriteConflict { key: "k".into() },
            Error::Timeout { what: "w".into() },
            Error::NoQuorum { acks: 1, needed: 2 },
            Error::DuplicateKey { key: "k".into() },
            Error::execution("boom"),
        ];
        for e in cases {
            let (code, retryable, message) = classify_error(&e);
            assert_eq!(retryable, e.is_retryable(), "flag diverged for {e:?}");
            let back = rebuild_error(code, retryable, message);
            assert_eq!(
                back.is_retryable(),
                e.is_retryable(),
                "rebuilt retryability diverged for {e:?}"
            );
        }
        // Throttled keeps its rule string verbatim (clients key backoff
        // decisions off it).
        let (c, r, m) = classify_error(&Error::Throttled { rule: "tenant-rate:9".into() });
        assert_eq!(
            rebuild_error(c, r, m),
            Error::Throttled { rule: "tenant-rate:9".into() }
        );
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Frame::Quit.encode();
        bytes[4..8].copy_from_slice(&((MAX_WIRE_PAYLOAD as u32) + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::BadLength(MAX_WIRE_PAYLOAD as u32 + 1))
        );
    }

    #[test]
    fn corrupt_payload_rejected_by_checksum() {
        let mut bytes = Frame::Query { sql: "SELECT 1".into() }.encode();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadChecksum { .. })));
    }
}
