//! Per-tenant admission control.
//!
//! Every query entering the front door passes two gates for its tenant:
//!
//! 1. a **token bucket** (`rate_per_sec` refill, `burst` depth) — the
//!    sustained-rate limit, and
//! 2. a **concurrent-query quota** (`max_concurrent`) — the in-flight cap.
//!
//! Either gate bounces the request with a retryable
//! [`Error::Throttled`] instead of queueing it: unbounded server-side
//! queues convert overload into tail-latency collapse for *every* tenant,
//! while a bounce pushes the wait to the offending client (§VIII of the
//! paper applies the same philosophy to anomalous query fingerprints; this
//! layer applies it per tenant at the door).
//!
//! Connections hold a [`ConnPermit`] and queries a [`QueryPermit`]; both
//! release on `Drop`, so an abrupt disconnect can never leak quota — the
//! connection handler's stack unwinds, the permits drop, the counters
//! return.
//!
//! Time is injected ([`TimeSource`]) so unit tests drive the bucket with a
//! hand-cranked clock instead of sleeping.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::metrics::Counter;
use polardbx_common::time::{mono_now, TimeSource};
use polardbx_common::{Error, Result, TenantId, TenantQuotas};

/// Token-bucket state (guarded; the arithmetic is a handful of flops).
struct Bucket {
    tokens: f64,
    last_refill: Duration,
    quotas: TenantQuotas,
}

/// Per-tenant admission state.
struct TenantState {
    bucket: Mutex<Bucket>,
    in_flight: AtomicU32,
    connections: AtomicU32,
    admitted: Counter,
    throttled_rate: Counter,
    throttled_concurrency: Counter,
    rejected_connections: Counter,
}

/// Observable admission counters for one tenant (tests, bench reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted.
    pub admitted: u64,
    /// Bounced by the token bucket.
    pub throttled_rate: u64,
    /// Bounced by the concurrent-query quota.
    pub throttled_concurrency: u64,
    /// Connections bounced by the connection cap.
    pub rejected_connections: u64,
    /// Current in-flight queries.
    pub in_flight: u32,
    /// Current open connections.
    pub connections: u32,
}

/// The front door's admission controller.
pub struct AdmissionControl {
    tenants: RwLock<HashMap<TenantId, Arc<TenantState>>>,
    /// Injected clock for deterministic tests; `None` reads
    /// [`polardbx_common::time::mono_now`].
    time: Option<Arc<dyn TimeSource>>,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl::new()
    }
}

impl AdmissionControl {
    /// Controller on the process monotonic clock.
    pub fn new() -> AdmissionControl {
        AdmissionControl { tenants: RwLock::new(HashMap::new()), time: None }
    }

    /// Controller on an injected clock (deterministic bucket tests).
    pub fn with_time(time: Arc<dyn TimeSource>) -> AdmissionControl {
        AdmissionControl { tenants: RwLock::new(HashMap::new()), time: Some(time) }
    }

    fn now(&self) -> Duration {
        match &self.time {
            Some(t) => t.mono_now(),
            None => mono_now(),
        }
    }

    /// Install (or refresh) a tenant's quotas. Called at handshake with
    /// the quotas read from the GMS tenant catalog; a refreshed bucket
    /// keeps its current fill so re-connects don't reset rate limiting.
    pub fn register(&self, tenant: TenantId, quotas: TenantQuotas) {
        let mut tenants = self.tenants.write();
        match tenants.get(&tenant) {
            Some(state) => {
                let mut b = state.bucket.lock();
                // Shrinking the burst clamps accumulated credit.
                b.tokens = b.tokens.min(quotas.burst);
                b.quotas = quotas;
            }
            None => {
                let state = Arc::new(TenantState {
                    bucket: Mutex::new(Bucket {
                        // Buckets start full: a fresh tenant gets its burst.
                        tokens: quotas.burst,
                        last_refill: self.now(),
                        quotas,
                    }),
                    in_flight: AtomicU32::new(0),
                    connections: AtomicU32::new(0),
                    admitted: Counter::new(),
                    throttled_rate: Counter::new(),
                    throttled_concurrency: Counter::new(),
                    rejected_connections: Counter::new(),
                });
                tenants.insert(tenant, state);
            }
        }
    }

    fn state(&self, tenant: TenantId) -> Result<Arc<TenantState>> {
        self.tenants
            .read()
            .get(&tenant)
            .cloned()
            .ok_or_else(|| Error::invalid(format!("unregistered tenant {tenant}")))
    }

    /// Open a connection for `tenant`; the permit's drop closes it.
    pub fn connect(&self, tenant: TenantId) -> Result<ConnPermit> {
        let state = self.state(tenant)?;
        let cap = state.bucket.lock().quotas.max_connections;
        let cur = state.connections.fetch_add(1, Ordering::Relaxed) + 1;
        if cur > cap {
            state.connections.fetch_sub(1, Ordering::Relaxed);
            state.rejected_connections.inc();
            return Err(Error::Throttled { rule: format!("tenant-connections:{tenant}") });
        }
        Ok(ConnPermit { state })
    }

    /// Admit one query for `tenant`; the permit's drop releases the
    /// concurrency slot. Bounces with a retryable [`Error::Throttled`]
    /// when the token bucket is empty or the in-flight quota is full.
    pub fn admit(&self, tenant: TenantId) -> Result<QueryPermit> {
        let state = self.state(tenant)?;
        let now = self.now();
        {
            let mut b = state.bucket.lock();
            let dt = now.saturating_sub(b.last_refill).as_secs_f64();
            b.tokens = (b.tokens + dt * b.quotas.rate_per_sec).min(b.quotas.burst);
            b.last_refill = now;
            if b.tokens < 1.0 {
                state.throttled_rate.inc();
                return Err(Error::Throttled { rule: format!("tenant-rate:{tenant}") });
            }
            b.tokens -= 1.0;
            let cur = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            if cur > b.quotas.max_concurrent {
                state.in_flight.fetch_sub(1, Ordering::Relaxed);
                // Refund the token: the query never ran.
                b.tokens += 1.0;
                state.throttled_concurrency.inc();
                return Err(Error::Throttled { rule: format!("tenant-quota:{tenant}") });
            }
        }
        state.admitted.inc();
        Ok(QueryPermit { state })
    }

    /// Counter snapshot for a tenant (zeroed stats for unknown tenants).
    pub fn stats(&self, tenant: TenantId) -> AdmissionStats {
        match self.tenants.read().get(&tenant) {
            Some(s) => AdmissionStats {
                admitted: s.admitted.get(),
                throttled_rate: s.throttled_rate.get(),
                throttled_concurrency: s.throttled_concurrency.get(),
                rejected_connections: s.rejected_connections.get(),
                in_flight: s.in_flight.load(Ordering::Relaxed),
                connections: s.connections.load(Ordering::Relaxed),
            },
            None => AdmissionStats {
                admitted: 0,
                throttled_rate: 0,
                throttled_concurrency: 0,
                rejected_connections: 0,
                in_flight: 0,
                connections: 0,
            },
        }
    }
}

/// Holds one of a tenant's connection slots; drop releases it.
pub struct ConnPermit {
    state: Arc<TenantState>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.state.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Holds one of a tenant's in-flight query slots; drop releases it.
pub struct QueryPermit {
    state: Arc<TenantState>,
}

impl std::fmt::Debug for QueryPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueryPermit")
    }
}

impl Drop for QueryPermit {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::time::ManualTime;

    fn controller() -> (Arc<ManualTime>, AdmissionControl) {
        let clock = Arc::new(ManualTime::new());
        let ac = AdmissionControl::with_time(Arc::clone(&clock) as _);
        (clock, ac)
    }

    #[test]
    fn token_bucket_rate_limits_and_refills() {
        let (clock, ac) = controller();
        let t = TenantId(1);
        ac.register(t, TenantQuotas::rate_limited(10.0, 3.0));
        // Burst of 3 admitted, 4th bounced.
        for _ in 0..3 {
            ac.admit(t).expect("burst admits");
        }
        let err = ac.admit(t).unwrap_err();
        assert!(err.is_retryable(), "rate bounce must be retryable: {err:?}");
        assert!(matches!(err, Error::Throttled { .. }));
        // 100 ms at 10/s refills one token.
        clock.advance(Duration::from_millis(100));
        ac.admit(t).expect("refilled token");
        assert!(ac.admit(t).is_err(), "bucket drained again");
        // Refill never exceeds the burst depth.
        clock.advance(Duration::from_secs(60));
        for _ in 0..3 {
            ac.admit(t).expect("full burst after idle");
        }
        assert!(ac.admit(t).is_err());
        let s = ac.stats(t);
        assert_eq!(s.admitted, 7);
        assert_eq!(s.throttled_rate, 3);
    }

    #[test]
    fn concurrency_quota_bounces_and_releases() {
        let (_clock, ac) = controller();
        let t = TenantId(2);
        ac.register(t, TenantQuotas::unlimited().with_max_concurrent(2));
        let a = ac.admit(t).unwrap();
        let _b = ac.admit(t).unwrap();
        let err = ac.admit(t).unwrap_err();
        assert!(matches!(err, Error::Throttled { ref rule } if rule.contains("tenant-quota")));
        assert_eq!(ac.stats(t).in_flight, 2);
        drop(a);
        assert_eq!(ac.stats(t).in_flight, 1);
        let _c = ac.admit(t).expect("slot released by drop");
        assert_eq!(ac.stats(t).throttled_concurrency, 1);
    }

    #[test]
    fn connection_cap_bounces_and_releases() {
        let (_clock, ac) = controller();
        let t = TenantId(3);
        ac.register(t, TenantQuotas::unlimited().with_max_connections(1));
        let c1 = ac.connect(t).unwrap();
        assert!(ac.connect(t).is_err());
        drop(c1);
        let _c2 = ac.connect(t).expect("slot released");
        assert_eq!(ac.stats(t).rejected_connections, 1);
        assert_eq!(ac.stats(t).connections, 1);
    }

    #[test]
    fn one_tenant_cannot_starve_another() {
        let (_clock, ac) = controller();
        let hot = TenantId(4);
        let quiet = TenantId(5);
        ac.register(hot, TenantQuotas::rate_limited(5.0, 2.0));
        ac.register(quiet, TenantQuotas::unlimited());
        // Hot exhausts its bucket…
        while ac.admit(hot).is_ok() {}
        // …and the quiet tenant is entirely unaffected.
        for _ in 0..1000 {
            ac.admit(quiet).expect("quiet tenant admitted");
        }
        assert_eq!(ac.stats(quiet).throttled_rate, 0);
        assert!(ac.stats(hot).throttled_rate > 0);
    }

    #[test]
    fn quota_refresh_clamps_credit() {
        let (_clock, ac) = controller();
        let t = TenantId(6);
        ac.register(t, TenantQuotas::rate_limited(1.0, 100.0));
        // Re-register with a smaller burst: accumulated credit clamps.
        ac.register(t, TenantQuotas::rate_limited(1.0, 2.0));
        assert!(ac.admit(t).is_ok());
        assert!(ac.admit(t).is_ok());
        assert!(ac.admit(t).is_err(), "credit above the new burst was clamped");
    }

    #[test]
    fn unregistered_tenant_is_a_typed_error() {
        let (_clock, ac) = controller();
        assert!(ac.admit(TenantId(99)).is_err());
        assert!(ac.connect(TenantId(99)).is_err());
    }
}
