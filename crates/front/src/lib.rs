//! The SQL front door (§III of the paper: the CN tier's client-facing
//! endpoint).
//!
//! Everything below the front door — parsing, planning, transactions,
//! storage — already exists in the sibling crates and is exercised
//! in-process. This crate adds the missing first hop: a wire protocol and
//! a TCP server so clients reach the cluster the way applications reach a
//! real PolarDB-X endpoint, with the failure modes that only exist at the
//! boundary (torn frames, abrupt disconnects, hot tenants) made explicit
//! and tested.
//!
//! - [`wire`] — length-prefixed, checksummed frames; typed decode errors;
//!   an error classification that keeps `Error::is_retryable()` intact
//!   across the boundary.
//! - [`admission`] — per-tenant token-bucket rate limits plus
//!   concurrent-query and connection quotas; violations bounce with a
//!   retryable `Throttled` instead of queueing.
//! - [`stmt_cache`] — per-connection prepared statements keyed by
//!   fingerprint, exact-text checked, LRU bounded.
//! - [`server`] — the threaded accept loop owning connection lifecycle.
//! - [`client`] — a blocking client used by the bench harness and tests.

pub mod admission;
pub mod client;
pub mod metrics;
pub mod server;
pub mod stmt_cache;
pub mod wire;

pub use admission::{AdmissionControl, AdmissionStats, ConnPermit, QueryPermit};
pub use client::FrontClient;
pub use metrics::FrontMetrics;
pub use server::{FrontConfig, FrontDoor};
pub use stmt_cache::StmtCache;
pub use wire::{ErrCode, Frame, WireError, MAX_WIRE_PAYLOAD, PROTOCOL_VERSION};
