//! Front-door observability: one shared counter block plus an HDR
//! latency histogram, sampled by the bench harness and the tier-1 tests.

use polardbx_common::metrics::{Counter, HdrHistogram};

/// Counters for the whole front door (all tenants, all connections).
#[derive(Default)]
pub struct FrontMetrics {
    /// Connections that completed the handshake.
    pub connections_accepted: Counter,
    /// Connections torn down (clean quit or abrupt drop).
    pub connections_closed: Counter,
    /// Handshakes rejected (bad version, unknown tenant, connection cap).
    pub handshake_failures: Counter,
    /// Queries/executes that returned `Rows`/`Affected`.
    pub queries_ok: Counter,
    /// Queries/executes that returned an `Err` frame (throttles excluded).
    pub queries_err: Counter,
    /// Requests bounced by admission control.
    pub throttled: Counter,
    /// Server-side request latency (dispatch to response encoded).
    pub query_latency: HdrHistogram,
}

impl FrontMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> FrontMetrics {
        FrontMetrics::default()
    }
}
