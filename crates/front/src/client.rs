//! Blocking wire-protocol client.
//!
//! [`FrontClient`] is what the load harness and the wire-level tests use:
//! it speaks the framed protocol over a `TcpStream`, performs the tenant
//! handshake, and maps `Err` frames back into typed [`Error`]s via
//! [`wire::rebuild_error`] — so `Error::is_retryable()` on the client
//! matches what the server classified, and retry loops written against
//! the embedded [`polardbx::Session`] work unchanged over the wire.

use std::net::{SocketAddr, TcpStream};

use polardbx_common::{Error, Result, Row};

use crate::wire::{self, ErrCode, Frame, FrameReader};

fn net_err(what: &str, e: std::io::Error) -> Error {
    Error::Network { message: format!("{what}: {e}") }
}

/// A connected, handshaken client.
pub struct FrontClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    cn: u64,
}

impl std::fmt::Debug for FrontClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrontClient(cn={})", self.cn)
    }
}

impl FrontClient {
    /// Connect to `addr` and handshake as `tenant`. A server-side
    /// rejection (bad version, unknown tenant, connection cap) surfaces
    /// as the rebuilt typed error.
    pub fn connect(addr: SocketAddr, tenant: u64) -> Result<FrontClient> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connect", e))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| net_err("clone stream", e))?;
        let mut client =
            FrontClient { writer, reader: FrameReader::new(stream), cn: 0 };
        client.send(&Frame::Hello { version: wire::PROTOCOL_VERSION, tenant })?;
        match client.recv()? {
            Frame::HelloOk { cn } => {
                client.cn = cn;
                Ok(client)
            }
            Frame::Err { code, retryable, message } => {
                Err(wire::rebuild_error(code, retryable, message))
            }
            other => Err(Error::Network {
                message: format!("unexpected handshake reply {other:?}"),
            }),
        }
    }

    /// The connection sequence number (maps to the CN the server picked).
    pub fn cn(&self) -> u64 {
        self.cn
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        wire::write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> Result<Frame> {
        self.reader.read_frame()
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame> {
        self.send(frame)?;
        match self.recv()? {
            Frame::Err { code, retryable, message } => {
                Err(wire::rebuild_error(code, retryable, message))
            }
            ok => Ok(ok),
        }
    }

    /// Run one statement. SELECT returns rows; DML/DDL returns `Ok(vec![])`
    /// — use [`FrontClient::execute`] when the affected count matters.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        match self.request(&Frame::Query { sql: sql.to_string() })? {
            Frame::Rows { rows } => Ok(rows),
            Frame::Affected { .. } => Ok(Vec::new()),
            other => Err(unexpected(other)),
        }
    }

    /// Run one DML/DDL statement, returning the affected-row count.
    pub fn execute(&mut self, sql: &str) -> Result<u64> {
        match self.request(&Frame::Query { sql: sql.to_string() })? {
            Frame::Affected { n } => Ok(n),
            Frame::Rows { .. } => {
                Err(Error::invalid("execute() got a result set; use query()"))
            }
            other => Err(unexpected(other)),
        }
    }

    /// Prepare a statement; returns `(stmt_id, cache_hit)`.
    pub fn prepare(&mut self, sql: &str) -> Result<(u64, bool)> {
        match self.request(&Frame::Prepare { sql: sql.to_string() })? {
            Frame::Prepared { stmt_id, cached } => Ok((stmt_id, cached)),
            other => Err(unexpected(other)),
        }
    }

    /// Execute a prepared statement, returning rows (SELECT) or the empty
    /// vec (DML — pair with [`FrontClient::execute_prepared_count`]).
    pub fn execute_prepared(&mut self, stmt_id: u64) -> Result<Vec<Row>> {
        match self.request(&Frame::Execute { stmt_id })? {
            Frame::Rows { rows } => Ok(rows),
            Frame::Affected { .. } => Ok(Vec::new()),
            other => Err(unexpected(other)),
        }
    }

    /// Execute a prepared DML statement, returning the affected count.
    pub fn execute_prepared_count(&mut self, stmt_id: u64) -> Result<u64> {
        match self.request(&Frame::Execute { stmt_id })? {
            Frame::Affected { n } => Ok(n),
            Frame::Rows { .. } => {
                Err(Error::invalid("prepared statement returned a result set"))
            }
            other => Err(unexpected(other)),
        }
    }

    /// Close a prepared statement handle.
    pub fn close_stmt(&mut self, stmt_id: u64) -> Result<()> {
        match self.request(&Frame::CloseStmt { stmt_id })? {
            Frame::StmtClosed { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn quit(mut self) -> Result<()> {
        self.send(&Frame::Quit)?;
        match self.recv()? {
            Frame::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Send a raw frame and return the raw reply (protocol tests).
    pub fn raw_roundtrip(&mut self, frame: &Frame) -> Result<Frame> {
        self.send(frame)?;
        self.recv()
    }
}

fn unexpected(f: Frame) -> Error {
    Error::Network { message: format!("unexpected response frame {f:?}") }
}

/// True when `e` is a throttle bounce (the client should back off and
/// retry rather than count a failure).
pub fn is_throttled(e: &Error) -> bool {
    matches!(e, Error::Throttled { .. })
        || matches!(
            e,
            Error::Shared(inner) if matches!(**inner, Error::Throttled { .. })
        )
}

/// Classification helper mirroring the server: true when the error carries
/// [`ErrCode::Throttled`] semantics.
pub fn err_code_of(e: &Error) -> ErrCode {
    wire::classify_error(e).0
}
