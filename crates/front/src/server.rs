//! The SQL front door: a threaded TCP accept loop serving the wire
//! protocol in [`crate::wire`].
//!
//! Connection lifecycle:
//!
//! 1. **Handshake** — the first frame must be `Hello{version, tenant}`.
//!    The version is checked against [`wire::PROTOCOL_VERSION`], the
//!    tenant is looked up in the GMS tenant catalog, its quotas installed
//!    in the admission controller, and a connection slot acquired. Any
//!    failure answers with a typed `Err` frame and closes the socket.
//! 2. **Session** — a handshaken connection owns a [`Session`] pinned to
//!    one CN (round-robin over the fleet) and a bounded per-connection
//!    prepared-statement cache.
//! 3. **Requests** — `Query` parses and runs; `Prepare`/`Execute` split
//!    parse from run through the statement cache; `CloseStmt` frees a
//!    slot; `Quit` answers `Bye` and closes.
//!
//! Every `Query`/`Prepare`/`Execute` first passes per-tenant admission
//! ([`AdmissionControl`]): an empty token bucket or full concurrency
//! quota answers a retryable `Err` frame (`ErrCode::Throttled`)
//! immediately — the server never queues a throttled request, so one hot
//! tenant cannot build a backlog that delays everyone else.
//!
//! Reads use a socket timeout so handlers notice the stop flag; partial
//! frames survive across timeouts inside [`wire::FrameReader`]. Abrupt
//! client drops unwind the handler stack, releasing the connection and
//! any in-flight query permits via `Drop`.

use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use polardbx::{PolarDbx, Session};
use polardbx_common::time::Timer;
use polardbx_common::{Error, Result, TenantId};
use polardbx_sql::ast::Statement;

use crate::admission::AdmissionControl;
use crate::metrics::FrontMetrics;
use crate::stmt_cache::StmtCache;
use crate::wire::{self, classify_error, ErrCode, Frame, FrameReader, ReadOutcome};

/// Front-door tunables.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Prepared-statement cache slots per connection.
    pub stmt_cache_capacity: usize,
    /// Socket read timeout — the stop-flag poll interval.
    pub read_timeout: Duration,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            addr: "127.0.0.1:0".to_string(),
            stmt_cache_capacity: 64,
            read_timeout: Duration::from_millis(50),
        }
    }
}

struct Shared {
    db: PolarDbx,
    admission: AdmissionControl,
    metrics: FrontMetrics,
    config: FrontConfig,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running front door. Dropping it stops the accept loop and joins
/// every connection handler.
pub struct FrontDoor {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl FrontDoor {
    /// Bind and start serving `db` with the given config.
    pub fn start(db: PolarDbx, config: FrontConfig) -> Result<FrontDoor> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::Network { message: format!("front bind {}: {e}", config.addr) })?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Network { message: format!("front local_addr: {e}") })?;
        let shared = Arc::new(Shared {
            db,
            admission: AdmissionControl::new(),
            metrics: FrontMetrics::new(),
            config,
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("front-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| Error::Network { message: format!("front accept thread: {e}") })?;
        Ok(FrontDoor { shared, addr, accept_handle: Some(accept_handle) })
    }

    /// Start with default config on an ephemeral localhost port.
    pub fn start_default(db: PolarDbx) -> Result<FrontDoor> {
        FrontDoor::start(db, FrontConfig::default())
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Front-door metrics (shared with all handlers).
    pub fn metrics(&self) -> &FrontMetrics {
        &self.shared.metrics
    }

    /// The admission controller (tests inspect per-tenant stats).
    pub fn admission(&self) -> &AdmissionControl {
        &self.shared.admission
    }

    /// Stop accepting, close every handler, and join all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connect; it re-checks
        // the stop flag per iteration.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Handlers notice the stop flag at their next read timeout. Move
        // the handles out of the lock before joining — never join while
        // holding a guard.
        let handles = {
            let mut g = self.shared.conn_handles.lock();
            std::mem::take(&mut *g)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FrontDoor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("front-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.metrics.connections_closed.inc();
            });
        match handle {
            Ok(h) => {
                let mut g = shared.conn_handles.lock();
                g.push(h);
                // Compact finished handlers so long-running servers don't
                // accumulate unbounded JoinHandles.
                g.retain(|h| !h.is_finished());
            }
            Err(_) => return,
        }
    }
}

/// Serve one connection start to finish. Any socket error returns, which
/// unwinds the permits.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(stream);

    // --- Handshake ---------------------------------------------------
    let tenant = match wait_hello(&mut reader, shared) {
        Ok(t) => t,
        Err(Some(err_frame)) => {
            shared.metrics.handshake_failures.inc();
            let _ = wire::write_frame(&mut writer, &err_frame);
            return;
        }
        Err(None) => return, // closed / server stopping
    };
    let meta = match shared.db.gms().tenant(tenant) {
        Some(m) => m,
        None => {
            shared.metrics.handshake_failures.inc();
            let _ = wire::write_frame(
                &mut writer,
                &Frame::Err {
                    code: ErrCode::Handshake,
                    retryable: false,
                    message: format!("unknown tenant {tenant}"),
                },
            );
            return;
        }
    };
    shared.admission.register(tenant, meta.quotas);
    let _conn_permit = match shared.admission.connect(tenant) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.handshake_failures.inc();
            let (code, retryable, message) = classify_error(&e);
            let _ = wire::write_frame(&mut writer, &Frame::Err { code, retryable, message });
            return;
        }
    };

    let n = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let session = shared.db.connect_nth(n as usize);
    if wire::write_frame(&mut writer, &Frame::HelloOk { cn: n }).is_err() {
        return;
    }
    shared.metrics.connections_accepted.inc();

    let mut cache = StmtCache::new(shared.config.stmt_cache_capacity);

    // --- Request loop ------------------------------------------------
    loop {
        let frame = match reader.poll() {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::TimedOut) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(_) => return, // protocol violation: drop the connection
        };
        let response = match frame {
            Frame::Quit => {
                let _ = wire::write_frame(&mut writer, &Frame::Bye);
                return;
            }
            Frame::CloseStmt { stmt_id } => {
                close_stmt(&mut cache, stmt_id);
                Frame::StmtClosed { stmt_id }
            }
            Frame::Hello { .. } => Frame::Err {
                code: ErrCode::Handshake,
                retryable: false,
                message: "already handshaken".to_string(),
            },
            req @ (Frame::Query { .. } | Frame::Prepare { .. } | Frame::Execute { .. }) => {
                let timer = Timer::start();
                let resp = dispatch(shared, &session, &mut cache, tenant, req);
                shared.metrics.query_latency.record(timer.elapsed());
                resp
            }
            _ => Frame::Err {
                code: ErrCode::Execution,
                retryable: false,
                message: "unexpected frame".to_string(),
            },
        };
        if wire::write_frame(&mut writer, &response).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Read frames until `Hello` arrives. `Err(Some(frame))` is a handshake
/// failure to report; `Err(None)` means the peer vanished or the server
/// is stopping.
fn wait_hello(
    reader: &mut FrameReader<TcpStream>,
    shared: &Shared,
) -> std::result::Result<TenantId, Option<Frame>> {
    loop {
        match reader.poll() {
            Ok(ReadOutcome::Frame(Frame::Hello { version, tenant })) => {
                if version != wire::PROTOCOL_VERSION {
                    return Err(Some(Frame::Err {
                        code: ErrCode::Handshake,
                        retryable: false,
                        message: format!(
                            "protocol version {version} unsupported (server speaks {})",
                            wire::PROTOCOL_VERSION
                        ),
                    }));
                }
                return Ok(TenantId(tenant));
            }
            Ok(ReadOutcome::Frame(_)) => {
                return Err(Some(Frame::Err {
                    code: ErrCode::Handshake,
                    retryable: false,
                    message: "expected Hello".to_string(),
                }));
            }
            Ok(ReadOutcome::TimedOut) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Err(None);
                }
            }
            Ok(ReadOutcome::Closed) | Err(_) => return Err(None),
        }
    }
}

fn close_stmt(cache: &mut StmtCache, stmt_id: u64) {
    if let Ok(id) = u32::try_from(stmt_id) {
        cache.close(id);
    }
}

/// Run one admitted request and encode the outcome as a response frame.
fn dispatch(
    shared: &Shared,
    session: &Session,
    cache: &mut StmtCache,
    tenant: TenantId,
    req: Frame,
) -> Frame {
    let result = (|| -> Result<Frame> {
        // The permit covers the whole request; drop releases the slot.
        let _permit = shared.admission.admit(tenant)?;
        match req {
            Frame::Query { sql } => {
                let stmt = polardbx_sql::parse(&sql)?;
                run_statement(session, &sql, &stmt)
            }
            Frame::Prepare { sql } => {
                let (entry, cached) = cache.prepare(&sql, polardbx_sql::parse)?;
                Ok(Frame::Prepared { stmt_id: entry.id as u64, cached })
            }
            Frame::Execute { stmt_id } => {
                let id = u32::try_from(stmt_id)
                    .map_err(|_| Error::invalid(format!("bad statement id {stmt_id}")))?;
                let entry = cache.get(id)?;
                run_statement(session, &entry.sql, &entry.stmt)
            }
            _ => unreachable!("dispatch only sees Query/Prepare/Execute"),
        }
    })();
    match result {
        Ok(frame) => {
            shared.metrics.queries_ok.inc();
            frame
        }
        Err(e) => {
            let (code, retryable, message) = classify_error(&e);
            if code == ErrCode::Throttled {
                shared.metrics.throttled.inc();
            } else {
                shared.metrics.queries_err.inc();
            }
            Frame::Err { code, retryable, message }
        }
    }
}

/// Run a parsed statement on the session, producing the response frame.
fn run_statement(session: &Session, sql: &str, stmt: &Statement) -> Result<Frame> {
    match stmt {
        Statement::Select(sel) => {
            let (rows, _class) = session.query_statement(sql, sel)?;
            Ok(Frame::Rows { rows })
        }
        other => session.execute_statement(sql, other).map(|n| Frame::Affected { n }),
    }
}
