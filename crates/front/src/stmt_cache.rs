//! Per-connection prepared-statement cache.
//!
//! `Prepare` parses once and hands back a statement id; `Execute` replays
//! the parsed AST without re-parsing. Entries are additionally indexed by
//! the statement's *fingerprint* (literals stripped — the same
//! normalisation the traffic-control layer uses for anomaly rules), so a
//! connection that prepares the same statement shape twice gets the cached
//! parse back instead of a second slot. A fingerprint hit still requires
//! an **exact SQL text match**: two statements can share a fingerprint
//! while differing in literals, and replaying the wrong literals would be
//! a correctness bug, not a cache miss.
//!
//! The cache is bounded with LRU eviction. Evicting a slot invalidates its
//! statement id (`Execute` on it returns a typed error) but any in-flight
//! execution keeps its `Arc` handle alive.

use std::collections::HashMap;
use std::sync::Arc;

use polardbx::traffic::fingerprint;
use polardbx_common::{Error, Result};
use polardbx_sql::ast::Statement;

/// One cached prepared statement.
pub struct PreparedStmt {
    /// Statement id handed to the client.
    pub id: u32,
    /// Exact SQL text as prepared.
    pub sql: String,
    /// Literal-stripped shape, shared with traffic control.
    pub fingerprint: String,
    /// Parsed AST, reused by every `Execute`.
    pub stmt: Statement,
}

/// Bounded LRU cache of prepared statements for one connection.
pub struct StmtCache {
    capacity: usize,
    next_id: u32,
    /// id → entry.
    by_id: HashMap<u32, Arc<PreparedStmt>>,
    /// fingerprint → id of the most recent statement with that shape.
    by_fingerprint: HashMap<String, u32>,
    /// LRU order, least recent first.
    lru: Vec<u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StmtCache {
    /// Cache holding at most `capacity` statements (minimum 1).
    pub fn new(capacity: usize) -> StmtCache {
        StmtCache {
            capacity: capacity.max(1),
            next_id: 1,
            by_id: HashMap::new(),
            by_fingerprint: HashMap::new(),
            lru: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            self.lru.remove(pos);
        }
        self.lru.push(id);
    }

    /// Prepare `sql`: reuse the cached parse when the exact text was
    /// prepared before, otherwise parse via `parse` and insert (evicting
    /// the least recently used slot if full). Returns the entry and
    /// whether it was a cache hit.
    pub fn prepare(
        &mut self,
        sql: &str,
        parse: impl FnOnce(&str) -> Result<Statement>,
    ) -> Result<(Arc<PreparedStmt>, bool)> {
        let fp = fingerprint(sql);
        if let Some(&id) = self.by_fingerprint.get(&fp) {
            if let Some(entry) = self.by_id.get(&id) {
                if entry.sql == sql {
                    let entry = Arc::clone(entry);
                    self.hits += 1;
                    self.touch(id);
                    return Ok((entry, true));
                }
            }
        }
        self.misses += 1;
        let stmt = parse(sql)?;
        if self.by_id.len() >= self.capacity {
            let victim = self.lru.remove(0);
            if let Some(old) = self.by_id.remove(&victim) {
                if self.by_fingerprint.get(&old.fingerprint) == Some(&victim) {
                    self.by_fingerprint.remove(&old.fingerprint);
                }
                self.evictions += 1;
            }
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let entry = Arc::new(PreparedStmt { id, sql: sql.to_string(), fingerprint: fp.clone(), stmt });
        self.by_id.insert(id, Arc::clone(&entry));
        self.by_fingerprint.insert(fp, id);
        self.lru.push(id);
        Ok((entry, false))
    }

    /// Look up a statement id for `Execute`.
    pub fn get(&mut self, id: u32) -> Result<Arc<PreparedStmt>> {
        match self.by_id.get(&id) {
            Some(entry) => {
                let entry = Arc::clone(entry);
                self.touch(id);
                Ok(entry)
            }
            None => Err(Error::invalid(format!("unknown prepared statement id {id}"))),
        }
    }

    /// Explicitly close a statement id. Closing an unknown id is a no-op
    /// (the slot may have been evicted already).
    pub fn close(&mut self, id: u32) {
        if let Some(old) = self.by_id.remove(&id) {
            if self.by_fingerprint.get(&old.fingerprint) == Some(&id) {
                self.by_fingerprint.remove(&old.fingerprint);
            }
            if let Some(pos) = self.lru.iter().position(|&x| x == id) {
                self.lru.remove(pos);
            }
        }
    }

    /// Cached statement count.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no statements are cached.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Result<Statement> {
        polardbx_sql::parse(sql)
    }

    #[test]
    fn same_text_hits_without_reparse() {
        let mut c = StmtCache::new(4);
        let (a, hit) = c.prepare("SELECT id FROM t WHERE id = 1", parse).unwrap();
        assert!(!hit);
        let (b, hit) = c
            .prepare("SELECT id FROM t WHERE id = 1", |_| {
                panic!("cache hit must not re-parse")
            })
            .unwrap();
        assert!(hit);
        assert_eq!(a.id, b.id);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn same_fingerprint_different_literals_is_a_miss() {
        let mut c = StmtCache::new(4);
        let (a, _) = c.prepare("SELECT id FROM t WHERE id = 1", parse).unwrap();
        let (b, hit) = c.prepare("SELECT id FROM t WHERE id = 2", parse).unwrap();
        assert!(!hit, "different literals must not replay the wrong parse");
        assert_ne!(a.id, b.id);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn lru_evicts_least_recent_and_invalidates_id() {
        let mut c = StmtCache::new(2);
        let (a, _) = c.prepare("SELECT id FROM t WHERE id = 1", parse).unwrap();
        let (_b, _) = c.prepare("SELECT v FROM t WHERE id = 1", parse).unwrap();
        // Touch a so the second statement becomes the LRU victim.
        c.get(a.id).unwrap();
        let (_c3, _) = c.prepare("SELECT id, v FROM t WHERE id = 1", parse).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get(a.id).is_ok(), "recently used survives");
        assert!(c.get(_b.id).is_err(), "evicted id is invalid");
        assert_eq!(c.stats().2, 1);
        // The evicted Arc handle stays usable for in-flight executions.
        assert_eq!(_b.sql, "SELECT v FROM t WHERE id = 1");
    }

    #[test]
    fn close_frees_slot_and_fingerprint() {
        let mut c = StmtCache::new(2);
        let (a, _) = c.prepare("SELECT id FROM t WHERE id = 1", parse).unwrap();
        c.close(a.id);
        assert!(c.is_empty());
        assert!(c.get(a.id).is_err());
        // Same text now re-parses into a fresh slot.
        let (b, hit) = c.prepare("SELECT id FROM t WHERE id = 1", parse).unwrap();
        assert!(!hit);
        assert_ne!(a.id, b.id);
        // Closing an unknown/already-closed id is a no-op.
        c.close(a.id);
        c.close(9999);
    }

    #[test]
    fn parse_errors_do_not_occupy_slots() {
        let mut c = StmtCache::new(2);
        assert!(c.prepare("SELEKT nonsense", parse).is_err());
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 1, 0));
    }
}
