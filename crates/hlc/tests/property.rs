//! Seeded property test: HLC monotonicity and causal ordering across
//! simnet messages under injected clock skew.
//!
//! A ring of nodes, each with an [`Hlc`] over a [`SkewedClock`] whose skew
//! is re-rolled mid-run, exchanges timestamps over the simnet fabric. Two
//! properties must hold no matter how physical clocks drift:
//!
//! * **Per-node monotonicity** — a node's issued timestamps (`advance`)
//!   are strictly increasing and its `now` never regresses, even when its
//!   skew jumps backwards.
//! * **Causality** — the reply to a message carrying timestamp `t` was
//!   issued after a `ClockUpdate(t)`, so it exceeds `t`; chaining
//!   exchanges through random nodes yields a strictly increasing token.
//!
//! The walk is seeded (`POLARDBX_TEST_SEED` overrides; the seed prints on
//! stderr so a failure can be replayed), and wall time is pinned with
//! [`ManualTime`] so nothing outside the seeded walk influences the run.

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_common::time::{reset_time_source, set_time_source, ManualTime};
use polardbx_common::{DcId, NodeId};
use polardbx_hlc::{Clock, Hlc, HlcTimestamp, SkewedClock, TestClock};
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use rand::{rngs::StdRng, Rng, SeedableRng};

const NODES: u64 = 5;
const STEPS: usize = 2_000;

/// A peer absorbs every received timestamp (ClockUpdate) and answers with
/// a fresh ClockAdvance — the §IV message rule.
struct Peer {
    clock: Arc<Hlc>,
}

impl Handler<u64> for Peer {
    fn handle(&self, _from: NodeId, ts: u64) -> u64 {
        self.clock.update(HlcTimestamp::from_raw(ts));
        self.clock.advance().raw()
    }
}

#[test]
fn hlc_monotone_and_causal_across_skewed_simnet_messages() {
    let seed = seed_from_env(0x41C_C10C);
    eprintln!(
        "hlc_monotone_and_causal_across_skewed_simnet_messages: POLARDBX_TEST_SEED={}",
        format_seed(seed)
    );
    let manual = Arc::new(ManualTime::new());
    set_time_source(Arc::clone(&manual) as Arc<_>);

    let mut rng = StdRng::seed_from_u64(seed);
    let base = TestClock::at(10_000);
    let net = SimNet::new(LatencyMatrix::zero());
    let mut clocks = Vec::new();
    let mut skews = Vec::new();
    for i in 1..=NODES {
        let skew = SkewedClock::new(base.clone(), rng.gen_range(-500..=500));
        let clock = Hlc::with_physical(skew.clone());
        net.register(NodeId(i), DcId(1 + i % 3), Arc::new(Peer { clock: Arc::clone(&clock) }));
        clocks.push(clock);
        skews.push(skew);
    }

    // The causal token: every exchange must hand back something larger.
    let mut token = clocks[0].advance();
    let mut last_issued: Vec<HlcTimestamp> = clocks.iter().map(|c| c.peek()).collect();
    let mut last_now: Vec<HlcTimestamp> = clocks.iter().map(|c| c.now()).collect();

    for step in 0..STEPS {
        // Seeded clock churn: physical time creeps forward while individual
        // skews jump around (including backwards — NTP step corrections).
        if rng.gen_bool(0.3) {
            base.tick(rng.gen_range(0..3));
        }
        if rng.gen_bool(0.1) {
            let n = rng.gen_range(0..NODES as usize);
            skews[n].set_skew(rng.gen_range(-500..=500));
        }
        manual.advance(Duration::from_micros(rng.gen_range(1..50)));

        let from = rng.gen_range(0..NODES as usize);
        let mut to = rng.gen_range(0..NODES as usize);
        if to == from {
            to = (to + 1) % NODES as usize;
        }
        // Sender stamps the token into its own causal past, then ships it.
        clocks[from].update(token);
        let sent = clocks[from].advance();
        assert!(sent > token, "step {step}: sender must issue past the token");
        let reply = net
            .call(NodeId(1 + from as u64), NodeId(1 + to as u64), sent.raw())
            .expect("faultless fabric");
        let reply = HlcTimestamp::from_raw(reply);
        assert!(
            reply > sent,
            "step {step}: causality violated — node {} replied {reply:?} to {sent:?}",
            to + 1,
        );
        token = reply;

        // Per-node checks: advance streams are strictly increasing and
        // `now` never regresses, despite the skew storm.
        for (n, c) in clocks.iter().enumerate() {
            let now = c.now();
            assert!(
                now >= last_now[n],
                "step {step}: node {} `now` regressed from {:?} to {now:?}",
                n + 1,
                last_now[n],
            );
            last_now[n] = now;
            let peek = c.peek();
            assert!(
                peek >= last_issued[n],
                "step {step}: node {} clock regressed from {:?} to {peek:?}",
                n + 1,
                last_issued[n],
            );
            last_issued[n] = peek;
        }
    }

    net.shutdown();
    reset_time_source();
}
