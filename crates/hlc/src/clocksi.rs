//! Clock-SI baseline: loosely synchronized physical clocks.
//!
//! Clock-SI (Du et al. \[31\] in the paper) assigns snapshot timestamps from
//! each node's local physical clock. No logical component tracks causality,
//! so a participant whose clock lags the coordinator's must *delay* the
//! request until its own clock passes the snapshot timestamp — the "delay
//! caused by clock skew" §IV cites as its weakness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::{Clock, PhysicalClock};
use crate::timestamp::HlcTimestamp;

/// A Clock-SI node clock: physical time only, with a configured worst-case
/// skew bound that remote participants must wait out.
pub struct ClockSiClock {
    physical: Arc<dyn PhysicalClock>,
    /// Strictly-increasing floor so `advance` never repeats a timestamp
    /// even within one millisecond.
    last: AtomicU64,
    /// Worst-case cross-node skew in milliseconds.
    max_skew_millis: u64,
}

impl ClockSiClock {
    /// New clock over `physical` with the given worst-case skew bound.
    pub fn new(physical: Arc<dyn PhysicalClock>, max_skew_millis: u64) -> Arc<ClockSiClock> {
        Arc::new(ClockSiClock { physical, last: AtomicU64::new(0), max_skew_millis })
    }
}

impl Clock for ClockSiClock {
    fn now(&self) -> HlcTimestamp {
        let ts = HlcTimestamp::at_pt(self.physical.now_millis()).raw();
        let prev = self.last.fetch_max(ts, Ordering::SeqCst).max(ts);
        HlcTimestamp::from_raw(prev)
    }

    fn advance(&self) -> HlcTimestamp {
        // Physical clocks have millisecond granularity; disambiguate within
        // a millisecond by bumping the (conceptually unused) low bits.
        let ts = HlcTimestamp::at_pt(self.physical.now_millis()).raw();
        let mut cur = self.last.load(Ordering::SeqCst);
        loop {
            let next = if ts > cur { ts } else { cur + 1 };
            match self.last.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return HlcTimestamp::from_raw(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Clock-SI has no causality propagation — that is its defining
    /// weakness; received timestamps are ignored.
    fn update(&self, _seen: HlcTimestamp) {}

    fn causality_wait_millis(&self) -> u64 {
        self.max_skew_millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn now_tracks_physical_time() {
        let pc = TestClock::at(500);
        let c = ClockSiClock::new(pc.clone(), 5);
        assert_eq!(c.now().pt(), 500);
        pc.tick(100);
        assert_eq!(c.now().pt(), 600);
    }

    #[test]
    fn advance_unique_within_millisecond() {
        let pc = TestClock::at(500);
        let c = ClockSiClock::new(pc, 5);
        let a = c.advance();
        let b = c.advance();
        assert!(b > a);
    }

    #[test]
    fn update_is_ignored_no_causality() {
        let pc = TestClock::at(500);
        let c = ClockSiClock::new(pc, 5);
        c.update(HlcTimestamp::at_pt(10_000));
        // Unlike HLC, the clock does NOT jump forward.
        assert_eq!(c.now().pt(), 500);
    }

    #[test]
    fn skew_wait_exposed() {
        let pc = TestClock::at(0);
        let c = ClockSiClock::new(pc, 7);
        assert_eq!(c.causality_wait_millis(), 7);
    }

    #[test]
    fn now_never_regresses() {
        let pc = TestClock::at(1000);
        let c = ClockSiClock::new(pc.clone(), 5);
        let a = c.advance();
        pc.set(900); // physical clock steps backwards (NTP correction)
        let b = c.now();
        assert!(b >= a, "logical floor must prevent regression");
    }
}
