//! The per-node hybrid logical clock and the `Clock` abstraction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::timestamp::HlcTimestamp;

/// Source of physical time in milliseconds. Pluggable so tests can freeze or
/// skew time and so Clock-SI's skew sensitivity can be demonstrated.
pub trait PhysicalClock: Send + Sync {
    /// Current physical time in milliseconds.
    fn now_millis(&self) -> u64;
}

/// Wall-clock physical time.
#[derive(Debug, Default)]
pub struct RealClock;

impl PhysicalClock for RealClock {
    fn now_millis(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).expect("clock before epoch").as_millis()
            as u64
    }
}

/// A manually controlled clock for tests.
#[derive(Debug, Default)]
pub struct TestClock {
    millis: AtomicU64,
}

impl TestClock {
    /// Start at `millis`.
    pub fn at(millis: u64) -> Arc<TestClock> {
        Arc::new(TestClock { millis: AtomicU64::new(millis) })
    }

    /// Advance by `delta` milliseconds.
    pub fn tick(&self, delta: u64) {
        self.millis.fetch_add(delta, Ordering::SeqCst);
    }

    /// Set absolute time.
    pub fn set(&self, millis: u64) {
        self.millis.store(millis, Ordering::SeqCst);
    }
}

impl PhysicalClock for TestClock {
    fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }
}

/// Wraps another physical clock with a constant skew (positive or negative
/// milliseconds) — models imperfect NTP sync across nodes, the failure mode
/// that hurts Clock-SI.
pub struct SkewedClock {
    inner: Arc<dyn PhysicalClock>,
    skew_millis: AtomicI64,
}

impl SkewedClock {
    /// Wrap `inner` with an initial skew.
    pub fn new(inner: Arc<dyn PhysicalClock>, skew_millis: i64) -> Arc<SkewedClock> {
        Arc::new(SkewedClock { inner, skew_millis: AtomicI64::new(skew_millis) })
    }

    /// Change the skew at runtime.
    pub fn set_skew(&self, skew_millis: i64) {
        self.skew_millis.store(skew_millis, Ordering::SeqCst);
    }
}

impl PhysicalClock for SkewedClock {
    fn now_millis(&self) -> u64 {
        let base = self.inner.now_millis() as i64;
        (base + self.skew_millis.load(Ordering::SeqCst)).max(0) as u64
    }
}

/// The timestamp interface the transaction layer programs against.
///
/// `now` = the paper's `ClockNow` (read, no logical increment),
/// `advance` = `ClockAdvance` (allocate a strictly increasing timestamp),
/// `update` = `ClockUpdate` (absorb a timestamp observed from a peer).
/// `causality_wait_millis` is nonzero only for Clock-SI, which must wait out
/// the worst-case skew before using a snapshot remotely.
pub trait Clock: Send + Sync {
    /// Latest timestamp without incrementing the logical part.
    fn now(&self) -> HlcTimestamp;
    /// Next strictly-increasing timestamp.
    fn advance(&self) -> HlcTimestamp;
    /// Absorb an externally observed timestamp (no-op for centralized TSO).
    fn update(&self, seen: HlcTimestamp);
    /// Extra wait (ms) a remote participant must impose before serving a
    /// snapshot from this clock family. Zero for HLC and TSO.
    fn causality_wait_millis(&self) -> u64 {
        0
    }
}

/// A node's hybrid logical clock (§IV "HLC Primitives").
///
/// The whole timestamp lives in one `AtomicU64`; all three primitives are
/// lock-free CAS loops. Two paper optimizations are embedded:
///
/// 1. `now` and `update` never increment `lc`, preserving the 16-bit logical
///    space;
/// 2. `update` is a single max-CAS, so a 2PC coordinator can absorb the max
///    of all participant timestamps with one call (`update_max` helper).
pub struct Hlc {
    hlc: AtomicU64,
    physical: Arc<dyn PhysicalClock>,
}

impl Hlc {
    /// A clock backed by wall time.
    pub fn new() -> Arc<Hlc> {
        Hlc::with_physical(Arc::new(RealClock))
    }

    /// A clock backed by an arbitrary physical source.
    pub fn with_physical(physical: Arc<dyn PhysicalClock>) -> Arc<Hlc> {
        let start = HlcTimestamp::at_pt(physical.now_millis());
        Arc::new(Hlc { hlc: AtomicU64::new(start.raw()), physical })
    }

    /// `ClockUpdate` with the maximum of several observed timestamps — the
    /// paper's batched form used by the 2PC coordinator after collecting
    /// all `prepare_ts` values (one CAS instead of N).
    pub fn update_max(&self, seen: impl IntoIterator<Item = HlcTimestamp>) {
        if let Some(max) = seen.into_iter().max() {
            self.update(max);
        }
    }

    /// Raw value for debugging/tests.
    pub fn peek(&self) -> HlcTimestamp {
        HlcTimestamp::from_raw(self.hlc.load(Ordering::SeqCst))
    }
}

impl Clock for Hlc {
    fn now(&self) -> HlcTimestamp {
        // ClockNow: like advance but without incrementing lc. If physical
        // time has moved past the stored hlc's pt, catch up to it.
        let pt_now = self.physical.now_millis();
        let floor = HlcTimestamp::at_pt(pt_now).raw();
        let mut cur = self.hlc.load(Ordering::SeqCst);
        loop {
            if cur >= floor {
                return HlcTimestamp::from_raw(cur);
            }
            match self.hlc.compare_exchange_weak(cur, floor, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return HlcTimestamp::from_raw(floor),
                Err(actual) => cur = actual,
            }
        }
    }

    fn advance(&self) -> HlcTimestamp {
        // ClockAdvance: increment lc by one; if the local physical clock is
        // ahead, overwrite with it instead.
        let pt_now = self.physical.now_millis();
        let floor = HlcTimestamp::at_pt(pt_now).raw();
        let mut cur = self.hlc.load(Ordering::SeqCst);
        loop {
            let next = if floor > cur { floor } else { cur + 1 };
            match self.hlc.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return HlcTimestamp::from_raw(next),
                Err(actual) => cur = actual,
            }
        }
    }

    fn update(&self, seen: HlcTimestamp) {
        // ClockUpdate: advance to `seen` if it is ahead; never increments lc.
        self.hlc.fetch_max(seen.raw(), Ordering::SeqCst);
    }
}

/// The difference bound the paper states: after `advance`, the HLC's
/// physical part is at least the node's physical clock (it never falls
/// behind local time).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_catches_up_to_physical_time() {
        let pc = TestClock::at(1000);
        let hlc = Hlc::with_physical(pc.clone());
        let t1 = hlc.now();
        assert_eq!(t1.pt(), 1000);
        assert_eq!(t1.lc(), 0);
        pc.tick(5);
        let t2 = hlc.now();
        assert_eq!(t2.pt(), 1005);
        // now() does not increment lc.
        assert_eq!(t2.lc(), 0);
        assert!(hlc.now() >= t2, "now is monotone non-decreasing");
    }

    #[test]
    fn advance_is_strictly_increasing() {
        let pc = TestClock::at(1000);
        let hlc = Hlc::with_physical(pc);
        let mut prev = hlc.advance();
        for _ in 0..100 {
            let next = hlc.advance();
            assert!(next > prev);
            prev = next;
        }
        // Frozen physical time => increments land in lc (101 advances total).
        assert_eq!(prev.pt(), 1000);
        assert_eq!(prev.lc(), 101);
    }

    #[test]
    fn advance_overwrites_when_physical_ahead() {
        let pc = TestClock::at(1000);
        let hlc = Hlc::with_physical(pc.clone());
        for _ in 0..10 {
            hlc.advance();
        }
        pc.tick(50);
        let t = hlc.advance();
        assert_eq!(t.pt(), 1050);
        assert_eq!(t.lc(), 0);
    }

    #[test]
    fn update_absorbs_future_timestamps_without_lc_bump() {
        let pc = TestClock::at(1000);
        let hlc = Hlc::with_physical(pc);
        let remote = HlcTimestamp::new(2000, 7);
        hlc.update(remote);
        assert_eq!(hlc.peek(), remote, "update must not increment lc");
        // A stale update is a no-op.
        hlc.update(HlcTimestamp::new(1500, 0));
        assert_eq!(hlc.peek(), remote);
    }

    #[test]
    fn update_max_batches() {
        let pc = TestClock::at(100);
        let hlc = Hlc::with_physical(pc);
        hlc.update_max([
            HlcTimestamp::new(300, 1),
            HlcTimestamp::new(500, 2),
            HlcTimestamp::new(400, 9),
        ]);
        assert_eq!(hlc.peek(), HlcTimestamp::new(500, 2));
        hlc.update_max(std::iter::empty());
        assert_eq!(hlc.peek(), HlcTimestamp::new(500, 2));
    }

    #[test]
    fn bounded_drift_from_physical_clock() {
        // The paper: "the difference between the two is bounded". With
        // physical time advancing, advance() keeps pt equal to wall time.
        let pc = TestClock::at(0);
        let hlc = Hlc::with_physical(pc.clone());
        for t in 1..100 {
            pc.set(t);
            let ts = hlc.advance();
            assert_eq!(ts.pt(), t);
            assert_eq!(ts.lc(), 0);
        }
    }

    #[test]
    fn concurrent_advances_unique_and_increasing() {
        use std::collections::HashSet;
        let hlc = Hlc::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let hlc = Arc::clone(&hlc);
            handles.push(std::thread::spawn(move || {
                (0..2000).map(|_| hlc.advance().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(all.insert(ts), "duplicate timestamp from ClockAdvance");
            }
        }
        assert_eq!(all.len(), 16_000);
    }

    #[test]
    fn skewed_clock_applies_offset() {
        let base = TestClock::at(1000);
        let skewed = SkewedClock::new(base.clone(), -200);
        assert_eq!(skewed.now_millis(), 800);
        skewed.set_skew(300);
        assert_eq!(skewed.now_millis(), 1300);
    }

    #[test]
    fn happens_before_is_tracked_across_nodes() {
        // Message from node A (fast clock) to node B (slow clock): B's next
        // timestamp must exceed the received one — causality.
        let pc_a = TestClock::at(5000);
        let pc_b = TestClock::at(1000);
        let a = Hlc::with_physical(pc_a);
        let b = Hlc::with_physical(pc_b);
        let sent = a.advance();
        b.update(sent);
        let received_then_issued = b.advance();
        assert!(received_then_issued > sent);
    }
}
