//! Centralized timestamp oracle (TSO) — the baseline of Fig 7.
//!
//! TSO-SI (Percolator, TiDB) allocates both snapshot and commit timestamps
//! from one ascending counter service. Every allocation is an RPC; when the
//! caller sits in a different datacenter than the oracle, each allocation
//! pays a full cross-DC round trip, which is precisely the overhead HLC-SI
//! removes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use polardbx_common::NodeId;
use polardbx_simnet::{Handler, SimNet};

use crate::clock::{Clock, PhysicalClock, RealClock};
use crate::timestamp::HlcTimestamp;

/// Messages understood by the TSO server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsoMsg {
    /// Request one timestamp.
    Get,
    /// Reply carrying the allocated timestamp.
    Timestamp(u64),
}

/// The oracle: an ascending counter seeded from physical time so timestamps
/// remain comparable with HLC timestamps in mixed tests.
pub struct TsoServer {
    next: AtomicU64,
}

impl TsoServer {
    /// New oracle seeded from wall time.
    pub fn new() -> Arc<TsoServer> {
        Self::with_physical(&RealClock)
    }

    /// New oracle seeded from a custom physical clock.
    pub fn with_physical(pc: &dyn PhysicalClock) -> Arc<TsoServer> {
        Arc::new(TsoServer {
            next: AtomicU64::new(HlcTimestamp::at_pt(pc.now_millis()).raw()),
        })
    }

    /// Allocate the next timestamp (local fast path, used by the handler).
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

impl Handler<TsoMsg> for TsoServer {
    fn handle(&self, _from: NodeId, msg: TsoMsg) -> TsoMsg {
        match msg {
            TsoMsg::Get => TsoMsg::Timestamp(self.allocate()),
            other => other,
        }
    }
}

/// A node-side client of the oracle. Implements [`Clock`] so the
/// transaction layer can swap it in for [`crate::Hlc`]; both `now` and
/// `advance` are remote allocations, and `update` is a no-op (ordering is
/// global by construction).
pub struct TsoClient {
    net: Arc<SimNet<TsoMsg>>,
    me: NodeId,
    server: NodeId,
}

impl TsoClient {
    /// A client at `me` talking to the oracle at `server`.
    pub fn new(net: Arc<SimNet<TsoMsg>>, me: NodeId, server: NodeId) -> Arc<TsoClient> {
        Arc::new(TsoClient { net, me, server })
    }

    fn fetch(&self) -> HlcTimestamp {
        match self.net.call(self.me, self.server, TsoMsg::Get) {
            Ok(TsoMsg::Timestamp(ts)) => HlcTimestamp::from_raw(ts),
            Ok(_) | Err(_) => {
                // The oracle is a single point of failure (the paper's
                // critique); surface that as a panic in experiments rather
                // than silently inventing time.
                panic!("TSO unavailable: centralized oracle unreachable from {}", self.me)
            }
        }
    }
}

impl Clock for TsoClient {
    fn now(&self) -> HlcTimestamp {
        self.fetch()
    }

    fn advance(&self) -> HlcTimestamp {
        self.fetch()
    }

    fn update(&self, _seen: HlcTimestamp) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::DcId;
    use polardbx_simnet::LatencyMatrix;
    use std::time::{Duration, Instant};

    /// Dummy service so client nodes can be registered on the fabric.
    struct Nop;
    impl Handler<TsoMsg> for Nop {
        fn handle(&self, _from: NodeId, msg: TsoMsg) -> TsoMsg {
            msg
        }
    }

    #[test]
    fn timestamps_globally_ascending() {
        let net = SimNet::new(LatencyMatrix::zero());
        let server = TsoServer::new();
        net.register(NodeId(100), DcId(1), server);
        net.register(NodeId(1), DcId(1), Arc::new(Nop));
        net.register(NodeId(2), DcId(2), Arc::new(Nop));
        let c1 = TsoClient::new(net.clone(), NodeId(1), NodeId(100));
        let c2 = TsoClient::new(net.clone(), NodeId(2), NodeId(100));
        let a = c1.now();
        let b = c2.now();
        let c = c1.advance();
        assert!(a < b && b < c, "oracle must be globally ascending");
    }

    #[test]
    fn cross_dc_access_pays_rtt() {
        let lat = LatencyMatrix {
            intra_dc: Duration::from_micros(10),
            inter_dc: Duration::from_millis(2),
            jitter: 0.0,
        };
        let net = SimNet::new(lat);
        net.register(NodeId(100), DcId(1), TsoServer::new());
        net.register(NodeId(1), DcId(1), Arc::new(Nop));
        net.register(NodeId(2), DcId(3), Arc::new(Nop));
        let local = TsoClient::new(net.clone(), NodeId(1), NodeId(100));
        let remote = TsoClient::new(net.clone(), NodeId(2), NodeId(100));

        let t0 = Instant::now();
        local.now();
        let local_cost = t0.elapsed();

        let t0 = Instant::now();
        remote.now();
        let remote_cost = t0.elapsed();

        assert!(remote_cost >= Duration::from_millis(4), "must pay cross-DC RTT");
        assert!(remote_cost > local_cost * 10);
    }

    #[test]
    fn concurrent_allocations_unique() {
        use std::collections::HashSet;
        let server = TsoServer::new();
        let mut handles = vec![];
        for _ in 0..4 {
            let s = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| s.allocate()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(seen.insert(ts));
            }
        }
    }
}
