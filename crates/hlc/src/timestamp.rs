//! The 64-bit HLC timestamp layout.

use std::fmt;

/// Number of bits for the logical-clock component.
pub const LC_BITS: u32 = 16;
/// Number of bits for the physical-time component.
pub const PT_BITS: u32 = 46;
/// Mask for the logical component.
pub const LC_MASK: u64 = (1 << LC_BITS) - 1;
/// Maximum physical-time value (milliseconds).
pub const PT_MAX: u64 = (1 << PT_BITS) - 1;

/// An HLC timestamp: `{reserved:2, pt:46, lc:16}` packed into a `u64`
/// exactly as §IV describes. `pt` is wall time in milliseconds; `lc` counts
/// up to 65,535 events within one millisecond — "more than tens of millions
/// of transactions per second".
///
/// Ordering of the packed integer equals lexicographic `(pt, lc)` ordering,
/// which is why the whole timestamp can live in one atomic word.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct HlcTimestamp(pub u64);

impl HlcTimestamp {
    /// Zero timestamp (before everything).
    pub const ZERO: HlcTimestamp = HlcTimestamp(0);

    /// Pack physical milliseconds and a logical counter.
    pub fn new(pt_millis: u64, lc: u16) -> HlcTimestamp {
        debug_assert!(pt_millis <= PT_MAX, "physical time overflows 46 bits");
        HlcTimestamp((pt_millis << LC_BITS) | lc as u64)
    }

    /// Build from a raw packed value.
    pub fn from_raw(raw: u64) -> HlcTimestamp {
        HlcTimestamp(raw)
    }

    /// Raw packed value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Physical-time component in milliseconds.
    pub fn pt(self) -> u64 {
        (self.0 >> LC_BITS) & PT_MAX
    }

    /// Logical-clock component.
    pub fn lc(self) -> u16 {
        (self.0 & LC_MASK) as u16
    }

    /// The next timestamp: logical component incremented by one. A full
    /// logical component naturally carries into `pt`, keeping order intact.
    pub fn next(self) -> HlcTimestamp {
        HlcTimestamp(self.0 + 1)
    }

    /// A timestamp at the given physical time with a zero logical component.
    pub fn at_pt(pt_millis: u64) -> HlcTimestamp {
        HlcTimestamp::new(pt_millis, 0)
    }
}

impl fmt::Display for HlcTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hlc({}.{})", self.pt(), self.lc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let ts = HlcTimestamp::new(1_700_000_000_000 & PT_MAX, 1234);
        assert_eq!(ts.pt(), 1_700_000_000_000 & PT_MAX);
        assert_eq!(ts.lc(), 1234);
    }

    #[test]
    fn packed_order_equals_tuple_order() {
        let a = HlcTimestamp::new(100, 65535);
        let b = HlcTimestamp::new(101, 0);
        assert!(a < b, "pt dominates lc");
        let c = HlcTimestamp::new(100, 1);
        let d = HlcTimestamp::new(100, 2);
        assert!(c < d, "lc breaks ties");
    }

    #[test]
    fn next_carries_into_pt() {
        let a = HlcTimestamp::new(100, 65535);
        let b = a.next();
        assert_eq!(b.pt(), 101);
        assert_eq!(b.lc(), 0);
        assert!(b > a);
    }

    #[test]
    fn lc_capacity_matches_paper() {
        // "it counts 65,535 times per millisecond"
        assert_eq!(LC_MASK, 65_535);
        // 46 bits of milliseconds covers > 2000 years.
        const { assert!(PT_MAX / (1000 * 3600 * 24 * 365) > 2000) };
    }
}
