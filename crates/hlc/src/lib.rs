//! Hybrid logical clocks and baseline timestamp services (§IV of the paper).
//!
//! PolarDB-X's HLC-SI replaces the centralized timestamp oracle (TSO) used
//! by Percolator/TiDB with a per-node hybrid logical clock. This crate
//! provides:
//!
//! * [`HlcTimestamp`] — the 64-bit `{reserved:2, pt:46, lc:16}` layout,
//! * [`Hlc`] — a node's clock with the paper's three primitives
//!   (`ClockNow`, `ClockAdvance`, `ClockUpdate`) including the two
//!   contention optimizations (no `lc` increment in `now`/`update`, and
//!   batched `update` with the max of all seen timestamps),
//! * [`TsoServer`]/[`TsoClient`] — the centralized-oracle baseline whose
//!   cross-DC access cost Fig 7 quantifies,
//! * [`ClockSiClock`] — the loosely synchronized physical clock baseline
//!   (Clock-SI) which must wait out clock skew,
//! * [`Clock`] — the trait the transaction layer programs against so the
//!   three schemes are interchangeable.

pub mod clock;
pub mod clocksi;
pub mod timestamp;
pub mod tso;

pub use clock::{Clock, Hlc, PhysicalClock, RealClock, SkewedClock, TestClock};
pub use clocksi::ClockSiClock;
pub use timestamp::HlcTimestamp;
pub use tso::{TsoClient, TsoMsg, TsoServer};
