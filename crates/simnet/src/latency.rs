//! Per-link latency model.

use polardbx_common::DcId;
use rand::Rng;
use std::time::Duration;

/// One-way delays between datacenters, with optional jitter.
///
/// Defaults mirror the paper's testbed shape scaled for an in-process run:
/// negligible intra-DC latency and a configurable inter-DC delay (the paper
/// measured ~1 ms RTT, i.e. ~500 µs one-way).
#[derive(Debug, Clone)]
pub struct LatencyMatrix {
    /// One-way delay between two nodes in the same DC.
    pub intra_dc: Duration,
    /// One-way delay between nodes in different DCs.
    pub inter_dc: Duration,
    /// Uniform jitter fraction in `[0, jitter)` added on top (0.0 disables).
    pub jitter: f64,
}

impl LatencyMatrix {
    /// The paper's testbed: ~1 ms cross-DC RTT, fast local network.
    pub fn paper_default() -> LatencyMatrix {
        LatencyMatrix {
            intra_dc: Duration::from_micros(50),
            inter_dc: Duration::from_micros(500),
            jitter: 0.05,
        }
    }

    /// Zero latency everywhere — for unit tests that only care about
    /// message semantics.
    pub fn zero() -> LatencyMatrix {
        LatencyMatrix { intra_dc: Duration::ZERO, inter_dc: Duration::ZERO, jitter: 0.0 }
    }

    /// Uniform latency (same for intra- and inter-DC links).
    pub fn uniform(d: Duration) -> LatencyMatrix {
        LatencyMatrix { intra_dc: d, inter_dc: d, jitter: 0.0 }
    }

    /// Scaled-down variant of the paper's testbed for fast benches: keeps
    /// the inter/intra ratio while shrinking absolute delays by `factor`.
    pub fn paper_scaled(factor: u32) -> LatencyMatrix {
        let base = LatencyMatrix::paper_default();
        LatencyMatrix {
            intra_dc: base.intra_dc / factor,
            inter_dc: base.inter_dc / factor,
            jitter: base.jitter,
        }
    }

    /// Base one-way delay between `a` and `b` (no jitter applied).
    pub fn one_way_base(&self, a: DcId, b: DcId) -> Duration {
        if a == b { self.intra_dc } else { self.inter_dc }
    }

    /// One-way delay with jitter sampled from the thread RNG.
    pub fn one_way(&self, a: DcId, b: DcId) -> Duration {
        let base = self.one_way_base(a, b);
        if self.jitter <= 0.0 || base.is_zero() {
            return base;
        }
        let j = rand::thread_rng().gen_range(0.0..self.jitter);
        base + Duration::from_secs_f64(base.as_secs_f64() * j)
    }

    /// Round-trip time between `a` and `b` (no jitter).
    pub fn rtt(&self, a: DcId, b: DcId) -> Duration {
        self.one_way_base(a, b) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_dc_slower_than_intra() {
        let m = LatencyMatrix::paper_default();
        assert!(m.one_way_base(DcId(1), DcId(2)) > m.one_way_base(DcId(1), DcId(1)));
        assert_eq!(m.rtt(DcId(1), DcId(2)), m.one_way_base(DcId(1), DcId(2)) * 2);
    }

    #[test]
    fn jitter_bounded() {
        let m = LatencyMatrix { jitter: 0.1, ..LatencyMatrix::paper_default() };
        for _ in 0..100 {
            let d = m.one_way(DcId(0), DcId(1));
            assert!(d >= m.inter_dc);
            assert!(d < m.inter_dc + m.inter_dc.mul_f64(0.11));
        }
    }

    #[test]
    fn zero_matrix_is_zero() {
        let m = LatencyMatrix::zero();
        assert_eq!(m.one_way(DcId(0), DcId(5)), Duration::ZERO);
    }

    #[test]
    fn scaled_preserves_ratio() {
        let m = LatencyMatrix::paper_scaled(10);
        let full = LatencyMatrix::paper_default();
        assert_eq!(m.inter_dc, full.inter_dc / 10);
        assert_eq!(m.intra_dc, full.intra_dc / 10);
    }
}
