//! Simulated multi-datacenter network fabric.
//!
//! The paper's evaluation (§VII) deploys PolarDB-X across three datacenters
//! with ~1 ms round-trip time between them; the relative cost of cross-DC
//! hops is exactly what separates HLC-SI from TSO-SI in Fig 7. This crate
//! substitutes the cloud network with an in-process fabric that:
//!
//! * registers services (CN, DN, TSO, GMS…) under [`polardbx_common::NodeId`]s
//!   placed in datacenters,
//! * injects per-link one-way delays from a configurable [`LatencyMatrix`]
//!   (intra-DC vs inter-DC, optional jitter),
//! * supports synchronous RPC ([`SimNet::call`]) and asynchronous one-way
//!   posts ([`SimNet::post`]) with in-order delivery per destination,
//! * can partition datacenters from each other to exercise failover, and
//! * counts messages per link so experiments can report network usage.
//!
//! The substitution preserves behaviour because the protocols under test are
//! latency-bound, not bandwidth-bound: what matters is *how many* cross-DC
//! round trips each commit needs, and that is a property of the code paths
//! exercised here, not of the physical medium.

pub mod fault;
pub mod latency;
pub mod net;

pub use fault::{FaultPlan, FaultStats, FlushShot, LinkFaults, OneShot, OneShotFault};
pub use latency::LatencyMatrix;
pub use net::{Handler, NetStats, SimNet};
